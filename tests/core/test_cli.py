"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_info_prints_both_platforms(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "smp16" in out and "sti7200" in out
    assert "st40" in out and "opteron0" in out


def test_demo_smp_small(capsys):
    assert main(["demo-smp", "4"]) == 0
    out = capsys.readouterr().out
    assert "Fetch" in out and "Reorder" in out
    assert "messages conserved: True" in out


def test_demo_sti7200_small(capsys):
    assert main(["demo-sti7200", "4"]) == 0
    out = capsys.readouterr().out
    assert "Fetch-Reorder" in out
    assert "85" in out  # the IDCT memory figure


def test_observe_outputs_json(capsys):
    assert main(["observe"]) == 0
    out = capsys.readouterr().out
    data = json.loads(out)
    assert data["producer/application"]["sends"] == 50
    assert "producer/os" in data and "consumer/middleware" in data


def test_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag():
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
