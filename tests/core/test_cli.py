"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_info_prints_both_platforms(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "smp16" in out and "sti7200" in out
    assert "st40" in out and "opteron0" in out


def test_demo_smp_small(capsys):
    assert main(["demo-smp", "4"]) == 0
    out = capsys.readouterr().out
    assert "Fetch" in out and "Reorder" in out
    assert "messages conserved: True" in out


def test_demo_sti7200_small(capsys):
    assert main(["demo-sti7200", "4"]) == 0
    out = capsys.readouterr().out
    assert "Fetch-Reorder" in out
    assert "85" in out  # the IDCT memory figure


def test_observe_outputs_json(capsys):
    assert main(["observe"]) == 0
    out = capsys.readouterr().out
    data = json.loads(out)
    assert data["producer/application"]["sends"] == 50
    assert "producer/os" in data and "consumer/middleware" in data


def test_trace_prints_critical_path_and_writes_artifacts(capsys, tmp_path):
    prefix = str(tmp_path / "TRACE")
    assert main(["trace", "--images", "3", "--out", prefix]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "busiest mailboxes" in out
    # The printed e2e and attributed figures agree (telescoping).
    line = next(l for l in out.splitlines() if l.startswith("critical path"))
    assert line.split("e2e ")[1].split(" us")[0] == line.split("attributed ")[1].split(" us")[0]
    columns = json.loads((tmp_path / "TRACE.columns.json").read_text())
    assert columns["format"] == "repro-trace-columns"
    assert len(columns["columns"]["seq"]) > 0
    chrome = json.loads((tmp_path / "TRACE.chrome.json").read_text())
    flow_starts = [r for r in chrome if r.get("ph") == "s"]
    flow_ends = [r for r in chrome if r.get("ph") == "f"]
    assert flow_starts and flow_ends


def test_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag():
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
