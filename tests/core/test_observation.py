"""Unit tests for probes, observation requests and introspection."""

import pytest

from repro.core import (
    APPLICATION_LEVEL,
    Component,
    MIDDLEWARE_LEVEL,
    Message,
    OS_LEVEL,
    ObservationProbe,
    ObservationRequest,
    format_interfaces,
)
from repro.core.errors import ObservationError
from repro.core.messages import CONTROL, DATA, OBSERVATION


def make_probe():
    c = Component("c")
    c.add_provided("in")
    c.add_required("out")
    return c, ObservationProbe(c)


def data_msg(nbytes=100):
    return Message(payload=b"x" * nbytes)


def test_request_level_validated():
    with pytest.raises(ObservationError):
        ObservationRequest(level="bogus")
    ObservationRequest(level=OS_LEVEL)


def test_probe_counts_data_sends_and_bytes():
    _, probe = make_probe()
    msg = data_msg(100)
    probe.record_send("out", msg, 500)
    probe.record_send("out", msg, 700)
    assert probe.data_sends.value == 2
    assert probe.bytes_sent == 2 * msg.size_bytes
    assert probe.send_timer.count == 2
    assert probe.send_timer.total_ns == 1200


def test_probe_ignores_observation_traffic():
    _, probe = make_probe()
    probe.record_send("introspection", Message(payload=None, kind=OBSERVATION), 100)
    probe.record_receive("introspection", Message(payload=None, kind=OBSERVATION), 100)
    assert probe.data_sends.value == 0
    assert probe.send_timer.count == 0
    assert probe.recv_timer.count == 0


def test_probe_times_control_but_does_not_count_it():
    """EOS messages exercise the middleware timers (they are real sends)
    without polluting the Table 2 application counters."""
    _, probe = make_probe()
    probe.record_send("out", Message(payload=None, kind=CONTROL, tag="eos"), 50)
    assert probe.send_timer.count == 1
    assert probe.data_sends.value == 0


def test_deposits_counted_separately_from_sends():
    _, probe = make_probe()
    probe.record_deposit("display", data_msg(), 10)
    assert probe.deposits.value == 1
    assert probe.data_sends.value == 0


def test_deferred_samples_fold_identically():
    """The tuple-buffer hot path defers timer folding; the folded report
    must be indistinguishable from eager per-event recording."""
    _, probe = make_probe()
    msg = data_msg(64)
    stamped = Message(payload=b"x" * 64, sent_at_us=5)
    for i in range(100):
        probe.record_send("out" if i % 3 else "aux", msg, 100 + i)
        probe.record_receive("in", stamped, 200 + i, now_us=10 + i)
    # Samples sit unfolded in the buffer until a timer is read.
    assert len(probe._mw_samples) == 200
    report = probe.report(MIDDLEWARE_LEVEL)
    assert not probe._mw_samples
    assert report["send"]["count"] == 100
    assert report["send"]["total_ns"] == sum(100 + i for i in range(100))
    assert report["receive"]["count"] == 100
    assert set(report["send_by_interface"]) == {"out", "aux"}
    assert report["send_by_interface"]["aux"]["count"] == 34
    assert report["latency"]["count"] == 100


def test_deferred_samples_survive_interleaved_reads():
    """Reading a timer mid-run folds what is buffered; later samples are
    folded by the next read -- nothing is lost or double-counted."""
    _, probe = make_probe()
    msg = data_msg(64)
    probe.record_send("out", msg, 100)
    assert probe.send_timer.count == 1
    probe.record_send("out", msg, 300)
    probe.record_send("out", msg, 500)
    assert probe.send_timer.count == 3
    assert probe.send_timer.total_ns == 900
    assert probe.send_timers_by_iface["out"].count == 3


def test_middleware_report_shape():
    _, probe = make_probe()
    probe.record_send("out", data_msg(), 100)
    probe.record_receive("in", data_msg(), 250)
    report = probe.report(MIDDLEWARE_LEVEL)
    assert report["send"]["count"] == 1
    assert report["receive"]["mean_ns"] == 250
    assert "out" in report["send_by_interface"]
    assert "in" in report["receive_by_interface"]


def test_application_report_structure_and_counts():
    comp, probe = make_probe()
    probe.record_send("out", data_msg(), 1)
    report = probe.report(APPLICATION_LEVEL)
    assert report["sends"] == 1
    assert report["receives"] == 0
    assert ("in", "provided") in report["structure"]
    assert ("out", "required") in report["structure"]


def test_os_report_uses_adapter_and_probe_timestamps():
    _, probe = make_probe()
    probe.os_adapter = lambda: {"stack_bytes": 1234}
    probe.started_at_us = 100
    probe.ended_at_us = 600
    report = probe.report(OS_LEVEL)
    assert report["stack_bytes"] == 1234
    assert report["exec_time_us"] == 500


def test_unknown_level_rejected():
    _, probe = make_probe()
    with pytest.raises(ObservationError):
        probe.report("bogus")


def test_format_interfaces_matches_figure5():
    idct = Component("IDCT_1")
    idct.add_provided("_fetchIdct1")
    idct.add_required("idctReorder")
    text = format_interfaces(idct)
    assert text.splitlines() == [
        "Interfaces component [IDCT_1]",
        "----------------------------",
        "[Interface] [Type]",
        "introspection provided",
        "_fetchIdct1 provided",
        "introspection required",
        "idctReorder required",
    ]


def test_structure_dict_records_connections():
    from repro.core.introspection import structure_dict

    a, b = Component("a"), Component("b")
    a.add_required("out")
    b.add_provided("in")
    a.get_required("out").connect(b.get_provided("in"))
    d = structure_dict(a)
    req = [r for r in d["required"] if r["name"] == "out"][0]
    assert req["connected_to"] == "b.in"


def test_latency_recorded_from_message_timestamp():
    _, probe = make_probe()
    msg = Message(payload=b"x", sent_at_us=100)
    probe.record_receive("in", msg, 500, now_us=350)
    assert probe.latency_timer.count == 1
    assert probe.latency_timer.mean_ns == 250_000


def test_latency_clamped_for_skewed_clocks():
    """OS21 local clocks can make arrival appear before departure."""
    _, probe = make_probe()
    msg = Message(payload=b"x", sent_at_us=1000)
    probe.record_receive("in", msg, 10, now_us=990)
    assert probe.latency_timer.min_ns == 0


def test_latency_skipped_without_timestamps():
    _, probe = make_probe()
    probe.record_receive("in", Message(payload=b"x"), 10, now_us=None)
    probe.record_receive("in", Message(payload=b"x", sent_at_us=None), 10, now_us=50)
    assert probe.latency_timer.count == 0
