"""Application structure as a networkx graph."""

import networkx as nx

from repro.mjpeg import generate_stream
from repro.mjpeg.components import build_smp_assembly, build_sti7200_assembly


def test_smp_assembly_graph_matches_figure3():
    stream = generate_stream(2, 96, 96)
    app = build_smp_assembly(stream)
    g = app.graph()
    assert set(g.nodes) == {"Fetch", "IDCT_1", "IDCT_2", "IDCT_3", "Reorder"}
    # Fetch fans out to the three IDCTs, which all feed Reorder
    assert set(g.successors("Fetch")) == {"IDCT_1", "IDCT_2", "IDCT_3"}
    for i in (1, 2, 3):
        assert list(g.successors(f"IDCT_{i}")) == ["Reorder"]
    assert list(g.successors("Reorder")) == []
    assert nx.is_directed_acyclic_graph(g)


def test_edge_data_carries_interface_names():
    stream = generate_stream(2, 96, 96)
    g = build_smp_assembly(stream).graph()
    data = list(g.get_edge_data("Fetch", "IDCT_1").values())[0]
    assert data == {"required": "fetchIdct1", "provided": "_fetchIdct1"}


def test_sti7200_graph_is_cyclic_figure7():
    """The merged Fetch-Reorder both feeds and consumes from the IDCTs."""
    stream = generate_stream(2, 96, 96)
    g = build_sti7200_assembly(stream).graph()
    assert set(g.nodes) == {"Fetch-Reorder", "IDCT_1", "IDCT_2"}
    assert not nx.is_directed_acyclic_graph(g)
    assert set(g.successors("Fetch-Reorder")) == {"IDCT_1", "IDCT_2"}
    assert set(g.predecessors("Fetch-Reorder")) == {"IDCT_1", "IDCT_2"}


def test_observation_wiring_hidden_by_default_but_available():
    stream = generate_stream(2, 96, 96)
    app = build_smp_assembly(stream)
    plain = app.graph()
    assert "observer" not in plain.nodes
    full = app.graph(include_observation=True)
    assert "observer" in full.nodes
    # observer queries every component; every component replies
    assert set(full.successors("observer")) == set(plain.nodes)
    assert set(full.predecessors("observer")) == set(plain.nodes)
