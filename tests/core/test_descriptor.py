"""Tests for JSON deployment descriptors."""

import pytest

from repro.core import APPLICATION_LEVEL, Application
from repro.core.descriptor import (
    DescriptorError,
    app_from_descriptor,
    app_to_descriptor,
    load_descriptor,
    save_descriptor,
)
from repro.mjpeg import generate_stream
from repro.mjpeg.components import (
    FetchComponent,
    IdctComponent,
    ReorderComponent,
    build_smp_assembly,
)
from repro.runtime import SmpSimRuntime

from tests.runtime.conftest import consumer_behavior, make_pipeline_app, producer_behavior


def test_roundtrip_structure():
    app = make_pipeline_app()
    desc = app_to_descriptor(app)
    assert desc["application"] == "pipeline"
    assert {c["name"] for c in desc["components"]} == {"prod", "cons"}
    assert desc["connections"] == [
        {"from": "prod", "required": "out", "to": "cons", "provided": "in"}
    ]
    assert desc["observer"]["targets"] == ["prod", "cons"]


def test_rebuilt_app_runs_identically():
    desc = app_to_descriptor(make_pipeline_app(n_messages=7))
    rebuilt = app_from_descriptor(
        desc,
        behaviors={
            "prod": producer_behavior(7),
            "cons": consumer_behavior(),
        },
    )
    rt = SmpSimRuntime()
    rt.run(rebuilt)
    reports = rt.collect()
    rt.stop()
    assert reports[("prod", APPLICATION_LEVEL)]["sends"] == 7


def test_json_file_roundtrip(tmp_path):
    app = make_pipeline_app()
    path = tmp_path / "app.json"
    save_descriptor(app, path)
    desc = load_descriptor(path)
    assert desc == app_to_descriptor(make_pipeline_app())


def test_missing_behavior_rejected():
    desc = app_to_descriptor(make_pipeline_app())
    with pytest.raises(DescriptorError, match="no behaviour"):
        app_from_descriptor(desc, behaviors={"prod": producer_behavior(1)})


def test_version_checked():
    with pytest.raises(DescriptorError, match="version"):
        app_from_descriptor({"version": 99})


def test_prebuilt_components_for_stateful_behaviours():
    """The MJPEG assembly round-trips with prebuilt (stateful) components."""
    stream = generate_stream(4, 96, 96, seed=0)
    original = build_smp_assembly(stream)
    desc = app_to_descriptor(original)

    stream2 = generate_stream(4, 96, 96, seed=0)
    prebuilt = {
        "Fetch": FetchComponent("Fetch", stream2, n_idct=3),
        "Reorder": ReorderComponent("Reorder", 96, 96, n_upstream=3),
        **{f"IDCT_{i}": IdctComponent(f"IDCT_{i}", i) for i in (1, 2, 3)},
    }
    rebuilt = app_from_descriptor(desc, components=prebuilt)
    rt = SmpSimRuntime()
    rt.run(rebuilt)
    reports = rt.collect()
    rt.stop()
    assert reports[("Fetch", APPLICATION_LEVEL)]["sends"] == 18 * 3


def test_prebuilt_interface_mismatch_detected():
    desc = app_to_descriptor(make_pipeline_app())
    wrong = Application("x").create("prod", behavior=producer_behavior(1))  # no 'out'
    with pytest.raises(DescriptorError, match="do not"):
        app_from_descriptor(desc, components={"prod": wrong})


def test_placement_survives_roundtrip():
    app = make_pipeline_app()
    app.components["prod"].place(cpu=2, priority=7, stream=object())  # last one unserialisable
    desc = app_to_descriptor(app)
    spec = next(c for c in desc["components"] if c["name"] == "prod")
    assert spec["placement"] == {"cpu": 2, "priority": 7}
