"""Coverage of smaller API paths: try_receive, observer helpers, etc."""

import pytest

from repro.core import Application, CONTROL
from repro.core.errors import ObservationError
from repro.core.observer import ObserverComponent
from repro.runtime import NativeRuntime, SmpSimRuntime

from tests.runtime.conftest import make_pipeline_app


def test_try_receive_on_sim_runtime():
    app = Application("poll")
    seen = []

    def poller(ctx):
        # nothing there yet
        seen.append(ctx.try_receive("in"))
        msg = yield from ctx.receive("in")  # blocking pairs with the put
        seen.append(msg.payload)
        seen.append(ctx.try_receive("in"))

    def pusher(ctx):
        yield from ctx.send("out", "hello")

    app.create("poller", behavior=poller, provides=["in"])
    app.create("pusher", behavior=pusher, requires=["out"])
    app.connect("pusher", "out", "poller", "in")
    rt = SmpSimRuntime()
    rt.run(app)
    assert seen[0] is None
    assert seen[1] == "hello"
    assert seen[2] is None


def test_try_receive_on_native_runtime():
    app = Application("poll")
    seen = []

    def poller(ctx):
        msg = yield from ctx.receive("in")
        seen.append(msg.payload)
        seen.append(ctx.try_receive("in"))  # drained

    def pusher(ctx):
        yield from ctx.send("out", b"data")

    app.create("poller", behavior=poller, provides=["in"])
    app.create("pusher", behavior=pusher, requires=["out"])
    app.connect("pusher", "out", "poller", "in")
    rt = NativeRuntime()
    rt.run(app)
    rt.stop()
    assert seen == [b"data", None]


def test_observer_report_for_and_collect_all_levels():
    app = make_pipeline_app()
    rt = SmpSimRuntime()
    rt.run(app)
    rt.collect()
    rt.stop()
    obs = app.observer
    assert obs.report_for("prod", "application")["sends"] == 5
    with pytest.raises(ObservationError, match="no 'os' report"):
        ObserverComponent("fresh").report_for("prod", "os")


def test_observer_rejects_unattached_target():
    app = make_pipeline_app()
    rt = SmpSimRuntime()
    rt.run(app)
    with pytest.raises(ObservationError, match="not attached"):
        rt.collect(plan=[("ghost", "os")])


def test_observer_rejects_bad_level_in_plan():
    app = make_pipeline_app()
    rt = SmpSimRuntime()
    rt.run(app)
    with pytest.raises(ObservationError, match="unknown observation level"):
        rt.collect(plan=[("prod", "bogus")])


def test_observer_register_twice_rejected():
    app = make_pipeline_app(observer=False)
    obs = ObserverComponent()
    app.add(obs)
    obs.register_target(app.components["prod"])
    with pytest.raises(ObservationError, match="already observed"):
        obs.register_target(app.components["prod"])


def test_runtime_probe_accessor_and_unknown_component():
    from repro.runtime.base import RuntimeError_

    app = make_pipeline_app()
    rt = SmpSimRuntime()
    rt.run(app)
    assert rt.probe("prod").data_sends.value == 5
    with pytest.raises(RuntimeError_, match="no deployed"):
        rt.probe("ghost")


def test_double_deploy_rejected():
    from repro.runtime.base import RuntimeError_

    rt = SmpSimRuntime()
    rt.deploy(make_pipeline_app())
    with pytest.raises(RuntimeError_, match="already"):
        rt.deploy(make_pipeline_app())


def test_start_before_deploy_rejected():
    from repro.runtime.base import RuntimeError_

    with pytest.raises(RuntimeError_, match="deploy"):
        SmpSimRuntime().start()
    with pytest.raises(RuntimeError_, match="deploy"):
        NativeRuntime().start()


def test_context_log_collects():
    app = Application("logs")

    def chatty(ctx):
        ctx.log("starting")
        yield from ctx.compute("x", 1)
        ctx.log("done")

    app.create("c", behavior=chatty)
    rt = SmpSimRuntime()
    rt.run(app)
    messages = [text for (_, comp, text) in rt.logs if comp == "c"]
    assert messages == ["starting", "done"]


def test_memory_region_allocations_listing():
    from repro.hw import MemoryRegion

    r = MemoryRegion("m", 1000)
    r.alloc(100, "stack")
    r.alloc(50, "mailbox")
    assert r.allocations() == [("stack", 100), ("mailbox", 50)]


def test_embx_invalid_config_rejected():
    from repro.embx import EmbxError, EmbxTransport
    from repro.hw import MemoryRegion
    from repro.sim import Kernel

    with pytest.raises(EmbxError):
        EmbxTransport(Kernel(), MemoryRegion("m", 1024), bounce_bytes=0)
    with pytest.raises(EmbxError):
        EmbxTransport(Kernel(), MemoryRegion("m", 1024), bounce_penalty=0.5)


def test_semaphore_waiting_count():
    from repro.sim import Kernel, Process, Semaphore, Timeout

    k = Kernel()
    sem = Semaphore(k, value=0)

    def waiter():
        yield from sem.acquire()

    Process(k, waiter())
    Process(k, waiter())
    k.schedule(10, lambda: counts.append(sem.waiting))
    k.schedule(20, sem.release)
    k.schedule(20, sem.release)
    counts = []
    k.run()
    assert counts == [2]
    assert sem.waiting == 0
