"""Interface contracts and the live checker.

Level 3/4 contracts (ordering, QoS) as declarative interface
attachments: validation at construction, attachment rules on the
component, and the checker's three violation sinks (registry counter,
``violations`` dict, causal-trace INSTANT event) for every clause.
"""

from types import SimpleNamespace

import pytest

from repro.core import Component, ConnectionError_
from repro.core.contracts import (
    DEADLINE,
    InterfaceContract,
    ORDERING,
    RATE,
    ContractChecker,
)
from repro.core.interfaces import OBSERVATION_INTERFACE
from repro.metrics.telemetry import MetricsRegistry
from repro.trace.events import INSTANT


def _msg(seq=0, src="prod", span=7):
    return SimpleNamespace(seq=seq, src=src, span=span)


class _SpyTracer:
    def __init__(self):
        self.events = []

    def emit(self, category, name, phase=INSTANT, **args):
        self.events.append((category, name, phase, args))


def _checker(contract, tracer=None, window_ns=1_000, side="receive"):
    reg = MetricsRegistry(window_ns=window_ns)
    contracts = {"in": contract}
    checker = ContractChecker(
        "cons",
        contracts if side == "receive" else {},
        contracts if side == "send" else {},
        reg,
        tracer=tracer,
    )
    return checker, reg


# -- the contract dataclass --------------------------------------------------


def test_contract_validation():
    with pytest.raises(ValueError, match="deadline_ns"):
        InterfaceContract(deadline_ns=0)
    with pytest.raises(ValueError, match="deadline_ns"):
        InterfaceContract(deadline_ns=-5)
    with pytest.raises(ValueError, match="min_rate_hz"):
        InterfaceContract(min_rate_hz=0)
    with pytest.raises(ValueError, match="max_rate_hz"):
        InterfaceContract(max_rate_hz=-1.0)
    with pytest.raises(ValueError, match="exceeds"):
        InterfaceContract(min_rate_hz=100.0, max_rate_hz=10.0)


def test_checks_anything():
    assert not InterfaceContract().checks_anything
    assert not InterfaceContract(name="named-but-empty").checks_anything
    assert InterfaceContract(deadline_ns=1).checks_anything
    assert InterfaceContract(ordered=True).checks_anything
    assert InterfaceContract(min_rate_hz=1.0).checks_anything


def test_to_dict_is_sparse():
    assert InterfaceContract().to_dict() == {}
    full = InterfaceContract(
        deadline_ns=5_000, min_rate_hz=1.0, max_rate_hz=2.0, ordered=True, name="qos"
    )
    assert full.to_dict() == {
        "name": "qos",
        "deadline_ns": 5_000,
        "min_rate_hz": 1.0,
        "max_rate_hz": 2.0,
        "ordered": True,
    }


def test_set_contract_attachment_rules():
    c = Component("cons")
    c.add_provided("in")
    contract = InterfaceContract(deadline_ns=1_000)
    assert c.set_contract("in", contract) is c  # chains
    assert c.provided["in"].contract is contract
    with pytest.raises(ConnectionError_, match="no interface"):
        c.set_contract("nope", contract)
    with pytest.raises(ConnectionError_, match="observation"):
        c.set_contract(OBSERVATION_INTERFACE, contract)


# -- deadline clause ---------------------------------------------------------


def test_deadline_violation_hits_all_three_sinks():
    tracer = _SpyTracer()
    checker, reg = _checker(InterfaceContract(deadline_ns=5_000), tracer=tracer)
    checker.on_receive("in", _msg(seq=1), latency_ns=4_000, ts_ns=100)  # within
    checker.on_receive("in", _msg(seq=2), latency_ns=5_000, ts_ns=200)  # exactly at
    assert checker.violations == {}
    checker.on_receive("in", _msg(seq=3, span=99), latency_ns=5_001, ts_ns=300)
    assert checker.violations == {("in", DEADLINE): 1}
    counter = reg.counter(
        "contract_violations_total", component="cons", iface="in", kind=DEADLINE
    )
    assert counter.value == 1
    (event,) = tracer.events
    assert event[:3] == ("contract", "violation", INSTANT)
    assert event[3]["iface"] == "in" and event[3]["kind"] == DEADLINE
    assert event[3]["latency_ns"] == 5_001 and event[3]["span"] == 99


# -- ordering clause ---------------------------------------------------------


def test_ordering_trips_on_duplicates_and_reorderings():
    checker, _ = _checker(InterfaceContract(ordered=True))
    for seq in (1, 2, 5):  # gaps are fine: monotone per sender
        checker.on_receive("in", _msg(seq=seq), latency_ns=0, ts_ns=seq)
    assert checker.violations == {}
    checker.on_receive("in", _msg(seq=5), latency_ns=0, ts_ns=10)  # duplicate
    checker.on_receive("in", _msg(seq=3), latency_ns=0, ts_ns=11)  # reordering
    assert checker.violations == {("in", ORDERING): 2}


def test_ordering_is_per_sender():
    checker, _ = _checker(InterfaceContract(ordered=True))
    checker.on_receive("in", _msg(seq=9, src="a"), latency_ns=0, ts_ns=1)
    checker.on_receive("in", _msg(seq=1, src="b"), latency_ns=0, ts_ns=2)
    assert checker.violations == {}  # b's stream is independent of a's


def test_uncontracted_interface_is_ignored():
    checker, _ = _checker(InterfaceContract(ordered=True, deadline_ns=1))
    checker.on_receive("other", _msg(seq=1), latency_ns=10**9, ts_ns=1)
    checker.on_receive("other", _msg(seq=1), latency_ns=10**9, ts_ns=2)
    checker.on_send("other", _msg(), ts_ns=3)
    assert checker.violations == {}


# -- rate clauses (driven through on_window, like the registry does) ---------


def test_max_rate_checked_on_every_window():
    # 1 kHz ceiling over 1 us windows -> more than 1 message per window trips
    checker, _ = _checker(InterfaceContract(max_rate_hz=1_000.0), window_ns=1_000_000)
    for i in range(3):
        checker.on_receive("in", _msg(seq=i), latency_ns=0, ts_ns=100 + i)
    checker.on_window(0, 0, 1_000_000, final=False)
    assert checker.violations == {("in", RATE): 1}
    # final windows still judge max
    checker.on_receive("in", _msg(seq=10), latency_ns=0, ts_ns=1_000_100)
    checker.on_receive("in", _msg(seq=11), latency_ns=0, ts_ns=1_000_200)
    checker.on_window(1, 1_000_000, 2_000_000, final=True)
    assert checker.violations == {("in", RATE): 2}


def test_min_rate_skips_first_and_final_windows():
    checker, _ = _checker(InterfaceContract(min_rate_hz=2_000_000.0), window_ns=1_000_000)
    checker.on_receive("in", _msg(seq=1), latency_ns=0, ts_ns=500)
    checker.on_window(0, 0, 1_000_000, final=False)  # first window: warm-up
    assert checker.violations == {}
    checker.on_receive("in", _msg(seq=2), latency_ns=0, ts_ns=1_000_500)
    checker.on_window(1, 1_000_000, 2_000_000, final=False)  # interior: judged
    assert checker.violations == {("in", RATE): 1}
    checker.on_window(2, 2_000_000, 3_000_000, final=True)  # final: drain
    assert checker.violations == {("in", RATE): 1}


def test_min_rate_silent_before_any_traffic():
    checker, _ = _checker(InterfaceContract(min_rate_hz=1_000.0))
    checker.on_window(5, 5_000, 6_000, final=False)
    assert checker.violations == {}


def test_send_side_rate_contract():
    checker, _ = _checker(
        InterfaceContract(max_rate_hz=1_000.0), window_ns=1_000_000, side="send"
    )
    for i in range(4):
        checker.on_send("in", _msg(seq=i), ts_ns=10 + i)
    checker.on_window(0, 0, 1_000_000, final=False)
    assert checker.violations == {("in", RATE): 1}


# -- summary -----------------------------------------------------------------


def test_summary_shape():
    checker, _ = _checker(InterfaceContract(deadline_ns=5_000, ordered=True))
    checker.on_receive("in", _msg(seq=2), latency_ns=9_000, ts_ns=1)
    checker.on_receive("in", _msg(seq=2), latency_ns=9_000, ts_ns=2)
    summary = checker.summary()
    assert summary["contracts"] == {"in": {"deadline_ns": 5_000, "ordered": True}}
    assert summary["violations"] == 3  # 2 deadline + 1 ordering
    assert summary["violations_by_interface"] == {
        "in": {DEADLINE: 2, ORDERING: 1}
    }
