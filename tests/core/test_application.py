"""Unit tests for the application assembly and observer wiring."""

import pytest

from repro.core import Application, Component, ConnectionError_, ObserverComponent
from repro.core.errors import LifecycleError
from repro.core.interfaces import OBSERVATION_INTERFACE
from repro.core.observer import REPORTS_INTERFACE


def two_component_app():
    app = Application("t")
    app.create("a", requires=["out"])
    app.create("b", provides=["in"])
    app.connect("a", "out", "b", "in")
    return app


def test_create_declares_interfaces_and_placement():
    app = Application("t")
    c = app.create("c", provides=["in"], requires=["out"], cpu=2)
    assert "in" in c.provided and "out" in c.required
    assert c.placement == {"cpu": 2}


def test_duplicate_component_rejected():
    app = Application("t")
    app.create("c")
    with pytest.raises(ConnectionError_, match="duplicate"):
        app.add(Component("c"))


def test_connect_by_name_and_object():
    app = Application("t")
    a = app.create("a", requires=["out"])
    b = app.create("b", provides=["in"])
    app.connect(a, "out", "b", "in")
    assert a.get_required("out").target is b.get_provided("in")


def test_connect_foreign_component_rejected():
    app = Application("t")
    app.create("a", requires=["out"])
    foreign = Component("x")
    foreign.add_provided("in")
    with pytest.raises(ConnectionError_, match="not part of"):
        app.connect("a", "out", foreign, "in")


def test_unknown_component_ref():
    app = Application("t")
    with pytest.raises(ConnectionError_, match="no component"):
        app.connect("ghost", "out", "ghost2", "in")


def test_validate_requires_connections():
    app = Application("t")
    app.create("a", requires=["out"])
    with pytest.raises(ConnectionError_, match="not connected"):
        app.validate()


def test_validate_empty_app_rejected():
    with pytest.raises(ConnectionError_, match="no components"):
        Application("t").validate()


def test_observation_required_is_optional_for_validate():
    app = two_component_app()
    app.validate()  # no observer attached; introspection unconnected is OK


def test_connections_listing():
    app = two_component_app()
    assert ("a.out", "b.in") in app.connections()


def test_attach_observer_wires_both_directions():
    app = two_component_app()
    obs = app.attach_observer()
    for name in ("a", "b"):
        comp = app.components[name]
        # observer -> component query path
        req = obs.get_required(f"obs_{name}")
        assert req.target is comp.get_provided(OBSERVATION_INTERFACE)
        # component -> observer reply path
        assert comp.get_required(OBSERVATION_INTERFACE).target is obs.get_provided(
            REPORTS_INTERFACE
        )
    assert obs.targets == ["a", "b"]


def test_attach_observer_subset():
    app = two_component_app()
    obs = app.attach_observer(targets=["a"])
    assert obs.targets == ["a"]
    assert not app.components["b"].get_required(OBSERVATION_INTERFACE).connected


def test_second_observer_rejected():
    app = two_component_app()
    app.attach_observer()
    with pytest.raises(ConnectionError_, match="already has an observer"):
        app.attach_observer(ObserverComponent("obs2"))


def test_seal_freezes_structure():
    app = two_component_app()
    app.seal()
    with pytest.raises(LifecycleError, match="already deployed"):
        app.create("late")
    assert all(c.state == "DEPLOYED" for c in app.components.values())


def test_functional_components_excludes_observer():
    app = two_component_app()
    app.attach_observer()
    names = [c.name for c in app.functional_components()]
    assert names == ["a", "b"]
