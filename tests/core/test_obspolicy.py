"""Tests for observation policies (configurable observation contexts)."""

import pytest

from repro.core import APPLICATION_LEVEL, Component, Message, MIDDLEWARE_LEVEL, OS_LEVEL
from repro.core.errors import ObservationError
from repro.core.observation import ObservationProbe
from repro.core.obspolicy import ObservationPolicy
from repro.runtime import SmpSimRuntime

from tests.runtime.conftest import make_pipeline_app


def probe_with(policy):
    c = Component("c")
    c.add_required("out")
    return ObservationProbe(c, policy=policy)


def data_msg():
    return Message(payload=b"x" * 100)


def test_policy_validation():
    with pytest.raises(ObservationError, match="unknown"):
        ObservationPolicy(levels=frozenset({"bogus"}))
    with pytest.raises(ObservationError, match="sample_every"):
        ObservationPolicy(sample_every=0)


def test_full_policy_records_everything():
    probe = probe_with(ObservationPolicy.full())
    probe.record_send("out", data_msg(), 100)
    assert probe.send_timer.count == 1
    assert probe.bytes_sent > 0


def test_counters_only_policy_skips_timing_and_bytes():
    probe = probe_with(ObservationPolicy.counters_only())
    for _ in range(5):
        probe.record_send("out", data_msg(), 100)
    assert probe.data_sends.value == 5  # counters stay exact
    assert probe.send_timer.count == 0
    assert probe.bytes_sent == 0


def test_sampled_policy_times_one_in_n():
    probe = probe_with(ObservationPolicy.sampled(4))
    for _ in range(40):
        probe.record_send("out", data_msg(), 100)
    assert probe.data_sends.value == 40
    assert probe.send_timer.count == 10


def test_disabled_level_raises_at_report():
    probe = probe_with(ObservationPolicy.counters_only())
    probe.report(APPLICATION_LEVEL)  # allowed
    with pytest.raises(ObservationError, match="disabled"):
        probe.report(OS_LEVEL)
    with pytest.raises(ObservationError, match="disabled"):
        probe.report(MIDDLEWARE_LEVEL)


def test_runtime_wide_policy_applies_to_all_components():
    app = make_pipeline_app()
    rt = SmpSimRuntime()
    rt.observation_policy = ObservationPolicy.counters_only()
    rt.run(app)
    reports = rt.collect(plan=[("prod", APPLICATION_LEVEL), ("prod", MIDDLEWARE_LEVEL)])
    rt.stop()
    assert reports[("prod", APPLICATION_LEVEL)]["sends"] == 5
    # disabled level: the service answers with an error marker, not a crash
    assert "error" in reports[("prod", MIDDLEWARE_LEVEL)]


def test_per_component_policy_override():
    app = make_pipeline_app()
    app.components["prod"].place(observation_policy=ObservationPolicy.counters_only())
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect(
        plan=[("prod", MIDDLEWARE_LEVEL), ("cons", MIDDLEWARE_LEVEL)]
    )
    rt.stop()
    assert "error" in reports[("prod", MIDDLEWARE_LEVEL)]
    assert reports[("cons", MIDDLEWARE_LEVEL)]["receive"]["count"] > 0


def test_sampling_still_measures_representative_means():
    """Sampled timing converges to the same mean as full timing on a
    uniform workload (middleware durations are per-size deterministic)."""
    means = {}
    for tag, policy in (("full", None), ("sampled", ObservationPolicy.sampled(3))):
        app = make_pipeline_app(n_messages=30, payload_bytes=50_000)
        if policy:
            app.components["prod"].place(observation_policy=policy)
        rt = SmpSimRuntime()
        rt.run(app)
        reports = rt.collect(plan=[("prod", MIDDLEWARE_LEVEL)])
        rt.stop()
        means[tag] = reports[("prod", MIDDLEWARE_LEVEL)]["send"]["mean_ns"]
    assert means["sampled"] == pytest.approx(means["full"], rel=0.05)
