"""Unit tests for components, interfaces and connections."""

import pytest

from repro.core import Component, ComponentState, ConnectionError_
from repro.core.errors import LifecycleError
from repro.core.interfaces import DEFAULT_MAILBOX_BYTES, OBSERVATION_INTERFACE


def test_component_has_default_observation_pair():
    c = Component("c")
    assert OBSERVATION_INTERFACE in c.provided
    assert OBSERVATION_INTERFACE in c.required
    assert c.provided[OBSERVATION_INTERFACE].is_observation
    assert c.required[OBSERVATION_INTERFACE].is_observation


def test_interface_listing_order_matches_figure5():
    """Provided first (observation first), then required."""
    idct = Component("IDCT_1")
    idct.add_provided("_fetchIdct1")
    idct.add_required("idctReorder")
    assert idct.interfaces() == [
        ("introspection", "provided"),
        ("_fetchIdct1", "provided"),
        ("introspection", "required"),
        ("idctReorder", "required"),
    ]


def test_invalid_names_rejected():
    with pytest.raises(ValueError):
        Component("")
    with pytest.raises(ValueError):
        Component("a.b")


def test_duplicate_interface_rejected():
    c = Component("c")
    c.add_provided("in")
    with pytest.raises(ConnectionError_, match="already provides"):
        c.add_provided("in")
    c.add_required("out")
    with pytest.raises(ConnectionError_, match="already requires"):
        c.add_required("out")


def test_connect_sets_pointer():
    a, b = Component("a"), Component("b")
    a.add_required("out")
    b.add_provided("in")
    a.get_required("out").connect(b.get_provided("in"))
    assert a.get_required("out").target is b.get_provided("in")
    assert a.get_required("out").connected


def test_double_connect_rejected():
    a, b, c = Component("a"), Component("b"), Component("c")
    a.add_required("out")
    b.add_provided("in")
    c.add_provided("in")
    a.get_required("out").connect(b.get_provided("in"))
    with pytest.raises(ConnectionError_, match="already connected"):
        a.get_required("out").connect(c.get_provided("in"))


def test_self_connection_rejected():
    a = Component("a")
    a.add_required("out")
    a.add_provided("in")
    with pytest.raises(ConnectionError_, match="same component"):
        a.get_required("out").connect(a.get_provided("in"))


def test_observation_functional_mixing_rejected():
    a, b = Component("a"), Component("b")
    a.add_required("out")
    with pytest.raises(ConnectionError_, match="mix"):
        a.get_required("out").connect(b.get_provided(OBSERVATION_INTERFACE))


def test_multiple_required_share_one_provided():
    """Multi-sender mailbox: 3 IDCTs into one Reorder input."""
    reorder = Component("reorder")
    reorder.add_provided("in")
    for i in range(3):
        idct = Component(f"idct{i}")
        idct.add_required("out")
        idct.get_required("out").connect(reorder.get_provided("in"))


def test_unknown_interface_error_lists_available():
    c = Component("c")
    c.add_provided("in")
    with pytest.raises(ConnectionError_, match="available"):
        c.get_provided("nope")
    with pytest.raises(ConnectionError_, match="available"):
        c.get_required("nope")


def test_interface_bytes_counts_functional_provided_only():
    c = Component("c")
    assert c.interface_bytes() == 0  # observation pair is free
    c.add_provided("in")
    assert c.interface_bytes() == DEFAULT_MAILBOX_BYTES
    c.add_provided("in2", mailbox_bytes=1000)
    assert c.interface_bytes() == DEFAULT_MAILBOX_BYTES + 1000


def test_functional_interface_filters():
    c = Component("c")
    c.add_provided("in")
    c.add_required("out")
    assert [p.name for p in c.functional_provided()] == ["in"]
    assert [r.name for r in c.functional_required()] == ["out"]


def test_add_interface_after_deploy_rejected():
    c = Component("c")
    c.state = ComponentState.DEPLOYED
    with pytest.raises(LifecycleError):
        c.add_provided("late")


def test_behavior_function_style():
    def beh(ctx):
        yield from ctx.compute("x", 1)

    c = Component("c", behavior=beh)
    gen = c.behavior(None)
    assert hasattr(gen, "send")


def test_behavior_missing_raises():
    c = Component("c")
    with pytest.raises(LifecycleError, match="no behaviour"):
        c.behavior(None)


def test_place_chains_and_accumulates():
    c = Component("c").place(cpu=1).place(priority=7)
    assert c.placement == {"cpu": 1, "priority": 7}
