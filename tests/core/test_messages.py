"""Unit tests for messages and payload sizing."""

import numpy as np
import pytest

from repro.core import CONTROL, DATA, Message, payload_nbytes
from repro.core.messages import MESSAGE_HEADER_BYTES


def test_payload_nbytes_ndarray():
    assert payload_nbytes(np.zeros((8, 8), dtype=np.float32)) == 256


def test_payload_nbytes_bytes_and_str():
    assert payload_nbytes(b"abcd") == 4
    assert payload_nbytes("héllo") == 6  # utf-8
    assert payload_nbytes(None) == 0


def test_payload_nbytes_containers():
    assert payload_nbytes([b"ab", b"cd"]) == 4
    assert payload_nbytes({"k": np.zeros(4, dtype=np.uint8)}) >= 4


def test_message_size_estimated_with_header():
    m = Message(payload=b"x" * 100)
    assert m.size_bytes == 100 + MESSAGE_HEADER_BYTES


def test_message_explicit_size_respected():
    m = Message(payload=b"x", size_bytes=5000)
    assert m.size_bytes == 5000


def test_message_kind_validated():
    with pytest.raises(ValueError, match="unknown message kind"):
        Message(payload=None, kind="bogus")


def test_message_negative_size_rejected():
    with pytest.raises(ValueError, match="negative"):
        Message(payload=None, size_bytes=-2)


def test_is_data():
    assert Message(payload=None, kind=DATA).is_data
    assert not Message(payload=None, kind=CONTROL).is_data
