"""Shared fixtures for fault-injection and supervision tests."""

import numpy as np
import pytest

from repro.core import Application, CONTROL


def producer_behavior(n_messages, payload=None):
    def behavior(ctx):
        for i in range(n_messages):
            body = payload if payload is not None else np.full(16, i, dtype=np.float32)
            yield from ctx.send("out", body, tag=f"m{i}")
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    return behavior


def collector_behavior(sink, eos_needed=1):
    """Consumer that appends every data payload to ``sink``."""

    def behavior(ctx):
        eos = 0
        while eos < eos_needed:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                eos += 1
                continue
            sink.append(msg.payload)
        return len(sink)

    return behavior


def make_pipeline(n_messages=10, payload=None, observer=False):
    """prod --out/in--> cons; returns (app, sink list)."""
    sink = []
    app = Application("faultpipe")
    app.create("prod", behavior=producer_behavior(n_messages, payload), requires=["out"])
    app.create("cons", behavior=collector_behavior(sink), provides=["in"])
    app.connect("prod", "out", "cons", "in")
    if observer:
        app.attach_observer()
    return app, sink


@pytest.fixture
def pipeline():
    return make_pipeline()
