"""Span conservation under seeded fault plans.

The property: causal tracing makes message loss *explicit*.  For any
seeded plan of transfer faults, every data span sent is accounted for --
received exactly once, received twice with a ``duplicate`` fault record
carrying its span, or received zero times with a ``drop``/``overflow``
record carrying its span.  Nothing vanishes silently.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.runtime import SmpSimRuntime
from repro.trace import SpanGraph, enable_tracing

from tests.faults.conftest import make_pipeline

N_MESSAGES = 40


def _run(seed):
    plan = (
        FaultPlan(seed=seed)
        .drop("prod", "out", probability=0.25)
        .duplicate("prod", "out", probability=0.25)
        .delay("prod", "out", probability=0.2, delay_ns=50_000)
    )
    app, sink = make_pipeline(n_messages=N_MESSAGES)
    rt = SmpSimRuntime()
    rt.deploy(app)
    buffer = enable_tracing(rt)
    injector = FaultInjector(plan).install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    return buffer, injector, sink


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 7])
def test_every_span_accounted_for(seed):
    buffer, injector, sink = _run(seed)
    graph = SpanGraph.from_trace(buffer)
    data_sends = [
        e for e in graph.edges.values() if e.op == "send" and e.kind == "data"
    ]
    assert len(data_sends) == N_MESSAGES
    n_dropped = n_duplicated = 0
    for edge in data_sends:
        if edge.span in graph.dropped:
            assert edge.receptions == 0, f"dropped span {edge.span} was received"
            n_dropped += 1
        elif edge.span in graph.duplicated:
            assert edge.receptions == 2, f"duplicated span {edge.span} not doubled"
            n_duplicated += 1
        else:
            assert edge.receptions == 1, f"span {edge.span} received {edge.receptions}x"
    # Conservation: receives == sends - dropped + duplicated.
    total_receptions = sum(e.receptions for e in data_sends)
    assert total_receptions == N_MESSAGES - n_dropped + n_duplicated
    # The consumer's sink saw exactly the delivered payload count.
    assert len(sink) == total_receptions
    # Control traffic is never faulted: eos delivered exactly once.
    controls = [e for e in graph.edges.values() if e.op == "send" and e.kind == "control"]
    assert controls and all(e.receptions == 1 for e in controls)
    # Delay faults by themselves do not lose anything (a span can be
    # delayed and *then* dropped by a later spec in the same plan).
    for span in graph.delayed - set(graph.dropped):
        assert graph.edges[span].receptions >= 1


@pytest.mark.parametrize("seed", [0, 3])
def test_fault_log_spans_match_graph(seed):
    buffer, injector, sink = _run(seed)
    graph = SpanGraph.from_trace(buffer)
    logged = {
        kind: {e["span"] for e in injector.log if e["kind"] == kind and "span" in e}
        for kind in ("drop", "duplicate", "delay")
    }
    # The injector's own log and the trace-derived graph tell the same
    # story, span for span.
    assert set(graph.dropped) == logged["drop"]
    assert graph.duplicated == logged["duplicate"]
    assert graph.delayed == logged["delay"]


def test_same_seed_same_fate():
    g1 = SpanGraph.from_trace(_run(11)[0])
    g2 = SpanGraph.from_trace(_run(11)[0])
    assert set(g1.dropped) == set(g2.dropped)
    assert g1.duplicated == g2.duplicated
    assert {s: e.receptions for s, e in g1.edges.items()} == {
        s: e.receptions for s, e in g2.edges.items()
    }
