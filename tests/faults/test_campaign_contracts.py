"""Contract violations under chaos: the acceptance-criterion test.

A seeded fault campaign must trip the decode pipeline's QoS contracts
and every violation must be observable *twice* -- as a ``contract``
INSTANT event in the causal trace and as a nonzero
``contract_violations_total`` counter in the exporters.  Replays under
recovery carry their original send stamp through the restart backoff,
so they arrive past the delivery deadline; injected duplicates that
reach the application trip the ordering clause.
"""

import pytest

from repro.faults import run_chaos_campaign
from repro.faults.campaign import DEADLINE_US
from repro.metrics.export import to_prometheus


@pytest.fixture(scope="module")
def recovered():
    return run_chaos_campaign(seed=1, n_images=6, recover=True)


def test_recovery_replays_trip_the_deadline_contract(recovered):
    r = recovered
    assert r.ok and r.bit_exact
    assert r.contract_violations.get("deadline", 0) >= 1
    # exactly-once recovery dedups duplicates at admission: no ordering
    # violation can reach the application
    assert "ordering" not in r.contract_violations


def test_every_violation_is_both_trace_event_and_counter(recovered):
    r = recovered
    assert r.contract_trace_events == sum(r.contract_violations.values())
    assert r.contract_trace_events >= 1


def test_violations_reach_the_prometheus_exporter(recovered):
    prom = to_prometheus(recovered.metrics)
    lines = [
        line
        for line in prom.splitlines()
        if line.startswith("repro_contract_violations_total") and 'kind="deadline"' in line
    ]
    assert lines, "deadline violations missing from the Prometheus export"
    total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
    assert total == recovered.contract_violations["deadline"]


def test_duplicates_without_recovery_trip_the_ordering_contract():
    r = run_chaos_campaign(seed=7, n_images=6)
    assert r.contract_violations.get("ordering", 0) >= 1
    assert r.contract_trace_events == sum(r.contract_violations.values())


def test_campaign_report_carries_the_contract_terms(recovered):
    report = recovered.summary()
    assert report["contract_violations"] == recovered.contract_violations
    assert report["contract_trace_events"] == recovered.contract_trace_events
    assert DEADLINE_US * 1_000 > 0  # the deadline is an ns-scale contract term
