"""Decision support: policy metrics, Pareto frontier, sensitivity."""

from repro.faults.decision import (
    build_report,
    pareto_frontier,
    policy_metrics,
    render_report,
    sensitivity,
)


def _cell(policy, fault_class="crash", intensity="light", *, ok=True,
          expected=3, delivered=3, restarts=0, mttr=0, backoff=0,
          violations=None, error=""):
    return {
        "cell": {
            "cell_id": f"cX-{policy}-{fault_class}-{intensity}",
            "policy": policy,
            "fault_class": fault_class,
            "intensity": intensity,
        },
        "result": {
            "ok": ok,
            "error": error,
            "frames_expected": expected,
            "frames_delivered": delivered,
            "restarts": restarts,
            "mttr_us": mttr,
            "backoff_total_ns": backoff,
            "contract_violations": violations or {},
        },
    }


def _aggregate(cells):
    return {
        "config_digest": "d" * 64,
        "n_cells": len(cells),
        "cells": cells,
        "quarantined": [],
        "summary": {
            "completed": len(cells),
            "cells_ok": sum(1 for c in cells if c["result"]["ok"]),
            "cells_failed": [
                c["cell"]["cell_id"] for c in cells if not c["result"]["ok"]
            ],
            "ok": all(c["result"]["ok"] for c in cells),
        },
    }


def test_policy_metrics_aggregates_per_policy():
    agg = _aggregate([
        _cell("restart", delivered=2, restarts=2, mttr=100, backoff=1_000_000),
        _cell("restart", delivered=3, restarts=1, mttr=200, backoff=500_000),
        _cell("halt", delivered=1, violations={"deadline": 4}),
    ])
    metrics = policy_metrics(agg)
    assert set(metrics) == {"halt", "restart"}
    restart = metrics["restart"]
    assert restart["cells"] == 2
    assert restart["frames_delivered"] == 5
    assert restart["frames_saved_pct"] == round(100 * 5 / 6, 2)
    assert restart["mttr_us_mean"] == 150.0  # mean over restarting cells only
    assert restart["backoff_ms_total"] == 1.5
    halt = metrics["halt"]
    assert halt["mttr_us_mean"] == 0.0  # no restarts, no repair-time signal
    assert halt["contract_violations"] == 4


def test_pareto_frontier_discards_dominated_policies_with_a_reason():
    # b saves as many frames as a with strictly less of every cost
    agg = _aggregate([
        _cell("a", delivered=3, restarts=2, mttr=200, backoff=2_000_000),
        _cell("b", delivered=3, restarts=1, mttr=100, backoff=1_000_000),
        _cell("c", delivered=1),  # cheap but lossy: incomparable, stays
    ])
    frontier, dominated = pareto_frontier(policy_metrics(agg))
    assert frontier == ["b", "c"]
    assert dominated == {"a": "b"}


def test_identical_policies_do_not_dominate_each_other():
    agg = _aggregate([
        _cell("a", delivered=2, restarts=1, mttr=50),
        _cell("b", delivered=2, restarts=1, mttr=50),
    ])
    frontier, dominated = pareto_frontier(policy_metrics(agg))
    assert frontier == ["a", "b"] and dominated == {}


def test_sensitivity_groups_by_class_policy_intensity():
    agg = _aggregate([
        _cell("restart", "crash", "light", delivered=3),
        _cell("restart", "crash", "heavy", delivered=1, violations={"deadline": 2}),
        _cell("restart", "drop", "light", delivered=2),
    ])
    sens = sensitivity(agg)
    assert set(sens) == {"crash", "drop"}
    crash_rows = sens["crash"]
    assert [(r["intensity"], r["frames_saved_pct"]) for r in crash_rows] == [
        ("heavy", round(100 / 3, 2)), ("light", 100.0),
    ]
    assert crash_rows[0]["contract_violations"] == 2


def test_build_and_render_report_end_to_end():
    agg = _aggregate([
        _cell("restart", "crash", "light", restarts=1, mttr=120, backoff=300_000),
        _cell("halt", "crash", "light", delivered=0, ok=True),
    ])
    report = build_report(agg)
    assert report["ok"] is True
    assert report["pareto"]["frontier"]  # never empty when policies exist
    text = render_report(report)
    assert "Supervision policies" in text
    assert "Pareto frontier" in text
    assert "Sensitivity: crash" in text
    assert "restart" in text and "halt" in text


def test_report_surfaces_failures_and_quarantine():
    agg = _aggregate([_cell("restart", ok=False, error="boom")])
    agg["quarantined"] = ["cY-lost"]
    agg["summary"]["ok"] = False
    report = build_report(agg)
    assert report["ok"] is False
    assert report["quarantined"] == ["cY-lost"]
    assert "quarantined" in render_report(report)
