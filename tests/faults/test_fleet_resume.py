"""Orchestrator SIGKILL mid-campaign: resume must reproduce the exact
aggregate bytes of an uninterrupted run.

The orchestrator CLI runs in a real child process and is SIGKILLed --
no cleanup, no atexit -- after a seed-derived number of cell results
have landed on disk.  ``repro campaign resume`` then completes only the
missing cells, and the aggregate must be byte-identical (sha256 over the
file) to the one an uninterrupted campaign of the same config produces.
"""

import hashlib
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.faults.fleet import CampaignConfig, run_fleet_campaign

#: One seed's grid: 2 classes x 2 policies x 2 platforms = 8 cells.
GRID = dict(
    fault_classes=("crash", "drop"),
    intensities=("light",),
    policies=("restart", "degrade"),
    shard_counts=(1, 2),
    n_images=4,
)

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _campaign_argv(root, seed):
    return [
        sys.executable, "-m", "repro.cli", "campaign", "run", root,
        "--seeds", str(seed), "--classes", ",".join(GRID["fault_classes"]),
        "--intensities", ",".join(GRID["intensities"]),
        "--policies", ",".join(GRID["policies"]),
        "--shards", ",".join(str(s) for s in GRID["shard_counts"]),
        "--images", str(GRID["n_images"]), "--workers", "2",
    ]


def _sha256(path):
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_sigkill_mid_campaign_then_resume_is_byte_identical(tmp_path, seed):
    # the uninterrupted witness, computed in-process
    config = CampaignConfig(seeds=(seed,), **GRID)
    witness = run_fleet_campaign(str(tmp_path / "witness"), config, max_workers=2)
    assert witness.ok

    # the victim: a real orchestrator process, SIGKILLed after a
    # seed-derived number of cell results are durable
    root = str(tmp_path / "victim")
    kill_after = 1 + seed % 3
    env = dict(os.environ, PYTHONPATH=os.path.abspath(REPO_SRC))
    proc = subprocess.Popen(
        _campaign_argv(root, seed), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    cells_dir = os.path.join(root, "cells")
    deadline = time.time() + 120
    while time.time() < deadline and proc.poll() is None:
        done = (
            [f for f in os.listdir(cells_dir) if f.endswith(".json")]
            if os.path.isdir(cells_dir) else []
        )
        if len(done) >= kill_after:
            break
        time.sleep(0.005)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()

    # the kill must not have left a (possibly torn) aggregate behind
    # unless the campaign actually finished first
    finished = proc.returncode == 0
    if not finished:
        assert not os.path.exists(os.path.join(root, "aggregate.json"))

    resumed = run_fleet_campaign(root, resume=True, max_workers=2)
    assert resumed.ok
    assert resumed.completed == witness.n_cells
    if not finished:
        assert resumed.executed > 0  # the resume did real work
    assert resumed.aggregate_sha256 == witness.aggregate_sha256
    assert _sha256(os.path.join(root, "aggregate.json")) == _sha256(
        os.path.join(str(tmp_path / "witness"), "aggregate.json")
    )
