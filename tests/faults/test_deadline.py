"""Per-receive deadlines (``timeout_ns``) on every runtime."""

import pytest

from repro.core import Application, CONTROL, DeadlineError
from repro.runtime import NativeRuntime, SmpSimRuntime, Sti7200SimRuntime
from repro.runtime.base import RuntimeError_
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.resources import Channel


def starved_app(timeout_ns):
    app = Application("starved")

    def starved(ctx):
        yield from ctx.receive("in", timeout_ns=timeout_ns)

    app.create("c", behavior=starved, provides=["in"])
    return app


def test_sim_deadline_raises_typed_error_with_context():
    rt = SmpSimRuntime()
    rt.deploy(starved_app(5_000_000))
    rt.start()
    with pytest.raises(DeadlineError) as err:
        rt.wait()
    assert err.value.component == "c"
    assert err.value.interface == "in"
    assert err.value.timeout_ns == 5_000_000
    assert "timed out" in str(err.value)
    # virtual time advanced exactly to the deadline
    assert rt.kernel.now >= 5_000_000


def test_sti7200_deadline_maps_embx_timeout_to_deadline_error():
    app = starved_app(3_000_000)
    app.components["c"].place(cpu=0)
    rt = Sti7200SimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(DeadlineError) as err:
        rt.wait()
    assert (err.value.component, err.value.interface) == ("c", "in")


def test_native_explicit_timeout_raises_deadline_error():
    rt = NativeRuntime(receive_timeout_s=60.0, join_timeout_s=10.0)
    rt.deploy(starved_app(100_000_000))  # 0.1 s, far below the runtime default
    rt.start()
    with pytest.raises(RuntimeError_) as err:
        rt.wait()
    cause = err.value.__cause__
    assert isinstance(cause, DeadlineError)
    assert cause.component == "c" and cause.interface == "in"
    assert cause.elapsed_ns >= 100_000_000


def test_native_placement_receive_timeout_overrides_runtime_default():
    app = Application("placed")

    def starved(ctx):
        yield from ctx.receive("in")  # no explicit deadline

    app.create("c", behavior=starved, provides=["in"])
    app.components["c"].place(receive_timeout_s=0.1)
    rt = NativeRuntime(receive_timeout_s=60.0, join_timeout_s=10.0)
    rt.deploy(app)
    rt.start()
    with pytest.raises(RuntimeError_, match="timed out"):
        rt.wait()
    assert isinstance(rt._errors["c"], DeadlineError)
    assert rt._errors["c"].timeout_ns == 100_000_000


def fed_pipeline(timeout_ns, n_messages=20):
    app = Application("fed")
    received = []

    def producer(ctx):
        for i in range(n_messages):
            yield from ctx.send("out", i)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def consumer(ctx):
        while True:
            msg = yield from ctx.receive("in", timeout_ns=timeout_ns)
            if msg.kind == CONTROL:
                return len(received)
            received.append(msg.payload)

    app.create("prod", behavior=producer, requires=["out"])
    app.create("cons", behavior=consumer, provides=["in"])
    app.connect("prod", "out", "cons", "in")
    return app, received


def test_sim_satisfied_deadlines_leak_no_timers():
    """Every armed deadline timer must be cancelled on delivery:
    ``Kernel.pending()`` returns to the no-deadline baseline."""
    app, received = fed_pipeline(timeout_ns=1_000_000_000)
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    rt.wait()
    rt.stop()
    assert len(received) == 20
    baseline_app, _ = fed_pipeline(timeout_ns=None)
    rt2 = SmpSimRuntime()
    rt2.deploy(baseline_app)
    rt2.start()
    rt2.wait()
    rt2.stop()
    assert rt.kernel.pending() == rt2.kernel.pending()


def test_native_satisfied_deadlines_deliver_normally():
    app, received = fed_pipeline(timeout_ns=5_000_000_000)
    rt = NativeRuntime(join_timeout_s=30.0)
    rt.deploy(app)
    rt.start()
    rt.wait()
    rt.stop()
    assert len(received) == 20


def test_channel_deadline_race_same_instant_delivery_wins():
    """A put scheduled at the exact deadline instant beats the timer
    (FIFO order: the put was scheduled first)."""
    kernel = Kernel()
    chan = Channel(kernel, name="race")
    outcome = {}

    def getter():
        ok, item = yield from chan.get_with_deadline(1_000)
        outcome["ok"], outcome["item"] = ok, item

    kernel.schedule(1_000, chan.put, "just-in-time")
    Process(kernel, getter(), name="getter")
    kernel.run()
    assert outcome == {"ok": True, "item": "just-in-time"}
    assert kernel.pending() == 0


def test_channel_deadline_expiry_unregisters_the_getter():
    kernel = Kernel()
    chan = Channel(kernel, name="expire")
    outcome = {}

    def getter():
        ok, item = yield from chan.get_with_deadline(500)
        outcome["first"] = (ok, item)
        ok, item = yield from chan.get_with_deadline(5_000)
        outcome["second"] = (ok, item)

    kernel.schedule(2_000, chan.put, "late")
    Process(kernel, getter(), name="getter")
    kernel.run()
    # first get expired; the late put went to the *second* get, not to a
    # ghost getter left behind by the expiry
    assert outcome["first"] == (False, None)
    assert outcome["second"] == (True, "late")
    assert len(chan) == 0
    assert kernel.pending() == 0


def test_tracing_context_forwards_timeout(monkeypatch):
    from repro.trace.tracer import enable_tracing

    rt = SmpSimRuntime()
    rt.deploy(starved_app(2_000_000))
    enable_tracing(rt)
    rt.start()
    with pytest.raises(DeadlineError):
        rt.wait()


def test_try_receive_counts_in_probe():
    """Satellite fix: polling receives feed the observation probe."""
    app = Application("poll")

    def producer(ctx):
        for i in range(5):
            yield from ctx.send("out", bytes(100))
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def poller(ctx):
        got = 0
        while got < 6:
            msg = ctx.try_receive("in")
            if msg is None:
                yield from ctx.compute("ns", 1_000)
                continue
            got += 1
        return got

    app.create("prod", behavior=producer, requires=["out"])
    app.create("cons", behavior=poller, provides=["in"])
    app.connect("prod", "out", "cons", "in")
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    rt.wait()
    rt.stop()
    probe = rt.probe("cons")
    assert probe.data_receives.value == 5  # control EOS not counted
    assert probe.bytes_received > 0
