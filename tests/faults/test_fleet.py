"""Fleet campaign orchestrator: grid, reference cache, resume, reaping."""

import json
import os

import pytest

from repro.faults import CampaignResult
from repro.faults.fleet import (
    CampaignConfig,
    CellSpec,
    FleetError,
    build_cell_plan,
    build_grid,
    cell_result_path,
    load_aggregate,
    quarantine_path,
    run_fleet_campaign,
)

#: A tiny grid (2 cells, one reference) that still exercises both a
#: restarting and a halting policy.
TINY = dict(
    seeds=(1,),
    fault_classes=("crash",),
    intensities=("light",),
    policies=("restart", "halt"),
    shard_counts=(1,),
    n_images=4,
)


# -- grid ------------------------------------------------------------------


def test_grid_is_the_cross_product_in_canonical_order():
    config = CampaignConfig(
        seeds=(1, 7),
        fault_classes=("crash", "drop"),
        intensities=("light", "heavy"),
        policies=("restart", "halt"),
        shard_counts=(1, 2),
        n_images=4,
    )
    grid = build_grid(config)
    assert len(grid) == 2 * 2 * 2 * 2 * 2
    assert [c.index for c in grid] == list(range(len(grid)))
    # the slowest-varying axis is the seed, the fastest the shard count
    assert grid[0].cell_id == "c00000-s1-crash.light-restart-sh1"
    assert grid[1].shards == 2
    assert grid[-1].cell_id == f"c{len(grid)-1:05d}-s7-drop.heavy-halt-sh2"


def test_grid_skips_recover_on_sharded_platforms():
    config = CampaignConfig(
        seeds=(1,),
        fault_classes=("crash",),
        intensities=("light",),
        policies=("restart", "recover"),
        shard_counts=(1, 2),
        n_images=4,
    )
    grid = build_grid(config)
    assert [(c.policy, c.shards) for c in grid] == [
        ("restart", 1), ("restart", 2), ("recover", 1),
    ]


def test_empty_grid_is_an_error():
    config = CampaignConfig(
        seeds=(1,),
        fault_classes=("crash",),
        intensities=("light",),
        policies=("recover",),
        shard_counts=(2,),
        n_images=4,
    )
    with pytest.raises(FleetError, match="empty"):
        build_grid(config)


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(seeds=()), "at least one seed"),
        (dict(seeds=(1, 1)), "duplicate campaign seeds"),
        (dict(seeds=(1,), policies=("restart", "reboot")), "unknown policy"),
        (dict(seeds=(1,), fault_classes=("meteor",)), "unknown fault class"),
        (dict(seeds=(1,), intensities=("medium",)), "unknown intensit"),
        (dict(seeds=(1,), shard_counts=(0,)), "shard count"),
        (dict(seeds=(1,), n_images=2), "at least 3 images"),
    ],
)
def test_config_is_validated_eagerly(kwargs, match):
    with pytest.raises(FleetError, match=match):
        CampaignConfig(**kwargs)


def test_config_roundtrips_and_digests_canonically():
    config = CampaignConfig(**TINY)
    clone = CampaignConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    assert clone == config
    assert clone.digest() == config.digest()


def test_cellspec_roundtrips():
    cell = CellSpec(3, 7, "stall", "heavy", "degrade", 2, 4)
    assert CellSpec.from_dict(cell.describe()) == cell
    assert cell.cell_id == "c00003-s7-stall.heavy-degrade-sh2"


# -- cell plans ------------------------------------------------------------


@pytest.mark.parametrize("fault_class", ["crash", "drop", "duplicate", "stall", "mixed"])
@pytest.mark.parametrize("intensity", ["light", "heavy"])
def test_cell_plans_are_deterministic_and_valid(fault_class, intensity):
    a = build_cell_plan(42, 4, fault_class, intensity)
    b = build_cell_plan(42, 4, fault_class, intensity)
    assert a.describe() == b.describe()
    assert len(a) >= 1
    a.validate()


def test_heavy_cells_inject_more_than_light():
    light = build_cell_plan(1, 4, "crash", "light")
    heavy = build_cell_plan(1, 4, "crash", "heavy")
    assert len(heavy) > len(light)


def test_unknown_cell_plan_inputs_are_rejected():
    with pytest.raises(FleetError, match="unknown fault class"):
        build_cell_plan(1, 4, "meteor", "light")
    with pytest.raises(FleetError, match="unknown intensity"):
        build_cell_plan(1, 4, "crash", "extreme")


# -- orchestrator ----------------------------------------------------------


def test_campaign_runs_resumes_and_reproduces_bytes(tmp_path):
    config = CampaignConfig(**TINY)
    first = run_fleet_campaign(str(tmp_path / "a"), config, max_workers=2)
    assert first.ok and first.executed == 2 and first.reused == 0
    assert first.cells_ok == 2

    # a second, independent run of the same config is byte-identical
    second = run_fleet_campaign(str(tmp_path / "b"), config, max_workers=2)
    assert second.aggregate_sha256 == first.aggregate_sha256

    # interrupt: lose one cell result and the aggregate, then resume
    root = str(tmp_path / "b")
    victim = build_grid(config)[0]
    os.unlink(cell_result_path(root, victim.cell_id))
    os.unlink(os.path.join(root, "aggregate.json"))
    resumed = run_fleet_campaign(root, resume=True, max_workers=2)
    assert resumed.reused == 1 and resumed.executed == 1
    assert resumed.aggregate_sha256 == first.aggregate_sha256

    # resuming a complete campaign re-runs nothing and keeps the bytes
    again = run_fleet_campaign(root, resume=True, max_workers=2)
    assert again.executed == 0 and again.reused == 2
    assert again.aggregate_sha256 == first.aggregate_sha256


def test_aggregate_lists_cells_in_grid_order(tmp_path):
    config = CampaignConfig(**TINY)
    result = run_fleet_campaign(str(tmp_path), config, max_workers=2)
    aggregate = load_aggregate(str(tmp_path))
    ids = [entry["cell"]["cell_id"] for entry in aggregate["cells"]]
    assert ids == [c.cell_id for c in build_grid(config)]
    assert aggregate["summary"]["ok"] is True
    assert aggregate["config_digest"] == config.digest()
    assert result.aggregate_path == str(tmp_path / "aggregate.json")


def test_reference_cache_is_shared_and_reused(tmp_path):
    config = CampaignConfig(**TINY)
    first = run_fleet_campaign(str(tmp_path), config, max_workers=2)
    # both cells share one (seed, platform) reference
    assert first.references_built == 1
    # a resume finds the cache valid and rebuilds nothing
    resumed = run_fleet_campaign(str(tmp_path), resume=True)
    assert resumed.references_built == 0


def test_mismatched_config_is_refused(tmp_path):
    run_fleet_campaign(str(tmp_path), CampaignConfig(**TINY), max_workers=2)
    other = CampaignConfig(**{**TINY, "seeds": (2,)})
    with pytest.raises(FleetError, match="different configuration"):
        run_fleet_campaign(str(tmp_path), other)


def test_resume_without_manifest_is_an_error(tmp_path):
    with pytest.raises(FleetError, match="no campaign to resume"):
        run_fleet_campaign(str(tmp_path / "nope"), resume=True)


def test_crashing_worker_is_retried_then_quarantined(tmp_path):
    def suicidal(root, cell_dict, settings):
        os._exit(17)

    config = CampaignConfig(**{**TINY, "policies": ("restart",)})
    result = run_fleet_campaign(
        str(tmp_path), config, max_workers=1,
        max_cell_attempts=2, retry_backoff_s=0.01, worker=suicidal,
    )
    assert not result.ok
    assert result.failed_attempts == 2
    cell_id = build_grid(config)[0].cell_id
    assert result.quarantined == [cell_id]
    assert os.path.exists(quarantine_path(str(tmp_path), cell_id))
    aggregate = load_aggregate(str(tmp_path))
    assert aggregate["quarantined"] == [cell_id]
    assert aggregate["summary"]["ok"] is False


def test_hung_worker_is_reaped_by_timeout(tmp_path):
    import time as _time

    def hung(root, cell_dict, settings):
        _time.sleep(3600)

    config = CampaignConfig(**{**TINY, "policies": ("restart",)})
    result = run_fleet_campaign(
        str(tmp_path), config, max_workers=1, cell_timeout_s=0.2,
        max_cell_attempts=1, worker=hung,
    )
    assert not result.ok
    assert result.failed_attempts == 1
    assert len(result.quarantined) == 1


def test_flaky_worker_recovers_on_retry_and_clears_quarantine(tmp_path):
    from repro.faults.fleet import _cell_worker

    flag = tmp_path / "attempted"

    def flaky(root, cell_dict, settings):
        if not flag.exists():
            flag.write_text("1")
            os._exit(1)
        _cell_worker(root, cell_dict, settings)

    config = CampaignConfig(**{**TINY, "policies": ("restart",)})
    result = run_fleet_campaign(
        str(tmp_path / "c"), config, max_workers=1,
        max_cell_attempts=3, retry_backoff_s=0.01, worker=flaky,
    )
    assert result.ok
    assert result.failed_attempts == 1 and result.executed == 1
    assert result.quarantined == []


def test_torn_cell_result_is_ignored_and_recomputed(tmp_path):
    config = CampaignConfig(**TINY)
    first = run_fleet_campaign(str(tmp_path), config, max_workers=2)
    victim = build_grid(config)[0]
    path = cell_result_path(str(tmp_path), victim.cell_id)
    with open(path, "w") as fh:
        fh.write('{"body": {"tampered": true}, "sha256": "beef"}')
    resumed = run_fleet_campaign(str(tmp_path), resume=True, max_workers=2)
    assert resumed.executed == 1 and resumed.reused == 1
    assert resumed.aggregate_sha256 == first.aggregate_sha256


# -- CLI exit codes --------------------------------------------------------


def test_faults_cli_exits_nonzero_when_campaign_fails(monkeypatch, capsys):
    import repro.faults
    from repro.cli import main

    failed = CampaignResult(
        seed=0, n_images=3, plan=[], schedule=[], supervision=[], injected={},
        restarts=0, mttr_us=0, frames_expected=3, frames_delivered=0,
        lost_frames=[1, 2, 3], bit_exact=False,
    )
    assert not failed.ok
    monkeypatch.setattr(repro.faults, "run_chaos_campaign", lambda **kw: failed)
    assert main(["faults", "--images", "3"]) == 1
    assert "FAIL" in capsys.readouterr().err


def test_campaign_cli_exit_codes(tmp_path, capsys):
    from repro.cli import main

    # missing directory -> 2 for every inspection action
    assert main(["campaign", "report", str(tmp_path / "void")]) == 2
    assert main(["campaign", "ls", str(tmp_path / "void")]) == 2
    assert main(["campaign", "resume", str(tmp_path / "void")]) == 2
    capsys.readouterr()

    # a healthy tiny campaign -> 0 end to end
    root = str(tmp_path / "cam")
    argv = [
        "campaign", "run", root, "--seeds", "1", "--classes", "crash",
        "--intensities", "light", "--policies", "restart", "--shards", "1",
        "--images", "4", "--workers", "1", "--json",
    ]
    assert main(argv) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["ok"] is True and summary["n_cells"] == 1
    assert main(["campaign", "report", root]) == 0
    assert "Pareto frontier" in capsys.readouterr().out
    assert main(["campaign", "ls", root]) == 0
    assert "1 done, 0 missing" in capsys.readouterr().out

    # an invalid grid -> 2 with an actionable message
    bad = ["campaign", "run", str(tmp_path / "bad"), "--policies", "reboot"]
    assert main(bad) == 2
    assert "unknown policy" in capsys.readouterr().err
