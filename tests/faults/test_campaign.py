"""Seeded chaos campaign: deterministic, bit-exact, observed."""

import pytest

from repro.faults import build_campaign_plan, run_chaos_campaign


def test_campaign_plan_is_seed_deterministic():
    a = build_campaign_plan(seed=11, n_images=8)
    b = build_campaign_plan(seed=11, n_images=8)
    assert a.describe() == b.describe()
    c = build_campaign_plan(seed=12, n_images=8)
    assert a.describe() != c.describe()


def test_campaign_plan_shape():
    plan = build_campaign_plan(seed=0, n_images=8, crashes=3)
    kinds = [s.kind for s in plan.specs]
    assert kinds.count("crash") == 3
    assert "drop" in kinds and "duplicate" in kinds
    # crashes land on distinct IDCT workers, round-robin
    crash_comps = [s.component for s in plan.specs if s.kind == "crash"]
    assert sorted(crash_comps) == ["IDCT_1", "IDCT_2", "IDCT_3"]


@pytest.fixture(scope="module")
def campaign():
    return run_chaos_campaign(seed=2, n_images=6)


def test_campaign_survives_faults_bit_exactly(campaign):
    r = campaign
    assert r.ok
    assert r.bit_exact
    assert r.frames_delivered > 0
    assert r.injected.get("crash", 0) == 3
    assert r.restarts >= r.injected["crash"]
    assert r.mttr_us > 0.0


def test_campaign_is_reproducible_end_to_end(campaign):
    again = run_chaos_campaign(seed=2, n_images=6)
    assert again.digest == campaign.digest
    assert again.schedule == campaign.schedule
    assert again.supervision == campaign.supervision


def test_campaign_faults_reach_trace_and_observer(campaign):
    r = campaign
    assert r.fault_trace_events > 0
    # summary is JSON-friendly and carries the headline numbers
    s = r.summary()
    assert s["seed"] == 2
    assert s["digest"] == r.digest
    assert s["bit_exact"] is True


def test_different_seed_changes_the_schedule(campaign):
    other = run_chaos_campaign(seed=3, n_images=6)
    assert other.schedule != campaign.schedule
    assert other.digest != campaign.digest
