"""FaultPlan / FaultSpec validation and manifests."""

import pytest

from repro.faults import FaultPlan, FaultPlanError, FaultSpec


def test_fluent_plan_builds_specs_in_order():
    plan = (
        FaultPlan(seed=7)
        .crash("A", on_receive=3)
        .drop("A", "out", probability=0.1)
        .duplicate("A", "out", probability=0.2)
        .delay("A", "out", probability=1.0, delay_ns=5_000)
        .corrupt("A", "out", probability=0.5)
        .stall("B", on_receive=2, delay_ns=1_000)
        .overflow("A", "out", capacity=4)
    )
    assert len(plan) == 7
    kinds = [s.kind for s in plan.specs]
    assert kinds == ["crash", "drop", "duplicate", "delay", "corrupt", "stall", "overflow"]
    assert plan.seed == 7


def test_describe_is_json_friendly_and_stable():
    plan = FaultPlan(seed=1).crash("A", at_ns=500).drop("A", "out", probability=0.25)
    manifest = plan.describe()
    assert manifest == [
        {"kind": "crash", "component": "A", "at_ns": 500},
        {"kind": "drop", "component": "A", "interface": "out", "probability": 0.25},
    ]


def test_crash_needs_exactly_one_trigger():
    with pytest.raises(FaultPlanError, match="exactly one"):
        FaultSpec("crash", "A")
    with pytest.raises(FaultPlanError, match="exactly one"):
        FaultSpec("crash", "A", at_ns=1, on_receive=1)


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(kind="nope", component="A"), "unknown fault kind"),
        (dict(kind="drop", component="", interface="out"), "target component"),
        (dict(kind="drop", component="A", interface="out", probability=1.5), "probability"),
        (dict(kind="drop", component="A"), "required interface"),
        (dict(kind="delay", component="A", interface="out"), "delay_ns"),
        (dict(kind="stall", component="A"), "delay_ns"),
        (dict(kind="overflow", component="A", interface="out"), "capacity"),
        (dict(kind="crash", component="A", on_receive=0), "counts from 1"),
        (dict(kind="crash", component="A", at_ns=-5), "negative"),
    ],
)
def test_invalid_specs_are_rejected(kwargs, match):
    with pytest.raises(FaultPlanError, match=match):
        FaultSpec(**kwargs)
