"""FaultPlan / FaultSpec validation and manifests."""

import pytest

from repro.faults import FaultPlan, FaultPlanError, FaultSpec


def test_fluent_plan_builds_specs_in_order():
    plan = (
        FaultPlan(seed=7)
        .crash("A", on_receive=3)
        .drop("A", "out", probability=0.1)
        .duplicate("A", "out", probability=0.2)
        .delay("A", "out", probability=1.0, delay_ns=5_000)
        .corrupt("A", "out", probability=0.5)
        .stall("B", on_receive=2, delay_ns=1_000)
        .overflow("A", "out", capacity=4)
    )
    assert len(plan) == 7
    kinds = [s.kind for s in plan.specs]
    assert kinds == ["crash", "drop", "duplicate", "delay", "corrupt", "stall", "overflow"]
    assert plan.seed == 7


def test_describe_is_json_friendly_and_stable():
    plan = FaultPlan(seed=1).crash("A", at_ns=500).drop("A", "out", probability=0.25)
    manifest = plan.describe()
    assert manifest == [
        {"kind": "crash", "component": "A", "at_ns": 500},
        {"kind": "drop", "component": "A", "interface": "out", "probability": 0.25},
    ]


def test_crash_needs_exactly_one_trigger():
    with pytest.raises(FaultPlanError, match="exactly one"):
        FaultSpec("crash", "A")
    with pytest.raises(FaultPlanError, match="exactly one"):
        FaultSpec("crash", "A", at_ns=1, on_receive=1)


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(kind="nope", component="A"), "unknown fault kind"),
        (dict(kind="drop", component="", interface="out"), "target component"),
        (dict(kind="drop", component="A", interface="out", probability=1.5), "probability"),
        (dict(kind="drop", component="A"), "required interface"),
        (dict(kind="delay", component="A", interface="out"), "delay_ns"),
        (dict(kind="stall", component="A"), "delay_ns"),
        (dict(kind="overflow", component="A", interface="out"), "capacity"),
        (dict(kind="crash", component="A", on_receive=0), "counts from 1"),
        (dict(kind="crash", component="A", at_ns=-5), "negative"),
    ],
)
def test_invalid_specs_are_rejected(kwargs, match):
    with pytest.raises(FaultPlanError, match=match):
        FaultSpec(**kwargs)


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(kind="drop", component="A", interface="out", delay_ns=-1),
         "negative delay_ns"),
        (dict(kind="overflow", component="A", interface="out", capacity=-2),
         "negative capacity"),
        (dict(kind="kill9", component="A", after_frames=-1),
         "negative after_frames"),
    ],
)
def test_negative_fields_are_rejected_eagerly(kwargs, match):
    with pytest.raises(FaultPlanError, match=match):
        FaultSpec(**kwargs)


def test_unknown_kind_error_names_the_taxonomy():
    with pytest.raises(FaultPlanError, match="repro.faults.plan"):
        FaultSpec("sigsegv", "A")


def test_validate_rejects_overlapping_stall_windows():
    plan = (
        FaultPlan(seed=1)
        .stall("A", on_receive=4, delay_ns=1_000)
        .stall("A", on_receive=4, delay_ns=2_000)
    )
    with pytest.raises(FaultPlanError, match="overlapping stall windows"):
        plan.validate()


def test_validate_allows_disjoint_stalls_and_returns_self():
    plan = (
        FaultPlan(seed=1)
        .stall("A", on_receive=4, delay_ns=1_000)
        .stall("A", on_receive=5, delay_ns=1_000)
        .stall("B", on_receive=4, delay_ns=1_000)
    )
    assert plan.validate() is plan


def test_validate_rejects_duplicate_crash_triggers():
    plan = FaultPlan(seed=1).crash("A", on_receive=3).crash("A", on_receive=3)
    with pytest.raises(FaultPlanError, match="duplicate crash trigger"):
        plan.validate()
    # distinct triggers on the same component are fine
    FaultPlan(seed=1).crash("A", on_receive=3).crash("A", on_receive=4).validate()


def test_validate_rejects_duplicate_kill9_thresholds():
    plan = FaultPlan(seed=1).kill9("A", after_frames=2).kill9("A", after_frames=2)
    with pytest.raises(FaultPlanError, match="duplicate kill9 threshold"):
        plan.validate()


def test_injector_validates_the_plan_at_construction():
    from repro.faults import FaultInjector

    plan = FaultPlan(seed=1).crash("A", on_receive=3).crash("A", on_receive=3)
    with pytest.raises(FaultPlanError, match="duplicate crash trigger"):
        FaultInjector(plan)
