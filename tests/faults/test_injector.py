"""Fault injector semantics on the simulated SMP runtime."""

import numpy as np
import pytest

from repro.core import InjectedFault
from repro.faults import FaultInjector, FaultPlan
from repro.runtime import SmpSimRuntime

from tests.faults.conftest import make_pipeline


def run_with_plan(plan, n_messages=10, payload=None):
    app, sink = make_pipeline(n_messages=n_messages, payload=payload)
    rt = SmpSimRuntime()
    rt.deploy(app)
    injector = FaultInjector(plan).install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    return app, sink, injector, rt


def test_drop_probability_one_loses_all_data_but_never_control():
    plan = FaultPlan(seed=0).drop("prod", "out", probability=1.0)
    app, sink, injector, _ = run_with_plan(plan)
    # Every data message dropped, yet the EOS control message arrived
    # (the consumer terminated) -- control traffic is never faulted.
    assert sink == []
    assert injector.counts() == {"drop": 10}


def test_duplicate_probability_one_doubles_delivery():
    plan = FaultPlan(seed=0).duplicate("prod", "out", probability=1.0)
    _, sink, injector, _ = run_with_plan(plan, n_messages=5)
    assert len(sink) == 10
    assert injector.counts() == {"duplicate": 5}


def test_corrupt_changes_payload_deterministically():
    payload = np.arange(32, dtype=np.float32)
    plan = FaultPlan(seed=3).corrupt("prod", "out", probability=1.0)
    _, sink, _, _ = run_with_plan(plan, n_messages=4, payload=payload)
    assert len(sink) == 4
    assert all(not np.array_equal(got, payload) for got in sink)
    # each corrupted copy differs from the original in exactly one element
    for got in sink:
        assert int((got != payload).sum()) == 1
    # bit-exact replay: the same seed corrupts identically
    _, sink2, _, _ = run_with_plan(
        FaultPlan(seed=3).corrupt("prod", "out", probability=1.0),
        n_messages=4,
        payload=payload,
    )
    assert all(np.array_equal(a, b) for a, b in zip(sink, sink2))


def test_corrupt_never_mutates_the_senders_buffer():
    payload = np.arange(8, dtype=np.float32)
    original = payload.copy()
    plan = FaultPlan(seed=1).corrupt("prod", "out", probability=1.0)
    run_with_plan(plan, n_messages=2, payload=payload)
    assert np.array_equal(payload, original)


def test_delay_fault_extends_makespan():
    _, _, _, rt_clean = run_with_plan(FaultPlan(seed=0), n_messages=6)
    plan = FaultPlan(seed=0).delay("prod", "out", probability=1.0, delay_ns=10_000_000)
    _, sink, injector, rt_slow = run_with_plan(plan, n_messages=6)
    assert len(sink) == 6  # delayed, not lost
    assert injector.counts() == {"delay": 6}
    assert rt_slow.makespan_ns >= rt_clean.makespan_ns + 6 * 10_000_000


def test_crash_at_nth_receive_raises_injected_fault_without_supervision():
    plan = FaultPlan(seed=0).crash("cons", on_receive=3)
    app, sink = make_pipeline(n_messages=10)
    rt = SmpSimRuntime()
    rt.deploy(app)
    FaultInjector(plan).install(rt)
    rt.start()
    with pytest.raises(InjectedFault, match="injected crash fault in 'cons'"):
        rt.wait()
    # the third data message was consumed by the crash
    assert len(sink) == 2


def test_timed_crash_is_armed_by_the_kernel_fault_process():
    from repro.core import Application, CONTROL

    plan = FaultPlan(seed=0).crash("cons", at_ns=1_000_000)
    app = Application("timed")

    def producer(ctx):
        for i in range(10):
            yield from ctx.compute("ns", 500_000)  # spread sends over 5 ms
            yield from ctx.send("out", i)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def consumer(ctx):
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return

    app.create("prod", behavior=producer, requires=["out"])
    app.create("cons", behavior=consumer, provides=["in"])
    app.connect("prod", "out", "cons", "in")
    rt = SmpSimRuntime()
    rt.deploy(app)
    injector = FaultInjector(plan).install(rt)
    rt.start()
    with pytest.raises(InjectedFault, match="crash"):
        rt.wait()
    armed = [e for e in injector.log if e["kind"] == "crash-armed"]
    assert [e["t_ns"] for e in armed] == [1_000_000]
    fired = [e for e in injector.log if e["kind"] == "crash"]
    assert len(fired) == 1 and fired[0]["t_ns"] >= 1_000_000


def test_stall_freezes_the_receiver_by_the_configured_delay():
    _, _, _, rt_clean = run_with_plan(FaultPlan(seed=0), n_messages=6)
    plan = FaultPlan(seed=0).stall("cons", on_receive=2, delay_ns=25_000_000)
    _, sink, injector, rt_stalled = run_with_plan(plan, n_messages=6)
    assert len(sink) == 6
    assert injector.counts() == {"stall": 1}
    # The stall dominates the makespan (it may overlap producer work).
    assert rt_stalled.makespan_ns >= 25_000_000 > rt_clean.makespan_ns


def test_overflow_bounds_the_mailbox_and_counts_losses():
    from repro.core import Application, CONTROL

    # The consumer is much slower than the producer, so the mailbox backs
    # up; with capacity 3 the overflowing sends must be refused.
    app = Application("overflow")
    sink = []

    def producer(ctx):
        for i in range(10):
            yield from ctx.send("out", i)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def slow_consumer(ctx):
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return
            yield from ctx.compute("ns", 200_000)
            sink.append(msg.payload)

    app.create("prod", behavior=producer, requires=["out"])
    app.create("cons", behavior=slow_consumer, provides=["in"])
    app.connect("prod", "out", "cons", "in")
    rt = SmpSimRuntime()
    rt.deploy(app)
    injector = FaultInjector(FaultPlan(seed=0).overflow("prod", "out", capacity=3)).install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    counts = injector.counts()
    assert counts.get("overflow", 0) >= 1
    assert len(sink) == 10 - counts["overflow"]


def test_schedule_replays_bit_exactly_for_the_same_seed():
    def one_run(seed):
        plan = (
            FaultPlan(seed=seed)
            .drop("prod", "out", probability=0.3)
            .duplicate("prod", "out", probability=0.3)
        )
        _, _, injector, _ = run_with_plan(plan, n_messages=40)
        return injector.log

    assert one_run(5) == one_run(5)
    assert one_run(5) != one_run(6)


def test_faults_feed_the_observation_probe():
    plan = FaultPlan(seed=0).drop("prod", "out", probability=1.0)
    app, _, injector, rt = run_with_plan(plan, n_messages=4)
    probe = rt.probe("prod")
    assert probe.fault_counts == {"drop": 4}


def test_install_rejects_unknown_components():
    plan = FaultPlan(seed=0).crash("ghost", on_receive=1)
    app, _ = make_pipeline()
    rt = SmpSimRuntime()
    rt.deploy(app)
    with pytest.raises(RuntimeError, match="unknown component 'ghost'"):
        FaultInjector(plan).install(rt)
