"""Supervision policies: restart, degrade, halt, escalate."""

import pytest

from repro.core import Application, CONTROL, ComponentState, EscalationError
from repro.faults import (
    DegradePolicy,
    FaultInjector,
    FaultPlan,
    HaltPolicy,
    RestartPolicy,
    Supervisor,
)
from repro.runtime import NativeRuntime, SmpSimRuntime
from repro.sim.rng import RngRegistry

from tests.faults.conftest import make_pipeline


def flaky_consumer(failures, sink):
    """Consumer that raises on its first ``failures`` data messages."""
    state = {"failures": failures}

    def behavior(ctx):
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return len(sink)
            if state["failures"] > 0:
                state["failures"] -= 1
                raise ValueError("transient consumer fault")
            sink.append(msg.payload)

    return behavior


def make_flaky_app(failures, n_messages=8):
    sink = []
    app = Application("flaky")

    def producer(ctx):
        for i in range(n_messages):
            yield from ctx.send("out", i)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    app.create("prod", behavior=producer, requires=["out"])
    app.create("cons", behavior=flaky_consumer(failures, sink), provides=["in"])
    app.connect("prod", "out", "cons", "in")
    return app, sink


class TestRestartPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RestartPolicy(
            base_backoff_ns=1_000, factor=2.0, max_backoff_ns=5_000, jitter=0.0
        )
        rng = RngRegistry(0).stream("x")
        assert policy.backoff_ns(1, rng) == 1_000
        assert policy.backoff_ns(2, rng) == 2_000
        assert policy.backoff_ns(3, rng) == 4_000
        assert policy.backoff_ns(4, rng) == 5_000  # capped

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RestartPolicy(base_backoff_ns=1_000_000, jitter=0.1)
        a = [policy.backoff_ns(1, RngRegistry(9).stream("s")) for _ in range(3)]
        assert a[0] == a[1] == a[2]
        assert 900_000 <= a[0] <= 1_100_000

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RestartPolicy(jitter=1.0)


def test_sim_restart_recovers_and_is_observed():
    app, sink = make_flaky_app(failures=2)
    rt = SmpSimRuntime()
    rt.deploy(app)
    sup = Supervisor(policy=RestartPolicy(max_attempts=3, base_backoff_ns=100_000)).install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    cons = app.components["cons"]
    assert cons.state == ComponentState.STOPPED
    # Two messages were consumed by the failing attempts; the rest landed.
    assert len(sink) == 6
    probe = rt.probe("cons")
    assert probe.restarts == 2
    assert len(probe.recovery_ns) == 2
    assert all(d >= 100_000 for d in probe.recovery_ns)  # downtime >= backoff
    report = sup.report()
    assert report["restarts"] == 2 and report["escalations"] == 0
    assert [e.action for e in sup.events] == ["restart", "restart"]


def test_native_restart_recovers():
    app, sink = make_flaky_app(failures=1)
    rt = NativeRuntime(receive_timeout_s=5.0, join_timeout_s=30.0)
    rt.deploy(app)
    Supervisor(policy=RestartPolicy(max_attempts=2, base_backoff_ns=1_000_000)).install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    assert app.components["cons"].state == ComponentState.STOPPED
    assert len(sink) == 7
    assert rt.probe("cons").restarts == 1


def test_escalation_after_max_attempts():
    app, _ = make_flaky_app(failures=99)
    rt = SmpSimRuntime()
    rt.deploy(app)
    sup = Supervisor(policy=RestartPolicy(max_attempts=2, base_backoff_ns=1_000)).install(rt)
    rt.start()
    with pytest.raises(EscalationError, match="failed permanently after 2 restart"):
        rt.wait()
    assert app.components["cons"].state == ComponentState.FAILED
    assert [e.action for e in sup.events] == ["restart", "restart", "escalate"]


def test_escalation_chains_the_causing_exception():
    """``raise EscalationError ... from err``: the original fault stays
    inspectable as ``__cause__`` instead of being flattened to a string."""
    app, _ = make_flaky_app(failures=99)
    rt = SmpSimRuntime()
    rt.deploy(app)
    Supervisor(policy=RestartPolicy(max_attempts=2, base_backoff_ns=1_000)).install(rt)
    rt.start()
    with pytest.raises(EscalationError) as err:
        rt.wait()
    cause = err.value.__cause__
    assert isinstance(cause, ValueError)
    assert "transient consumer fault" in str(cause)


def test_halt_policy_propagates_the_original_error():
    app, _ = make_flaky_app(failures=1)
    rt = SmpSimRuntime()
    rt.deploy(app)
    Supervisor(policy=HaltPolicy()).install(rt)
    rt.start()
    with pytest.raises(ValueError, match="transient consumer fault"):
        rt.wait()
    assert app.components["cons"].state == ComponentState.FAILED


def test_per_component_policy_overrides_default():
    sup = Supervisor(policy=None).set_policy("cons", RestartPolicy())
    assert sup.covers("cons")
    assert not sup.covers("prod")
    assert sup.policy_for("cons").action == "restart"


def test_degrade_disconnects_inbound_and_marks_degraded():
    app = Application("degrade")
    delivered = []

    def producer(ctx):
        for i in range(6):
            out = ctx.component.get_required("out")
            if not out.connected:
                return i  # rerouting decision: the sink is gone
            yield from ctx.send("out", i)
        return 6

    def doomed(ctx):
        yield from ctx.receive("in")
        raise RuntimeError("dead on first message")

    app.create("prod", behavior=producer, requires=["out"])
    app.create("sink", behavior=doomed, provides=["in"])
    app.connect("prod", "out", "sink", "in")
    rt = SmpSimRuntime()
    rt.deploy(app)
    Supervisor(policy=None).set_policy("sink", DegradePolicy()).install(rt)
    rt.start()
    rt.wait()  # completes: the failure was absorbed
    rt.stop()
    sink = app.components["sink"]
    assert sink.state == ComponentState.DEGRADED
    assert not app.components["prod"].get_required("out").connected
    # _mark_stopped must not overwrite the DEGRADED verdict at teardown.
    assert sink.state == ComponentState.DEGRADED


def test_supervised_injected_crashes_recover_end_to_end():
    """Injector + supervisor together: the designed recovery loop."""
    app, sink = make_pipeline(n_messages=10)
    rt = SmpSimRuntime()
    rt.deploy(app)
    FaultInjector(FaultPlan(seed=0).crash("cons", on_receive=4)).install(rt)
    Supervisor(policy=RestartPolicy(max_attempts=2)).install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    # message 4 died with the crash; everything else was delivered
    assert len(sink) == 9
    assert rt.probe("cons").restarts == 1
    assert rt.probe("cons").fault_counts == {"crash": 1}


def test_full_jitter_backoff_spreads_over_the_whole_window():
    """Full jitter draws from [0, raw]; proportional stays in a narrow
    band around raw -- the difference that desynchronizes retry storms."""
    from repro.faults.supervisor import JITTER_FULL

    proportional = RestartPolicy(base_backoff_ns=1_000_000, jitter=0.1)
    full = RestartPolicy(base_backoff_ns=1_000_000, jitter_mode=JITTER_FULL)
    registry = RngRegistry(7)
    raw = 1_000_000
    prop_draws = [
        proportional.backoff_ns(1, registry.stream(f"p.{k}")) for k in range(32)
    ]
    full_draws = [full.backoff_ns(1, registry.stream(f"f.{k}")) for k in range(32)]
    assert all(0.9 * raw <= d <= 1.1 * raw for d in prop_draws)
    assert all(0 <= d <= raw for d in full_draws)
    # the full-jitter spread covers far more of the window
    assert max(full_draws) - min(full_draws) > max(prop_draws) - min(prop_draws)


def test_full_jitter_decorrelates_co_faulted_components():
    """Identical policies, same attempt: per-component streams give each
    component its own point of the window (no synchronized retry band)."""
    from repro.faults.supervisor import JITTER_FULL

    policy = RestartPolicy(base_backoff_ns=1_000_000, jitter_mode=JITTER_FULL)
    registry = RngRegistry(0)
    draws = {
        name: policy.backoff_ns(1, registry.stream(f"supervisor.backoff.{name}"))
        for name in ("IDCT_1", "IDCT_2", "IDCT_3")
    }
    assert len(set(draws.values())) == 3


def test_full_jitter_is_deterministic_per_seed():
    from repro.faults.supervisor import JITTER_FULL

    policy = RestartPolicy(base_backoff_ns=1_000_000, jitter_mode=JITTER_FULL)
    a = policy.backoff_ns(2, RngRegistry(5).stream("supervisor.backoff.X"))
    b = policy.backoff_ns(2, RngRegistry(5).stream("supervisor.backoff.X"))
    assert a == b


def test_unknown_jitter_mode_is_rejected():
    with pytest.raises(ValueError, match="jitter_mode"):
        RestartPolicy(jitter_mode="gaussian")


def test_degrade_detach_outbound_disconnects_required_interfaces():
    """detach_outbound severs the degraded component's outgoing data
    connections so dynamic downstream counting stops expecting its EOS."""
    from tests.faults.conftest import collector_behavior, producer_behavior

    app = Application("detach")
    sink = []
    app.create("prod", behavior=producer_behavior(3), requires=["out"])
    app.create("mid", behavior=lambda ctx: iter(()), provides=["in"], requires=["out"])
    app.create("cons", behavior=collector_behavior(sink), provides=["in"])
    app.connect("prod", "out", "mid", "in")
    app.connect("mid", "out", "cons", "in")
    mid = app.components["mid"]
    assert mid.get_required("out").connected
    Supervisor._disconnect_outbound(mid)
    assert not mid.get_required("out").connected
    # inbound stays: detach_outbound composes with (not replaces) the
    # inbound disconnect the degrade flow always performs
    assert app.components["prod"].get_required("out").connected
    # and the flag defaults off
    assert not DegradePolicy().detach_outbound
    assert DegradePolicy(detach_outbound=True).detach_outbound
