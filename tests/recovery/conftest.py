"""Shared fixtures for exactly-once recovery tests."""

from repro.core import Application, CONTROL
from repro.core.component import Component


def int_producer(n_messages):
    """Producer sending the ints 0..n-1 then a control EOS."""

    def behavior(ctx):
        for i in range(n_messages):
            yield from ctx.send("out", i, tag=f"m{i}")
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    return behavior


class CheckpointedSink(Component):
    """Consumer whose collected payloads are checkpointable state.

    The recovery contract in one component: ``snapshot()`` returns the
    resumable state at a receive boundary, ``restore()`` reinstalls it,
    and the behaviour only resets itself when it was *not* primed by a
    restore (so unrecovered restarts keep the fresh-start semantics).
    """

    def __init__(self, name="cons"):
        super().__init__(name)
        self.add_provided("in")
        self.received = []
        self._restored = False

    def snapshot(self):
        return {"received": list(self.received)}

    def restore(self, state):
        self.received = list(state["received"])
        self._restored = True

    def behavior(self, ctx):
        if not self._restored:
            self.received = []
        self._restored = False
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return len(self.received)
            self.received.append(msg.payload)


def make_recoverable_pipeline(n_messages=20):
    """prod --out/in--> CheckpointedSink; returns (app, sink component)."""
    app = Application("recpipe")
    app.create("prod", behavior=int_producer(n_messages), requires=["out"])
    sink = app.add(CheckpointedSink("cons"))
    app.connect("prod", "out", "cons", "in")
    return app, sink
