"""Exactly-once recovery on the other two runtimes.

The sti7200 path exercises replay through the EMBX distributed objects
(``DistributedObject.requeue``), the native path exercises replay into a
live ``queue.Queue`` mailbox with one thread per component.
"""

from repro.core import Application, CONTROL, ComponentState
from repro.faults import FaultInjector, FaultPlan, RestartPolicy, Supervisor
from repro.recovery import RecoveryManager
from repro.runtime import NativeRuntime, Sti7200SimRuntime

from tests.recovery.conftest import CheckpointedSink, int_producer

N = 16


def _sti_app(n_messages=N):
    app = Application("stirec")
    app.create("prod", behavior=int_producer(n_messages), requires=["out"])
    sink = app.add(CheckpointedSink("cons"))
    app.connect("prod", "out", "cons", "in")
    app.components["prod"].place(cpu=0)
    app.components["cons"].place(cpu=1)  # cross-CPU: traffic rides EMBX
    return app, sink


def test_sti7200_drops_healed_through_embx():
    app, sink = _sti_app()
    rt = Sti7200SimRuntime()
    rt.deploy(app)
    FaultInjector(FaultPlan(seed=4).drop("prod", "out", probability=0.4)).install(rt)
    recovery = RecoveryManager().install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    assert sink.received == list(range(N))
    assert recovery.replayed > 0


def test_sti7200_crash_restores_and_replays_through_embx():
    app, sink = _sti_app()
    rt = Sti7200SimRuntime()
    rt.deploy(app)
    FaultInjector(FaultPlan(seed=1).crash("cons", on_receive=7)).install(rt)
    recovery = RecoveryManager(checkpoint_interval=4).install(rt)
    Supervisor(policy=RestartPolicy(max_attempts=2, base_backoff_ns=100_000)).install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    assert sink.received == list(range(N))
    assert recovery.restores == 1 and recovery.replayed > 0
    assert app.components["cons"].state == ComponentState.STOPPED


def test_native_crash_restores_checkpoint_exactly_once():
    app = Application("natrec")
    app.create("prod", behavior=int_producer(N), requires=["out"])
    sink = app.add(CheckpointedSink("cons"))
    app.connect("prod", "out", "cons", "in")
    rt = NativeRuntime(receive_timeout_s=10.0, join_timeout_s=30.0)
    rt.deploy(app)
    FaultInjector(FaultPlan(seed=2).crash("cons", on_receive=6)).install(rt)
    recovery = RecoveryManager(checkpoint_interval=4).install(rt)
    Supervisor(policy=RestartPolicy(max_attempts=2, base_backoff_ns=1_000_000)).install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    assert sink.received == list(range(N))
    assert recovery.restores == 1 and recovery.replayed > 0


def test_native_duplicates_deduped():
    app = Application("natdup")
    app.create("prod", behavior=int_producer(N), requires=["out"])
    sink = app.add(CheckpointedSink("cons"))
    app.connect("prod", "out", "cons", "in")
    rt = NativeRuntime(receive_timeout_s=10.0, join_timeout_s=30.0)
    rt.deploy(app)
    FaultInjector(FaultPlan(seed=8).duplicate("prod", "out", probability=1.0)).install(rt)
    recovery = RecoveryManager().install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    assert sink.received == list(range(N))
    assert recovery.deduped == N
