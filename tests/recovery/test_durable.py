"""Durable exactly-once: cold restore from disk, in one process.

The tentpole oracle in miniature, without spawning OS processes (that is
``test_kill9.py``): a runtime dies mid-stream with an unhandled crash
fault and *everything in memory is discarded* -- a fresh application,
fresh runtime and fresh :class:`RecoveryManager` pointed at the same
durable directory must rebuild the consistent cut and finish the stream
exactly-once.  Plus the PR 4 satellite extended to the durable path:
deadline timers on the 256-slot timer wheel must not leak across a
*disk* restore, and the sharded runtime's refusal of replay is enforced
at install time rather than by silent corruption.
"""

import numpy as np
import pytest

from repro.core import Application, CONTROL
from repro.core.component import Component
from repro.core.errors import InjectedFault
from repro.faults import FaultInjector, FaultPlan
from repro.recovery import DurableError, DurableStore, FrameStore, RecoveryManager
from repro.runtime import ShardedSmpSimRuntime, SmpSimRuntime
from repro.runtime.base import RuntimeError_

from tests.recovery.conftest import make_recoverable_pipeline

N = 20
CONFIG = {"app": "recpipe", "n": N}


def _install(root, app, checkpoint_interval=4):
    rt = SmpSimRuntime()
    rt.deploy(app)
    store = DurableStore(str(root), config=CONFIG, fsync="never")
    recovery = RecoveryManager(
        checkpoint_interval=checkpoint_interval, durable=store
    ).install(rt)
    return rt, recovery


def _crash_and_abandon(root, crash_at=13):
    """Incarnation one: run until an unsupervised crash fault kills the
    whole run mid-stream.  Nothing in memory survives past this call --
    only the durable directory does (``close()`` without a final
    checkpoint stands in for the page cache a ``kill -9`` leaves)."""
    app, sink = make_recoverable_pipeline(N)
    rt, recovery = _install(root, app)
    FaultInjector(FaultPlan(seed=1).crash("cons", on_receive=crash_at)).install(rt)
    rt.start()
    with pytest.raises(InjectedFault):
        rt.wait()
    partial = list(sink.received)
    recovery.close()
    return partial


def test_cold_restore_finishes_the_stream_exactly_once(tmp_path):
    partial = _crash_and_abandon(tmp_path)
    assert 0 < len(partial) < N  # genuinely died mid-stream

    # Incarnation two: fresh everything, same directory.
    app, sink = make_recoverable_pipeline(N)
    rt, recovery = _install(tmp_path, app)
    assert recovery.cold_restored
    assert recovery.restores == 1
    rt.start()
    rt.wait()
    rt.stop()
    assert sink.received == list(range(N))  # no loss, no duplicates
    assert recovery.deduped > 0  # the rolled-back producer re-sent under old dseqs
    report = recovery.report()
    assert report["durable"]["cold_restored"] is True
    assert report["durable"]["commits"] > 0
    recovery.close()


def test_restore_is_idempotent_across_repeated_deaths(tmp_path):
    """Die, restore, die again (same fault), restore again: the second
    cold restore starts from the *later* committed cut and still lands
    on the exact stream."""
    _crash_and_abandon(tmp_path, crash_at=7)
    _crash_and_abandon(tmp_path, crash_at=16)
    app, sink = make_recoverable_pipeline(N)
    rt, recovery = _install(tmp_path, app)
    rt.start()
    rt.wait()
    rt.stop()
    assert sink.received == list(range(N))
    recovery.close()


def test_config_digest_binds_the_directory_to_one_campaign(tmp_path):
    store = DurableStore(str(tmp_path), config=CONFIG, fsync="never")
    store.open()
    store.close()
    other = DurableStore(str(tmp_path), config={"app": "recpipe", "n": N + 1})
    with pytest.raises(DurableError, match="config"):
        other.open()


def test_verify_passes_on_a_completed_campaign(tmp_path):
    _crash_and_abandon(tmp_path)
    app, _sink = make_recoverable_pipeline(N)
    rt, recovery = _install(tmp_path, app)
    rt.start()
    rt.wait()
    rt.stop()
    recovery.close()
    report = DurableStore(str(tmp_path), config=CONFIG).open().verify()
    assert report["ok"]
    assert report["wal"]["tail"] == "clean"
    assert report["epochs"]  # at least one committed checkpoint per name
    assert report["commits"] > 0


def test_frame_store_is_idempotent_per_index(tmp_path):
    frames = FrameStore(str(tmp_path / "frames"))
    img = np.arange(12, dtype=np.uint8).reshape(3, 4)
    frames.save(2, img)
    frames.save(0, img * 2)
    frames.save(2, img)  # re-completion after a restore: same index, same bytes
    assert frames.count() == 2
    loaded = frames.load_frames()
    assert np.array_equal(loaded[2], img)
    assert np.array_equal(loaded[0], img * 2)


# -- the PR 4 timer-wheel satellite, extended to the durable path --------------


class DeadlineSink(Component):
    """Checkpointable consumer whose every receive arms a deadline timer
    on the 256-slot wheel."""

    def __init__(self, timeout_ns):
        super().__init__("cons")
        self.add_provided("in")
        self.timeout_ns = timeout_ns
        self.got = []
        self._restored = False

    def snapshot(self):
        return {"got": list(self.got)}

    def restore(self, state):
        self.got = list(state["got"])
        self._restored = True

    def behavior(self, ctx):
        if not self._restored:
            self.got = []
        self._restored = False
        while True:
            msg = yield from ctx.receive("in", timeout_ns=self.timeout_ns)
            if msg.kind == CONTROL:
                return len(self.got)
            self.got.append(msg.payload)


def _deadline_app(timeout_ns, n=12):
    app = Application("dl")

    def producer(ctx):
        for i in range(n):
            yield from ctx.send("out", i)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    app.create("prod", behavior=producer, requires=["out"])
    sink = app.add(DeadlineSink(timeout_ns))
    app.connect("prod", "out", "cons", "in")
    return app, sink


def test_disk_restore_leaks_no_deadline_timers(tmp_path):
    """Every receive in both incarnations arms a timer; after the cold
    restore finishes the stream, ``pending()`` must land exactly where a
    deadline-free, durability-free run lands."""
    app, _sink = _deadline_app(timeout_ns=1_000_000_000)
    rt1, recovery1 = _install(tmp_path, app)
    FaultInjector(FaultPlan(seed=0).crash("cons", on_receive=5)).install(rt1)
    rt1.start()
    with pytest.raises(InjectedFault):
        rt1.wait()
    recovery1.close()

    app2, sink2 = _deadline_app(timeout_ns=1_000_000_000)
    rt2, recovery2 = _install(tmp_path, app2)
    assert recovery2.cold_restored
    rt2.start()
    rt2.wait()
    rt2.stop()
    assert sink2.got == list(range(12))
    recovery2.close()

    baseline_app, _ = _deadline_app(timeout_ns=None)
    rt3 = SmpSimRuntime()
    rt3.deploy(baseline_app)
    rt3.start()
    rt3.wait()
    rt3.stop()
    assert rt2.kernel.pending() == rt3.kernel.pending()


def test_sharded_run_leaks_no_deadline_timers():
    """The sharded half of the satellite: deadline receives on shard
    kernels are consumed/cancelled just like on the single kernel."""

    def _pending(timeout_ns):
        app, sink = _deadline_app(timeout_ns)
        rt = ShardedSmpSimRuntime(2)
        rt.run(app)
        rt.stop()
        assert sink.got == list(range(12))
        return [shard.kernel.pending() for shard in rt.shards]

    assert _pending(1_000_000_000) == _pending(None)


def test_sharded_runtime_refuses_durable_replay(tmp_path):
    """Cold restore replays into mailboxes via ``_requeue``, which the
    sharded runtime rejects by design -- the refusal must surface at
    install time, not corrupt a run later."""
    _crash_and_abandon(tmp_path)  # leaves unacked messages in the WAL
    app, _sink = make_recoverable_pipeline(N)
    rt = ShardedSmpSimRuntime(2)
    rt.deploy(app)
    store = DurableStore(str(tmp_path), config=CONFIG, fsync="never")
    with pytest.raises(RuntimeError_, match="sharded"):
        RecoveryManager(checkpoint_interval=4, durable=store).install(rt)
    store.close()


def test_checksummed_json_roundtrip(tmp_path):
    from repro.recovery.durable import read_checksummed_json, write_checksummed_json

    path = str(tmp_path / "doc.json")
    body = {"b": [1, 2, 3], "a": {"nested": True}}
    checksum = write_checksummed_json(path, body)
    assert len(checksum) == 64
    assert read_checksummed_json(path) == body
    # identical body writes identical bytes (resume byte-identity)
    data = open(path, "rb").read()
    write_checksummed_json(path, {"a": {"nested": True}, "b": [1, 2, 3]})
    assert open(path, "rb").read() == data


def test_checksummed_json_detects_corruption(tmp_path):
    from repro.recovery.durable import (
        DurableError,
        read_checksummed_json,
        write_checksummed_json,
    )

    path = str(tmp_path / "doc.json")
    write_checksummed_json(path, {"value": 1})
    tampered = open(path).read().replace('"value": 1', '"value": 2')
    open(path, "w").write(tampered)
    with pytest.raises(DurableError, match="checksum mismatch"):
        read_checksummed_json(path)


def test_checksummed_json_rejects_torn_and_foreign_files(tmp_path):
    from repro.recovery.durable import DurableError, read_checksummed_json

    torn = tmp_path / "torn.json"
    torn.write_text('{"body": {"x"')  # truncated mid-write
    with pytest.raises(DurableError, match="unreadable"):
        read_checksummed_json(str(torn))
    foreign = tmp_path / "foreign.json"
    foreign.write_text('{"just": "json"}')
    with pytest.raises(DurableError, match="not a checksummed"):
        read_checksummed_json(str(foreign))
    with pytest.raises(DurableError, match="unreadable"):
        read_checksummed_json(str(tmp_path / "absent.json"))
