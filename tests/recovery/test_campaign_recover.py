"""The headline claim: ``repro faults --recover`` is exactly-once.

Under the seeded chaos campaign (component crashes, message drops,
duplicates on the MJPEG SMP decode) the recovery manager must reproduce
the *complete* frame set bit-identically to the fault-free reference --
not merely keep the survivors exact.
"""

import pytest

from repro.faults import run_chaos_campaign

SEEDS = [1, 7, 42]


@pytest.fixture(scope="module", params=SEEDS)
def recovered(request):
    return run_chaos_campaign(seed=request.param, n_images=6, recover=True)


def test_complete_frame_set_bit_exact(recovered):
    r = recovered
    assert r.recover
    assert r.ok
    assert r.lost_frames == []
    assert r.frames_delivered == r.frames_expected
    assert r.frames_digest == r.reference_frames_digest
    assert r.injected.get("crash", 0) == 3
    assert r.restarts >= 3


def test_recovery_activity_is_reported(recovered):
    rec = recovered.recovery
    assert rec["restores"] == recovered.restarts
    assert rec["replayed"] > 0
    assert rec["checkpoints"] > 0
    # every component reached at least epoch 0
    assert set(rec["epochs"]) >= {"Fetch", "IDCT_1", "IDCT_2", "IDCT_3", "Reorder"}
    s = recovered.summary()
    assert s["recovery"] == rec and s["recover"] is True


def test_recovery_run_is_seed_reproducible():
    a = run_chaos_campaign(seed=1, n_images=6, recover=True)
    b = run_chaos_campaign(seed=1, n_images=6, recover=True)
    assert a.frames_digest == b.frames_digest
    assert a.recovery == b.recovery
    assert a.schedule == b.schedule


def test_without_recovery_the_same_seed_loses_frames():
    """The control experiment: recovery off, same fault schedule --
    frames are actually lost, so the exactly-once result above is the
    recovery manager's doing, not a toothless fault plan."""
    plain = run_chaos_campaign(seed=1, n_images=6)
    assert plain.ok  # survivors are still bit-exact ...
    assert plain.lost_frames  # ... but the crash cost frames
    recovered = run_chaos_campaign(seed=1, n_images=6, recover=True)
    assert recovered.lost_frames == []
