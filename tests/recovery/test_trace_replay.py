"""Causal tracing of recovery: replay links and span conservation.

Extends the span-conservation property to replayed messages: a replica
drawn from the retransmit buffer carries a *fresh* span whose cause is
the original send's span, so the trace still accounts for every message
-- nothing vanishes silently, even across crashes and heals.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, RestartPolicy, Supervisor
from repro.recovery import RecoveryManager
from repro.runtime import SmpSimRuntime
from repro.trace import SpanGraph, enable_tracing, queue_depth_series

from tests.recovery.conftest import make_recoverable_pipeline

N = 24


def _run(seed):
    plan = (
        FaultPlan(seed=seed)
        .drop("prod", "out", probability=0.25)
        .duplicate("prod", "out", probability=0.25)
        .crash("cons", on_receive=10)
    )
    app, sink = make_recoverable_pipeline(N)
    rt = SmpSimRuntime()
    rt.deploy(app)
    buffer = enable_tracing(rt)
    FaultInjector(plan).install(rt)
    recovery = RecoveryManager(checkpoint_interval=4).install(rt)
    Supervisor(policy=RestartPolicy(max_attempts=2, base_backoff_ns=100_000)).install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    return buffer, recovery, sink


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_replays_are_causally_linked_to_the_original_send(seed):
    buffer, recovery, sink = _run(seed)
    assert sink.received == list(range(N))
    graph = SpanGraph.from_trace(buffer)
    assert len(graph.replayed) == recovery.replayed
    assert len(graph.deduped) == recovery.deduped
    for replica, orig in graph.replayed.items():
        # The replica has its own edge whose cause is the original span.
        assert replica in graph.edges
        assert graph.edges[replica].cause == orig
        assert orig in graph.edges  # the original send was traced too


@pytest.mark.parametrize("seed", [0, 7])
def test_span_conservation_extends_to_replayed_messages(seed):
    buffer, recovery, sink = _run(seed)
    graph = SpanGraph.from_trace(buffer)
    healed_origs = set(graph.replayed.values())
    data_sends = [
        e
        for e in graph.edges.values()
        # Replica receives create partial edges too; the replayed map
        # keys are exactly those spans, so exclude them to keep genuine
        # producer sends.
        if e.op == "send" and e.kind == "data" and e.src == "prod"
        and e.span not in graph.replayed
    ]
    assert len(data_sends) == N  # the producer never restarts in this plan
    for edge in data_sends:
        accounted = (
            edge.receptions >= 1  # delivered
            or edge.span in graph.deduped  # discarded as a duplicate
            or edge.span in healed_origs  # lost, but a replica carried it
        )
        assert accounted, f"span {edge.span} vanished silently"
    # Every replica either reached the behaviour or was itself deduped
    # (e.g. a heal racing a post-restart replay of the same sequence).
    for replica in graph.replayed:
        edge = graph.edges[replica]
        assert edge.receptions >= 1 or replica in graph.deduped


def test_traced_try_receive_keeps_queue_depth_balanced():
    """Satellite: polling consumers emit receive events on successful
    polls, so the mailbox depth series returns to zero instead of
    drifting up by one per polled message."""
    from repro.core import Application, CONTROL

    app = Application("poll")

    def producer(ctx):
        for i in range(5):
            yield from ctx.send("out", bytes(64))
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def poller(ctx):
        got = 0
        while got < 6:
            msg = ctx.try_receive("in")
            if msg is None:
                yield from ctx.compute("ns", 1_000)
                continue
            got += 1
        return got

    app.create("prod", behavior=producer, requires=["out"])
    app.create("cons", behavior=poller, provides=["in"])
    app.connect("prod", "out", "cons", "in")
    rt = SmpSimRuntime()
    rt.deploy(app)
    buffer = enable_tracing(rt)
    rt.start()
    rt.wait()
    rt.stop()

    polls = [
        e
        for e in buffer.events()
        if e.category == "middleware" and e.name == "receive" and e.args.get("poll")
    ]
    # 6 successful polls, each a BEGIN/END pair; empty polls untraced.
    assert len(polls) == 12
    assert sum(1 for e in polls if e.phase == "E") == 6
    series = queue_depth_series(buffer)
    depths = dict(series)["cons.in"]
    assert depths[-1][1] == 0  # drained mailbox reads as drained
    assert max(d for _, d in depths) >= 1
