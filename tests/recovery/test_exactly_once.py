"""Exactly-once delivery on the simulated SMP runtime.

The three fault kinds the recovery manager must neutralise, each in
isolation: DUPLICATE (receiver dedups), DROP (sequence gap healed from
the sender-side retransmit buffer), CRASH (checkpoint restore plus
replay of unacked messages).  Plus the bookkeeping invariants: ack on
checkpoint drains the retransmit buffers, and armed deadline timers do
not leak across restart/restore.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, RestartPolicy, Supervisor
from repro.recovery import RecoveryManager
from repro.runtime import SmpSimRuntime

from tests.recovery.conftest import make_recoverable_pipeline

N = 20


def _run(plan=None, n_messages=N, supervise=False, checkpoint_interval=4):
    app, sink = make_recoverable_pipeline(n_messages)
    rt = SmpSimRuntime()
    rt.deploy(app)
    if plan is not None:
        FaultInjector(plan).install(rt)
    recovery = RecoveryManager(checkpoint_interval=checkpoint_interval).install(rt)
    if supervise:
        Supervisor(
            policy=RestartPolicy(max_attempts=3, base_backoff_ns=100_000)
        ).install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    return sink, recovery


def test_fault_free_run_is_untouched():
    sink, recovery = _run()
    assert sink.received == list(range(N))
    assert recovery.deduped == 0 and recovery.replayed == 0
    assert recovery.checkpoints > 0


def test_duplicates_are_deduped_idempotently():
    """Every data message transferred twice; the sink sees each once."""
    plan = FaultPlan(seed=5).duplicate("prod", "out", probability=1.0)
    sink, recovery = _run(plan)
    assert sink.received == list(range(N))
    assert recovery.deduped == N  # one discard per duplicated data message
    assert recovery.replayed == 0


def test_drops_are_healed_from_the_retransmit_buffer():
    plan = FaultPlan(seed=3).drop("prod", "out", probability=0.4)
    sink, recovery = _run(plan)
    assert sink.received == list(range(N))  # order preserved, nothing lost
    assert recovery.replayed > 0  # at least one gap was healed


def test_crash_restores_checkpoint_and_replays():
    plan = FaultPlan(seed=1).crash("cons", on_receive=9)
    sink, recovery = _run(plan, supervise=True)
    assert sink.received == list(range(N))
    assert recovery.restores == 1
    assert recovery.replayed > 0  # post-checkpoint messages re-delivered


def test_crash_without_snapshot_falls_back_to_epoch0_replay():
    """A component that never offers a snapshot is still exactly-once:
    full input replay from epoch 0 against a fresh behaviour."""
    from repro.core import Application, CONTROL

    seen = []
    app = Application("nockpt")

    def producer(ctx):
        for i in range(N):
            yield from ctx.send("out", i)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def sink_behavior(ctx):
        del seen[:]  # fresh start or epoch-0 replay: either way, from zero
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return len(seen)
            seen.append(msg.payload)

    app.create("prod", behavior=producer, requires=["out"])
    app.create("cons", behavior=sink_behavior, provides=["in"])
    app.connect("prod", "out", "cons", "in")
    rt = SmpSimRuntime()
    rt.deploy(app)
    FaultInjector(FaultPlan(seed=0).crash("cons", on_receive=7)).install(rt)
    recovery = RecoveryManager().install(rt)
    Supervisor(policy=RestartPolicy(max_attempts=2, base_backoff_ns=100_000)).install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    assert seen == list(range(N))
    assert recovery.replayed >= 7  # everything before the crash came back


def test_acks_drain_the_retransmit_buffer():
    """Checkpoint commits release the delivered prefix sender-side."""
    sink, recovery = _run(checkpoint_interval=2)
    report = recovery.report()
    # The trailing unacked window is at most what fits between two
    # checkpoints (sends + EOS), never the whole stream.
    assert report["unacked"] < N
    assert report["checkpoints"] == recovery.checkpoints


def test_combined_faults_same_seed_same_outcome():
    plan = lambda: (  # noqa: E731
        FaultPlan(seed=9)
        .drop("prod", "out", probability=0.3)
        .duplicate("prod", "out", probability=0.3)
        .crash("cons", on_receive=11)
    )
    sink1, r1 = _run(plan(), supervise=True)
    sink2, r2 = _run(plan(), supervise=True)
    assert sink1.received == list(range(N)) == sink2.received
    assert (r1.replayed, r1.deduped, r1.restores) == (
        r2.replayed,
        r2.deduped,
        r2.restores,
    )


def test_recovered_restart_leaks_no_deadline_timers():
    """Satellite: deadline timers armed by receives must all be consumed
    or cancelled across a crash/restore/replay cycle -- ``pending()``
    lands exactly where a fault-free run without deadlines lands."""
    from repro.core import Application, CONTROL

    def deadline_pipeline(timeout_ns):
        app = Application("dl")
        got = []

        def producer(ctx):
            for i in range(12):
                yield from ctx.send("out", i)
            yield from ctx.send("out", None, kind=CONTROL, tag="eos")

        def consumer(ctx):
            del got[:]
            while True:
                msg = yield from ctx.receive("in", timeout_ns=timeout_ns)
                if msg.kind == CONTROL:
                    return len(got)
                got.append(msg.payload)

        app.create("prod", behavior=producer, requires=["out"])
        app.create("cons", behavior=consumer, provides=["in"])
        app.connect("prod", "out", "cons", "in")
        return app, got

    app, got = deadline_pipeline(timeout_ns=1_000_000_000)
    rt = SmpSimRuntime()
    rt.deploy(app)
    FaultInjector(FaultPlan(seed=0).crash("cons", on_receive=5)).install(rt)
    RecoveryManager().install(rt)
    Supervisor(policy=RestartPolicy(max_attempts=2, base_backoff_ns=100_000)).install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    assert got == list(range(12))

    baseline_app, _ = deadline_pipeline(timeout_ns=None)
    rt2 = SmpSimRuntime()
    rt2.deploy(baseline_app)
    rt2.start()
    rt2.wait()
    rt2.stop()
    assert rt.kernel.pending() == rt2.kernel.pending()


def test_install_order_is_irrelevant_and_double_install_rejected():
    app, sink = make_recoverable_pipeline(6)
    rt = SmpSimRuntime()
    rt.deploy(app)
    recovery = RecoveryManager().install(rt)
    with pytest.raises(RuntimeError, match="already installed"):
        recovery.install(rt)
    with pytest.raises(RuntimeError, match="already has a recovery manager"):
        RecoveryManager().install(rt)
    rt.start()
    rt.wait()
    rt.stop()
    assert sink.received == list(range(6))
