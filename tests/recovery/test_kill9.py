"""Real process death: SIGKILL the component-hosting OS process.

The tentpole acceptance oracle, one seed's worth (the 1/7/42 matrix
runs in CI's ``kill9-recovery`` job): a native-runtime worker process
is killed -9 mid-campaign at a seed-derived durable-frame count, cold
restored from the on-disk WAL + checkpoints by a fresh incarnation, and
the complete decoded frame set on disk must be sha256-identical to the
fault-free in-process reference.  Nothing the child claims is trusted
-- the digest is recomputed by this (parent) process from the bytes on
disk.
"""

import json
import os
import signal
import subprocess
import sys

from repro.recovery.supervised import _worker_env, run_durable_campaign
from repro.runtime.native import SupervisedProcess


def test_sigkill_mid_campaign_restores_bit_exact_frames(tmp_path):
    result = run_durable_campaign(
        seed=7,
        n_images=6,
        durable_dir=str(tmp_path / "state"),
        kill9s=1,
        timeout_s=300.0,
    )
    assert result.kills == 1  # the SIGKILL really happened
    assert result.spawns >= 2  # and a fresh incarnation took over
    # The MJPEG stream's frame convention: n_images - 1 decoded frames.
    assert result.frames_expected == 5
    assert result.frames_delivered == result.frames_expected
    assert result.frames_digest == result.reference_frames_digest
    assert result.ok
    # The surviving directory passes its own consistency audit.
    from repro.recovery.durable import DurableStore

    with open(os.path.join(result.durable_dir, "CONFIG.json")) as fh:
        config = json.load(fh)
    report = DurableStore(result.durable_dir, config=config).open().verify()
    assert report["ok"]
    # The worker recorded its cold restore in RESULT.json.
    with open(os.path.join(result.durable_dir, "RESULT.json")) as fh:
        worker = json.load(fh)
    assert worker["recovery"]["durable"]["cold_restored"] is True


def test_supervised_process_spawn_kill_reap():
    """The process-control primitive in isolation: spawn, SIGKILL, reap,
    respawn -- exit codes and counters must reflect the signal."""
    proc = SupervisedProcess(
        [sys.executable, "-c", "import time; time.sleep(60)"], env=_worker_env()
    )
    proc.spawn()
    assert proc.alive
    assert proc.kill9()
    assert not proc.alive
    assert proc.poll() == -signal.SIGKILL
    assert (proc.spawns, proc.kills) == (1, 1)
    assert not proc.kill9()  # already dead: no double count
    proc.spawn()
    assert proc.alive
    proc.terminate()  # teardown path: SIGKILL + reap
    assert not proc.alive
    assert (proc.spawns, proc.kills) == (2, 2)


def test_worker_module_usage_error():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.recovery.worker"],
        env=_worker_env(),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 2
    assert "usage:" in proc.stderr
