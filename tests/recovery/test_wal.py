"""Write-ahead log framing: round-trips, torn tails, bit rot.

Satellite of the durability PR: the WAL must *truncate* a torn tail and
*reject* a checksum mismatch -- under no input may it deserialize
garbage past the first untrusted byte.  The tests sweep truncation
points across every byte offset of the final record and flip bits at
seeded positions throughout the body.
"""

import os
import zlib

import numpy as np
import pytest

from repro.recovery.wal import (
    FSYNC_POLICIES,
    MAGIC,
    WalError,
    WriteAheadLog,
    encode_record,
    scan,
)


def _sample_records(rng, n):
    """Records shaped like real campaign traffic: nested dicts, bytes,
    numpy payloads of varying size."""
    out = []
    for i in range(n):
        out.append(
            {
                "t": rng.choice(["send", "acks", "ckpt"]),
                "i": i,
                "key": (f"c{i % 3}", "in"),
                "blob": bytes(rng.integers(0, 256, size=int(rng.integers(0, 512)), dtype=np.uint8)),
                "block": rng.standard_normal((int(rng.integers(1, 8)), 8)),
            }
        )
    return out


def _records_equal(a, b):
    assert a.keys() == b.keys()
    for k in a:
        if isinstance(a[k], np.ndarray):
            assert np.array_equal(a[k], b[k])
        else:
            assert a[k] == b[k]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_round_trip_property(tmp_path, seed):
    """write(records); scan() == records -- across sizes and payload shapes."""
    rng = np.random.default_rng(seed)
    records = _sample_records(rng, int(rng.integers(1, 30)))
    path = str(tmp_path / "w.log")
    with WriteAheadLog(path, fsync="never") as wal:
        for rec in records:
            wal.append(rec)
    got, good, tail = scan(path)
    assert tail == "clean"
    assert good == os.path.getsize(path)
    assert len(got) == len(records)
    for a, b in zip(records, got):
        _records_equal(a, b)


def test_truncation_at_every_byte_of_the_last_record(tmp_path):
    """Cut the file at every offset inside the final record: the scan
    must return exactly the preceding records and flag the tail torn."""
    records = [{"t": "send", "i": i, "pad": b"x" * 40} for i in range(4)]
    path = str(tmp_path / "w.log")
    with WriteAheadLog(path, fsync="never") as wal:
        for rec in records:
            wal.append(rec)
    full = open(path, "rb").read()
    last_len = len(encode_record(records[-1]))
    boundary = len(full) - last_len  # byte offset where the last record starts
    for cut in range(boundary, len(full)):
        open(path, "wb").write(full[:cut])
        got, good, tail = scan(path)
        assert len(got) == len(records) - 1
        assert good == boundary
        if cut == boundary:
            assert tail == "clean"  # a cut at the frame boundary is a clean log
        else:
            assert tail == "torn"
            with pytest.raises(WalError):
                scan(path, strict=True)


def test_reopen_truncates_torn_tail_and_appends_cleanly(tmp_path):
    """The crash signature end-to-end: torn tail on disk, reopen
    truncates it, and records appended afterwards scan clean."""
    path = str(tmp_path / "w.log")
    with WriteAheadLog(path, fsync="never") as wal:
        wal.append({"t": "send", "i": 0})
        wal.append({"t": "send", "i": 1})
    full = open(path, "rb").read()
    open(path, "wb").write(full[:-3])  # tear the last record
    wal = WriteAheadLog(path, fsync="never")
    assert wal.tail == "torn"
    assert wal.truncated_bytes > 0
    wal.append({"t": "send", "i": 2})
    wal.close()
    got, _, tail = scan(path)
    assert tail == "clean"
    assert [r["i"] for r in got] == [0, 2]  # record 1 was the torn casualty


def test_bit_flips_are_rejected_never_deserialized(tmp_path):
    """Flip one bit at seeded offsets through header and payload bytes:
    the flipped record (and everything after it) must be dropped with a
    ``corrupt``/``torn`` verdict -- never returned with mangled fields."""
    records = [{"t": "send", "i": i, "pad": b"y" * 64} for i in range(6)]
    path = str(tmp_path / "w.log")
    with WriteAheadLog(path, fsync="never") as wal:
        for rec in records:
            wal.append(rec)
    full = bytearray(open(path, "rb").read())
    sizes = [len(encode_record(r)) for r in records]
    starts = [len(MAGIC)]
    for s in sizes[:-1]:
        starts.append(starts[-1] + s)
    rng = np.random.default_rng(1234)
    offsets = sorted(set(int(o) for o in rng.integers(len(MAGIC), len(full), size=80)))
    for off in offsets:
        flipped = bytearray(full)
        flipped[off] ^= 1 << int(rng.integers(0, 8))
        open(path, "wb").write(bytes(flipped))
        got, good, tail = scan(path)
        hit = max(i for i, s in enumerate(starts) if s <= off)
        # Everything before the damaged record survives verbatim...
        assert [r["i"] for r in got[:hit]] == list(range(hit))
        assert len(got) <= hit
        assert good <= starts[hit]
        # ...and nothing after it is trusted.
        assert tail in ("corrupt", "torn")
        with pytest.raises(WalError):
            scan(path, strict=True)


def test_corrupt_length_field_does_not_trigger_a_giant_read(tmp_path):
    """A length field blown past MAX_RECORD_BYTES is reported corrupt
    immediately instead of being interpreted as a multi-GB record."""
    path = str(tmp_path / "w.log")
    with WriteAheadLog(path, fsync="never") as wal:
        wal.append({"t": "send", "i": 0})
    with open(path, "r+b") as fh:
        fh.seek(len(MAGIC))
        fh.write((2**31).to_bytes(4, "little"))  # absurd payload length
    got, good, tail = scan(path)
    assert got == [] and good == len(MAGIC) and tail == "corrupt"


def test_crc_guards_payload_not_just_length(tmp_path):
    """Same length, different payload: CRC catches the substitution."""
    rec = {"t": "acks", "msgs": [(("a", "in"), 1)]}
    payload_a = encode_record(rec)
    path = str(tmp_path / "w.log")
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(payload_a)
    # Replace the payload bytes with same-length junk, keep the header.
    body = bytearray(open(path, "rb").read())
    head_end = len(MAGIC) + 8
    junk = bytes((b + 1) % 256 for b in body[head_end:])
    open(path, "wb").write(bytes(body[:head_end]) + junk)
    assert zlib.crc32(junk) != zlib.crc32(payload_a[8:])
    got, _, tail = scan(path)
    assert got == [] and tail == "corrupt"


def test_bad_magic_raises(tmp_path):
    path = str(tmp_path / "not-a.log")
    open(path, "wb").write(b"JUNK!!" + b"\x00" * 20)
    with pytest.raises(WalError, match="bad magic"):
        scan(path)


def test_fsync_policy_is_validated(tmp_path):
    with pytest.raises(ValueError, match="unknown fsync policy"):
        WriteAheadLog(str(tmp_path / "w.log"), fsync="sometimes")
    for policy in FSYNC_POLICIES:
        wal = WriteAheadLog(str(tmp_path / f"{policy}.log"), fsync=policy)
        wal.append({"t": "send", "i": 0})
        wal.sync()
        wal.close()
        got, _, tail = scan(str(tmp_path / f"{policy}.log"))
        assert tail == "clean" and len(got) == 1


def test_close_is_idempotent_and_reports_survive_close(tmp_path):
    path = str(tmp_path / "w.log")
    wal = WriteAheadLog(path, fsync="never")
    wal.append({"t": "send", "i": 0})
    wal.close()
    wal.close()
    assert wal.size_bytes() > len(MAGIC)
    assert [r["i"] for r in wal.records()] == [0]
