"""Unit tests for the OS21-like RTOS substrate."""

import pytest

from repro.hw import make_sti7200
from repro.os21 import OS21System
from repro.os21.system import DEFAULT_TASK_BYTES
from repro.sim import Kernel, Timeout
from repro.sim.executor import Compute


def make_sys():
    k = Kernel()
    return k, OS21System(k, make_sti7200())


def test_default_task_bytes_matches_table3():
    assert DEFAULT_TASK_BYTES == 60 * 1024


def test_task_create_pins_to_cpu():
    k, sys_ = make_sys()

    def body():
        yield Compute("ns", 100)

    t = sys_.task_create(body(), name="t", cpu=2)
    sys_.shutdown()
    k.run()
    assert t.sched.cpu_time_ns == 100
    assert sys_.engine.cores[2].busy_ns == 100
    assert all(c.busy_ns == 0 for i, c in enumerate(sys_.engine.cores) if i != 2)


def test_task_memory_charged_to_local_sram_for_st231():
    k, sys_ = make_sys()
    local = sys_.platform.region("st231_0_local")

    def body():
        yield Timeout(1)

    sys_.task_create(body(), name="t", cpu=1)
    assert local.used_bytes == DEFAULT_TASK_BYTES
    sys_.shutdown()
    k.run()
    assert local.used_bytes == 0


def test_task_memory_charged_to_sdram_for_st40():
    k, sys_ = make_sys()
    sdram = sys_.platform.region("sdram")

    def body():
        yield Timeout(1)

    sys_.task_create(body(), name="t", cpu=0)
    assert sdram.used_bytes == DEFAULT_TASK_BYTES
    sys_.shutdown()
    k.run()


def test_task_time_is_cpu_time_not_wall_time():
    """The Table 3 semantics: task_time excludes blocked/idle periods."""
    k, sys_ = make_sys()

    def body():
        yield Compute("ns", 4_000_000)
        yield Timeout(100_000_000)  # long idle wait
        yield Compute("ns", 1_000_000)

    t = sys_.task_create(body(), name="t", cpu=1)
    sys_.shutdown()
    k.run()
    assert sys_.task_time_us(t) == 5_000
    assert t.sched.wall_time_ns() == 105_000_000


def test_time_now_is_per_cpu_local():
    k, sys_ = make_sys()
    values = [sys_.time_now_us(cpu) for cpu in range(5)]
    # local clocks are offset from each other (unsynchronised)
    assert len(set(values)) > 1


def test_priority_preemption_between_tasks_on_one_cpu():
    k, sys_ = make_sys()
    log = []

    def low():
        yield Compute("ns", 10_000)
        log.append(("low", k.now))

    def high():
        yield Compute("ns", 1_000)
        log.append(("high", k.now))

    sys_.task_create(low(), name="low", cpu=1, priority=1)

    def launch():
        sys_.task_create(high(), name="high", cpu=1, priority=9, charge_memory=False)

    k.schedule(2_000, launch)
    sys_.shutdown()
    k.run()
    assert log[0][0] == "high"
    assert log[0][1] == 3_000


def test_task_join():
    k, sys_ = make_sys()
    out = []

    def worker():
        yield Compute("ns", 500)
        return 42

    def waiter():
        out.append((yield from OS21System.task_join(w)))

    w = sys_.task_create(worker(), name="w", cpu=1)
    sys_.task_create(waiter(), name="waiter", cpu=0)
    sys_.shutdown()
    k.run()
    assert out == [42]


def test_duplicate_task_name_rejected():
    k, sys_ = make_sys()

    def body():
        yield Timeout(1)

    sys_.task_create(body(), name="t", cpu=0)
    with pytest.raises(ValueError, match="already in use"):
        sys_.task_create(body(), name="t", cpu=1)


def test_invalid_cpu_rejected():
    k, sys_ = make_sys()
    with pytest.raises(ValueError, match="no CPU"):
        sys_.task_create((x for x in []), name="t", cpu=9)


def test_partition_alloc_free():
    k, sys_ = make_sys()
    part = sys_.create_partition("heap", "sdram")
    ptr = part.alloc(1000, label="buf")
    assert sys_.platform.region("sdram").used_bytes == 1000
    part.free(ptr)
    assert sys_.platform.region("sdram").used_bytes == 0
    with pytest.raises(ValueError, match="already exists"):
        sys_.create_partition("heap", "sdram")


def test_heterogeneous_cost_st40_vs_st231():
    """The same logical work is ~10x slower on the ST40 than an ST231."""
    k, sys_ = make_sys()

    def body():
        yield Compute("reorder_block", 10)

    t40 = sys_.task_create(body(), name="on40", cpu=0)
    t231 = sys_.task_create(body(), name="on231", cpu=1)
    sys_.shutdown()
    k.run()
    assert t40.sched.cpu_time_ns > 1.2 * t231.sched.cpu_time_ns
