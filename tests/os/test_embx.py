"""Unit tests for the EMBX-like middleware."""

import pytest

from repro.embx import BOUNCE_BUFFER_BYTES, DistributedObject, EmbxError, EmbxTransport
from repro.embx.transport import DEFAULT_OBJECT_BYTES, SIGNAL_LATENCY_NS
from repro.hw import make_sti7200
from repro.os21 import OS21System
from repro.sim import Kernel


def make_stack():
    k = Kernel()
    sys_ = OS21System(k, make_sti7200())
    transport = EmbxTransport(k, sys_.platform.region("sdram"))
    return k, sys_, transport


def test_object_allocation_in_shared_region():
    k, sys_, tr = make_stack()
    obj = tr.create_object("o", owner_cpu=0)
    assert obj.size_bytes == DEFAULT_OBJECT_BYTES == 25 * 1024
    assert sys_.platform.region("sdram").used_bytes == 25 * 1024
    tr.destroy_object(obj)
    assert sys_.platform.region("sdram").used_bytes == 0


def test_duplicate_object_name_rejected():
    k, sys_, tr = make_stack()
    tr.create_object("o", owner_cpu=0)
    with pytest.raises(EmbxError, match="already exists"):
        tr.create_object("o", owner_cpu=1)


def test_send_receive_roundtrip():
    k, sys_, tr = make_stack()
    obj = tr.create_object("o", owner_cpu=1)
    got = []

    def sender():
        yield from tr.send(obj, {"frame": 7}, nbytes=1024)

    def receiver():
        payload, nbytes = yield from tr.receive(obj)
        got.append((payload, nbytes))

    sys_.task_create(receiver(), name="rx", cpu=1)
    sys_.task_create(sender(), name="tx", cpu=0)
    sys_.shutdown()
    k.run()
    assert got == [({"frame": 7}, 1024)]


def test_send_is_asynchronous():
    """EMBX_Send completes without a receiver (write semantics)."""
    k, sys_, tr = make_stack()
    obj = tr.create_object("o", owner_cpu=1)
    done = []

    def sender():
        yield from tr.send(obj, "m", nbytes=100)
        done.append(k.now)

    sys_.task_create(sender(), name="tx", cpu=0)
    sys_.shutdown()
    k.run()
    assert done and len(obj.queue) == 1


def test_receive_blocks_until_send():
    k, sys_, tr = make_stack()
    obj = tr.create_object("o", owner_cpu=1)
    times = {}

    def receiver():
        yield from tr.receive(obj)
        times["rx_done"] = k.now

    def sender():
        from repro.sim.executor import Compute

        yield Compute("ns", 500_000)
        yield from tr.send(obj, "m", nbytes=0)
        times["tx_done"] = k.now

    sys_.task_create(receiver(), name="rx", cpu=1)
    sys_.task_create(sender(), name="tx", cpu=0)
    sys_.shutdown()
    k.run()
    assert times["rx_done"] >= times["tx_done"]
    assert times["rx_done"] >= 500_000


def test_effective_bytes_linear_below_knee():
    k, sys_, tr = make_stack()
    assert tr.effective_copy_bytes(1000) == 1000
    assert tr.effective_copy_bytes(BOUNCE_BUFFER_BYTES) == BOUNCE_BUFFER_BYTES


def test_effective_bytes_penalised_above_knee():
    k, sys_, tr = make_stack()
    n = BOUNCE_BUFFER_BYTES + 10_000
    eff = tr.effective_copy_bytes(n)
    assert eff == BOUNCE_BUFFER_BYTES + 1.8 * 10_000
    # marginal cost above the knee exceeds marginal cost below it
    below = tr.effective_copy_bytes(40_000) / 40_000
    above = (tr.effective_copy_bytes(200_000) - tr.effective_copy_bytes(100_000)) / 100_000
    assert above > below


def test_send_cost_st40_slower_than_st231():
    """Figure 8 ordering: same message, ST40 send takes longer."""
    durations = {}
    for cpu, tag in [(0, "st40"), (1, "st231")]:
        k, sys_, tr = make_stack()
        obj = tr.create_object("o", owner_cpu=2)

        def sender():
            t0 = k.now
            yield from tr.send(obj, "m", nbytes=100 * 1024)
            durations[tag] = k.now - t0

        sys_.task_create(sender(), name="tx", cpu=cpu)
        sys_.shutdown()
        k.run()
    assert durations["st40"] > 1.5 * durations["st231"]


def test_send_on_destroyed_object_rejected():
    k, sys_, tr = make_stack()
    obj = tr.create_object("o", owner_cpu=0)
    tr.destroy_object(obj)
    with pytest.raises(EmbxError, match="destroyed"):
        next(tr.send(obj, "m", 10))
    with pytest.raises(EmbxError, match="already destroyed"):
        tr.destroy_object(obj)


def test_send_receive_counters():
    k, sys_, tr = make_stack()
    obj = tr.create_object("o", owner_cpu=1)

    def sender():
        for _ in range(3):
            yield from tr.send(obj, "m", nbytes=10)

    def receiver():
        for _ in range(3):
            yield from tr.receive(obj)

    sys_.task_create(receiver(), name="rx", cpu=1)
    sys_.task_create(sender(), name="tx", cpu=0)
    sys_.shutdown()
    k.run()
    assert tr.sends == 3
    assert tr.receives == 3


def test_interrupt_counts_per_owner_cpu():
    """Every send raises one interrupt on the receiving (owner) CPU."""
    k, sys_, tr = make_stack()
    obj1 = tr.create_object("o1", owner_cpu=1)
    obj2 = tr.create_object("o2", owner_cpu=2)

    def sender():
        for _ in range(3):
            yield from tr.send(obj1, "m", nbytes=10)
        yield from tr.send(obj2, "m", nbytes=10)

    def receiver(obj, n):
        def body():
            for _ in range(n):
                yield from tr.receive(obj)

        return body()

    sys_.task_create(receiver(obj1, 3), name="rx1", cpu=1)
    sys_.task_create(receiver(obj2, 1), name="rx2", cpu=2)
    sys_.task_create(sender(), name="tx", cpu=0)
    sys_.shutdown()
    k.run()
    assert tr.interrupts_by_cpu == {1: 3, 2: 1}
