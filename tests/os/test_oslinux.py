"""Unit tests for the Linux-like OS substrate."""

import pytest

from repro.hw import make_smp16
from repro.oslinux import DEFAULT_STACK_BYTES, LinuxSystem
from repro.sim import Kernel, Timeout
from repro.sim.executor import Compute


def make_sys():
    k = Kernel()
    return k, LinuxSystem(k, make_smp16())


def test_default_stack_matches_paper():
    assert DEFAULT_STACK_BYTES == 8392 * 1024


def test_pthread_create_and_join():
    k, sys_ = make_sys()
    proc = sys_.spawn_process("app")
    results = []

    def worker():
        yield Compute("huffman_block", 10)
        return "done"

    def main():
        t = proc.pthread_create(worker(), name="w")
        results.append((yield from proc.pthread_join(t)))

    proc.pthread_create(main(), name="main")
    sys_.shutdown()
    k.run()
    assert results == ["done"]


def test_thread_stack_charged_and_released():
    k, sys_ = make_sys()
    proc = sys_.spawn_process("app", home_node=2)
    region = sys_.node_region(2)

    def worker():
        yield Timeout(100)

    t = proc.pthread_create(worker(), name="w")
    assert region.used_bytes == DEFAULT_STACK_BYTES
    assert t.attr_getstacksize() == DEFAULT_STACK_BYTES
    sys_.shutdown()
    k.run()
    assert region.used_bytes == 0


def test_custom_stack_size():
    k, sys_ = make_sys()
    proc = sys_.spawn_process("app")

    def worker():
        yield Timeout(1)

    t = proc.pthread_create(worker(), stack_bytes=1024 * 1024)
    assert t.attr_getstacksize() == 1024 * 1024
    sys_.shutdown()
    k.run()


def test_malloc_accounting():
    k, sys_ = make_sys()
    proc = sys_.spawn_process("app", home_node=1)
    ptr = proc.malloc(5000, label="buf")
    assert proc.heap_bytes == 5000
    assert sys_.node_region(1).used_bytes == 5000
    proc.mfree(ptr)
    assert proc.heap_bytes == 0
    assert proc.heap_peak == 5000


def test_malloc_on_explicit_node():
    k, sys_ = make_sys()
    proc = sys_.spawn_process("app", home_node=0)
    proc.malloc(100, node=5)
    assert sys_.node_region(5).used_bytes == 100
    assert sys_.node_region(0).used_bytes == 0


def test_gettimeofday_microseconds():
    k, sys_ = make_sys()
    proc = sys_.spawn_process("app")
    stamps = []

    def worker():
        stamps.append(sys_.gettimeofday_us())
        yield Compute("ns", 2_500_000)
        stamps.append(sys_.gettimeofday_us())

    proc.pthread_create(worker())
    sys_.shutdown()
    k.run()
    assert stamps[0] == 0
    assert stamps[1] == 2_500


def test_threads_spread_across_cores():
    """16 independent CPU-bound threads on 16 cores finish in ~1 unit."""
    k, sys_ = make_sys()
    proc = sys_.spawn_process("app")

    def worker():
        yield Compute("ns", 1_000_000)

    for i in range(16):
        proc.pthread_create(worker(), name=f"w{i}")
    sys_.shutdown()
    k.run()
    assert k.now == 1_000_000


def test_oversubscription_time_shares():
    """32 threads on 16 cores take ~2x the single-thread time."""
    k, sys_ = make_sys()
    proc = sys_.spawn_process("app")

    def worker():
        yield Compute("ns", 1_000_000)

    for i in range(32):
        proc.pthread_create(worker(), name=f"w{i}")
    sys_.shutdown()
    k.run()
    assert k.now == 2_000_000


def test_cpu_time_accounting():
    k, sys_ = make_sys()
    proc = sys_.spawn_process("app")

    def worker():
        yield Compute("ns", 700)
        yield Timeout(10_000)  # off-CPU
        yield Compute("ns", 300)

    t = proc.pthread_create(worker())
    sys_.shutdown()
    k.run()
    assert t.cpu_time_ns() == 1000
    assert t.sched.wall_time_ns() == 11_000
