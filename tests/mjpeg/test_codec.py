"""Encoder/decoder integration tests and stream generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mjpeg import decode_image, encode_image, generate_stream, synthetic_frame
from repro.mjpeg.decoder import (
    DecodeError,
    assemble_image,
    coefficients_from_qzz,
    decode_frame_bits,
    decode_frame_coefficients,
    idct_stage,
    split_blocks,
)
from repro.mjpeg.encoder import blocks_to_image, image_to_blocks
from repro.mjpeg.quant import quant_table
from repro.mjpeg.zigzag import zigzag


def test_image_block_roundtrip():
    rng = np.random.default_rng(0)
    img = rng.integers(0, 256, (32, 48), dtype=np.uint8)
    blocks = image_to_blocks(img)
    assert blocks.shape == (24, 8, 8)
    assert np.array_equal(blocks_to_image(blocks, 32, 48), img)


def test_image_to_blocks_requires_multiple_of_8():
    with pytest.raises(ValueError):
        image_to_blocks(np.zeros((10, 16), dtype=np.uint8))


def test_block_raster_order():
    """Block k covers rows 8*(k // (W/8)) and cols 8*(k % (W/8))."""
    img = np.zeros((16, 16), dtype=np.uint8)
    img[0:8, 8:16] = 7  # second block in raster order
    blocks = image_to_blocks(img)
    assert blocks[1].min() == 7
    assert blocks[0].max() == 0


def test_encode_decode_exact_coefficient_recovery():
    """Entropy coding is lossless: decoded quantized coefficients match."""
    img = synthetic_frame(0, 48, 48)
    enc = encode_image(img, quality=75)
    zz = decode_frame_bits(enc.payload, enc.n_blocks)
    assert np.array_equal(zz, enc.qcoefs_zz.astype(np.int32))


def test_roundtrip_quality_improves_fidelity():
    img = synthetic_frame(1, 64, 64, np.random.default_rng(0))
    errs = {}
    for q in (25, 75, 95):
        enc = encode_image(img, quality=q)
        dec = decode_image(enc.payload, 64, 64, q)
        errs[q] = float(np.mean(np.abs(dec.astype(int) - img.astype(int))))
    assert errs[95] < errs[75] < errs[25]
    assert errs[95] < 3.0


def test_higher_quality_bigger_payload():
    img = synthetic_frame(2, 64, 64, np.random.default_rng(1))
    assert encode_image(img, 90).n_bits > encode_image(img, 30).n_bits


def test_stored_coefficients_match_bit_decode():
    img = synthetic_frame(3, 48, 48, np.random.default_rng(2))
    enc = encode_image(img, quality=60)
    a = decode_frame_coefficients(enc.payload, enc.n_blocks, 60)
    b = coefficients_from_qzz(enc.qcoefs_zz, 60)
    assert np.array_equal(a, b)


def test_truncated_stream_raises():
    img = synthetic_frame(0, 32, 32)
    enc = encode_image(img, quality=75)
    with pytest.raises(DecodeError, match="truncated"):
        decode_frame_bits(enc.payload[: len(enc.payload) // 4], enc.n_blocks)


def test_flat_image_compresses_to_dc_only():
    img = np.full((16, 16), 128, dtype=np.uint8)
    enc = encode_image(img, quality=75)
    # 4 blocks of (DC cat 0 + EOB): tiny payload
    assert enc.n_bits <= 4 * (2 + 4) + 8
    dec = decode_image(enc.payload, 16, 16, 75)
    assert np.array_equal(dec, img)


def test_encoder_requires_uint8():
    with pytest.raises(ValueError, match="uint8"):
        encode_image(np.zeros((8, 8), dtype=np.float64))


@settings(max_examples=10, deadline=None)
@given(hnp.arrays(np.uint8, (16, 16), elements=st.integers(0, 255)))
def test_roundtrip_error_bounded_property(img):
    """Reconstruction error is bounded by the quantization step budget."""
    enc = encode_image(img, quality=90)
    dec = decode_image(enc.payload, 16, 16, 90)
    # q90 table max step is small; allow a conservative bound
    assert np.abs(dec.astype(int) - img.astype(int)).max() <= 64


# -- pipeline stage functions --------------------------------------------------------


def test_split_blocks_partition():
    blocks = np.arange(144 * 64).reshape(144, 8, 8)
    batches = split_blocks(blocks, 18)
    assert len(batches) == 18
    assert all(len(b) == 8 for b in batches)
    assert np.array_equal(np.concatenate(batches), blocks)


def test_split_blocks_uneven():
    blocks = np.zeros((10, 8, 8))
    batches = split_blocks(blocks, 3)
    sizes = [len(b) for b in batches]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1
    assert min(sizes) >= 1


def test_split_blocks_validation():
    with pytest.raises(ValueError):
        split_blocks(np.zeros((4, 8, 8)), 5)
    with pytest.raises(ValueError):
        split_blocks(np.zeros((4, 8, 8)), 0)


def test_stage_functions_compose_to_reference_decode():
    img = synthetic_frame(5, 48, 48, np.random.default_rng(3))
    enc = encode_image(img, quality=80)
    coefs = decode_frame_coefficients(enc.payload, enc.n_blocks, 80)
    batches = split_blocks(coefs, 6)
    pixel_batches = [idct_stage(b) for b in batches]
    out = assemble_image(pixel_batches, 48, 48)
    assert np.array_equal(out, decode_image(enc.payload, 48, 48, 80))


# -- streams ----------------------------------------------------------------------------


def test_generate_stream_geometry():
    s = generate_stream(5, 96, 96, quality=75, seed=1)
    assert len(s) == 5
    assert s.n_blocks_per_frame == 144
    assert all(r.index == i for i, r in enumerate(s))
    assert s.total_payload_bytes() > 0


def test_stream_deterministic_by_seed():
    a = generate_stream(3, 48, 48, seed=7)
    b = generate_stream(3, 48, 48, seed=7)
    assert all(x.frame.payload == y.frame.payload for x, y in zip(a, b))
    c = generate_stream(3, 48, 48, seed=8)
    assert any(x.frame.payload != y.frame.payload for x, y in zip(a, c))


def test_stream_frames_differ_over_time():
    s = generate_stream(3, 48, 48, seed=0)
    assert s[0].frame.payload != s[1].frame.payload


def test_stream_drop_payloads():
    s = generate_stream(2, 48, 48)
    s.drop_payloads()
    assert all(r.frame.payload == b"" for r in s)
    assert all(r.frame.qcoefs_zz is not None for r in s)


def test_stream_validation():
    with pytest.raises(ValueError):
        generate_stream(0)
