"""Unit and property tests for bit I/O and Huffman coding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mjpeg.bitio import BitReader, BitWriter
from repro.mjpeg.huffman import (
    AC_LUMA_BITS,
    AC_LUMA_VALS,
    DC_LUMA_BITS,
    DC_LUMA_VALS,
    HuffmanTable,
    STD_AC_LUMA,
    STD_DC_LUMA,
    decode_magnitude,
    encode_magnitude,
    magnitude_category,
)


# -- bit I/O -----------------------------------------------------------------


def test_bitwriter_msb_first():
    w = BitWriter()
    w.write(0b101, 3)
    w.write(0b11111, 5)
    assert w.getvalue() == bytes([0b10111111])
    assert w.bits_written == 8


def test_bitwriter_pads_with_ones():
    w = BitWriter()
    w.write(0b0, 1)
    assert w.getvalue() == bytes([0b01111111])
    assert w.bits_written == 1


def test_bitwriter_value_range_checked():
    w = BitWriter()
    with pytest.raises(ValueError):
        w.write(4, 2)
    with pytest.raises(ValueError):
        w.write(-1, 3)


def test_bitreader_roundtrip():
    w = BitWriter()
    w.write(0xABC, 12)
    w.write(0x5, 3)
    r = BitReader(w.getvalue())
    assert r.read(12) == 0xABC
    assert r.read(3) == 0x5


def test_bitreader_eof():
    r = BitReader(b"\xff")
    r.read(8)
    with pytest.raises(EOFError):
        r.read_bit()


@settings(max_examples=50)
@given(st.lists(st.tuples(st.integers(0, 16), st.integers(0, 2**16 - 1)), min_size=1, max_size=30))
def test_bitio_roundtrip_property(chunks):
    w = BitWriter()
    expected = []
    for nbits, value in chunks:
        value &= (1 << nbits) - 1 if nbits else 0
        w.write(value, nbits)
        expected.append((nbits, value))
    r = BitReader(w.getvalue())
    for nbits, value in expected:
        assert r.read(nbits) == value


# -- Huffman tables -----------------------------------------------------------------


def test_standard_tables_wellformed():
    assert sum(DC_LUMA_BITS) == len(DC_LUMA_VALS) == 12
    assert sum(AC_LUMA_BITS) == len(AC_LUMA_VALS) == 162


def test_table_validation():
    with pytest.raises(ValueError, match="16 entries"):
        HuffmanTable([0] * 15, [])
    with pytest.raises(ValueError, match="HUFFVAL"):
        HuffmanTable([0, 1] + [0] * 14, [1, 2])
    with pytest.raises(ValueError, match="duplicate"):
        HuffmanTable([0, 2] + [0] * 14, [5, 5])


def test_canonical_codes_are_prefix_free():
    for table in (STD_DC_LUMA, STD_AC_LUMA):
        codes = {
            format(code, f"0{length}b") for code, length in table.encode_map.values()
        }
        assert len(codes) == len(table.encode_map)
        for a in codes:
            for b in codes:
                if a is not b and len(a) < len(b):
                    assert not b.startswith(a), f"{a} prefixes {b}"


def test_encode_decode_symbol_roundtrip():
    w = BitWriter()
    symbols = [0, 5, 11, 3, 0]
    for s in symbols:
        STD_DC_LUMA.encode(w, s)
    r = BitReader(w.getvalue())
    assert [STD_DC_LUMA.decode(r) for _ in symbols] == symbols


def test_encode_unknown_symbol_rejected():
    with pytest.raises(ValueError, match="not in table"):
        STD_DC_LUMA.encode(BitWriter(), 99)


@settings(max_examples=50)
@given(st.lists(st.sampled_from(AC_LUMA_VALS), min_size=1, max_size=100))
def test_ac_symbol_roundtrip_property(symbols):
    w = BitWriter()
    for s in symbols:
        STD_AC_LUMA.encode(w, s)
    r = BitReader(w.getvalue())
    assert [STD_AC_LUMA.decode(r) for _ in symbols] == symbols


# -- magnitude coding ----------------------------------------------------------------


def test_magnitude_category():
    assert magnitude_category(0) == 0
    assert magnitude_category(1) == magnitude_category(-1) == 1
    assert magnitude_category(255) == 8
    assert magnitude_category(-1024) == 11


@given(st.integers(-32767, 32767))
def test_magnitude_roundtrip_property(value):
    category = magnitude_category(value)
    w = BitWriter()
    encode_magnitude(w, value, category)
    r = BitReader(w.getvalue() or b"\xff")
    assert decode_magnitude(r, category) == value
