"""Tests for the 4:2:0 color codec extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mjpeg.color import rgb_to_ycbcr, subsample_420, upsample_420, ycbcr_to_rgb
from repro.mjpeg.decoder import decode_color_image
from repro.mjpeg.encoder import encode_color_image
from repro.mjpeg.huffman import STD_AC_CHROMA, STD_DC_CHROMA
from repro.mjpeg.quant import STD_CHROMA_QUANT, quant_table


def color_test_image(h=64, w=64, seed=0):
    y, x = np.mgrid[0:h, 0:w]
    rng = np.random.default_rng(seed)
    rgb = np.stack(
        [
            (x * 4) % 256,
            (y * 4) % 256,
            ((x + y) * 2) % 256,
        ],
        axis=-1,
    ).astype(np.float64)
    rgb += rng.normal(0, 3, rgb.shape)
    return np.clip(rgb, 0, 255).astype(np.uint8)


# -- colour space --------------------------------------------------------------


def test_ycbcr_roundtrip_near_lossless():
    rgb = color_test_image()
    back = ycbcr_to_rgb(rgb_to_ycbcr(rgb))
    assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 1


def test_gray_pixels_have_neutral_chroma():
    gray = np.full((16, 16, 3), 77, dtype=np.uint8)
    ycc = rgb_to_ycbcr(gray)
    assert np.allclose(ycc[..., 0], 77, atol=0.5)
    assert np.allclose(ycc[..., 1:], 128, atol=0.5)


def test_primary_colors_ycc_values():
    """BT.601 luma weights: Y(white)=255, Y(red)=76, Y(green)=150, Y(blue)=29."""
    px = np.array([[[255, 255, 255], [255, 0, 0], [0, 255, 0], [0, 0, 255]]], dtype=np.uint8)
    y = rgb_to_ycbcr(px)[..., 0].ravel()
    assert np.allclose(y, [255, 76.245, 149.685, 29.07], atol=0.5)


def test_shape_validation():
    with pytest.raises(ValueError):
        rgb_to_ycbcr(np.zeros((8, 8)))
    with pytest.raises(ValueError):
        ycbcr_to_rgb(np.zeros((8, 8, 4)))


# -- subsampling --------------------------------------------------------------------


def test_subsample_averages_2x2():
    plane = np.array([[0, 4], [8, 12]], dtype=np.float64)
    assert subsample_420(plane) == pytest.approx(np.array([[6.0]]))


def test_subsample_requires_even_dims():
    with pytest.raises(ValueError):
        subsample_420(np.zeros((3, 4)))


def test_upsample_replicates():
    up = upsample_420(np.array([[5.0]]), 2, 2)
    assert np.array_equal(up, np.full((2, 2), 5.0))
    with pytest.raises(ValueError):
        upsample_420(np.zeros((2, 2)), 5, 4)


def test_sub_up_roundtrip_constant_plane():
    plane = np.full((16, 16), 93.0)
    assert np.array_equal(upsample_420(subsample_420(plane), 16, 16), plane)


# -- chroma tables --------------------------------------------------------------------


def test_chroma_quant_table_selected():
    assert np.array_equal(quant_table(50, chroma=True), STD_CHROMA_QUANT)
    assert not np.array_equal(quant_table(50, chroma=True), quant_table(50, chroma=False))


def test_chroma_huffman_tables_wellformed():
    assert len(STD_DC_CHROMA.encode_map) == 12
    assert len(STD_AC_CHROMA.encode_map) == 162


# -- end-to-end -----------------------------------------------------------------------


def test_color_roundtrip_high_quality():
    rgb = color_test_image()
    frame = encode_color_image(rgb, quality=92)
    out = decode_color_image(frame)
    assert out.shape == rgb.shape and out.dtype == np.uint8
    err = np.abs(out.astype(int) - rgb.astype(int))
    assert err.mean() < 6.0  # chroma subsampling bounds fidelity
    assert err[..., 0].mean() < err.mean() * 2  # no channel blows up


def test_color_quality_monotone():
    rgb = color_test_image(seed=1)
    errs = {}
    for q in (30, 70, 95):
        frame = encode_color_image(rgb, quality=q)
        out = decode_color_image(frame)
        errs[q] = float(np.mean(np.abs(out.astype(int) - rgb.astype(int))))
    assert errs[95] < errs[70] < errs[30]


def test_color_payload_layout():
    rgb = color_test_image(h=32, w=48)
    frame = encode_color_image(rgb, quality=75)
    (yn, yb, yo), (cbn, _, cbo), (crn, _, cro) = (
        (frame.plane_index[0][1], frame.plane_index[0][0], frame.plane_index[0][2]),
        frame.plane_index[1],
        frame.plane_index[2],
    )
    # Y has 4x the chroma block count in 4:2:0
    assert frame.plane_index[0][1] == 4 * frame.plane_index[1][1]
    assert frame.plane_index[1][1] == frame.plane_index[2][1]
    # plane segments are back to back and start at increasing offsets
    offsets = [p[2] for p in frame.plane_index]
    assert offsets[0] == 0 and offsets[0] < offsets[1] < offsets[2]


def test_color_dimension_validation():
    with pytest.raises(ValueError, match="divisible by 16"):
        encode_color_image(np.zeros((24, 32, 3), dtype=np.uint8))
    with pytest.raises(ValueError, match="uint8"):
        encode_color_image(np.zeros((32, 32, 3), dtype=np.float64))


def test_gray_image_through_color_path():
    """A gray RGB image survives the chroma path (neutral chroma)."""
    gray = np.repeat(color_test_image()[..., :1], 3, axis=-1)
    frame = encode_color_image(gray, quality=90)
    out = decode_color_image(frame)
    # channels stay nearly equal (chroma ~neutral through the codec)
    spread = np.abs(out.astype(int).max(axis=-1) - out.astype(int).min(axis=-1))
    assert spread.mean() < 3.0


@settings(max_examples=5, deadline=None)
@given(hnp.arrays(np.uint8, (16, 16, 3), elements=st.integers(0, 255)))
def test_color_roundtrip_never_crashes_property(rgb):
    frame = encode_color_image(rgb, quality=85)
    out = decode_color_image(frame)
    assert out.shape == rgb.shape
