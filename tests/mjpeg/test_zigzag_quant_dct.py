"""Unit and property tests for zigzag, quantization and DCT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mjpeg.dct import DCT_MATRIX, fdct_blocks, idct_blocks, idct_blocks_scaled, pixels_from_idct
from repro.mjpeg.quant import STD_LUMA_QUANT, dequantize, quant_table, quantize
from repro.mjpeg.zigzag import ZIGZAG_ORDER, dezigzag, zigzag


# -- zigzag ---------------------------------------------------------------------


def test_zigzag_order_is_permutation():
    assert sorted(ZIGZAG_ORDER.tolist()) == list(range(64))


def test_zigzag_known_prefix():
    """First entries of the T.81 scan: (0,0),(0,1),(1,0),(2,0),(1,1),(0,2)."""
    assert ZIGZAG_ORDER[:6].tolist() == [0, 1, 8, 16, 9, 2]
    assert ZIGZAG_ORDER[-1] == 63


def test_zigzag_roundtrip_single_block():
    block = np.arange(64).reshape(8, 8)
    assert np.array_equal(dezigzag(zigzag(block)), block)


def test_zigzag_batched():
    blocks = np.arange(3 * 64).reshape(3, 8, 8)
    zz = zigzag(blocks)
    assert zz.shape == (3, 64)
    assert np.array_equal(dezigzag(zz), blocks)


def test_zigzag_shape_validation():
    with pytest.raises(ValueError):
        zigzag(np.zeros((4, 4)))
    with pytest.raises(ValueError):
        dezigzag(np.zeros(63))


@given(hnp.arrays(np.int32, (5, 8, 8), elements=st.integers(-1024, 1024)))
def test_zigzag_roundtrip_property(blocks):
    assert np.array_equal(dezigzag(zigzag(blocks)), blocks)


# -- quantization ------------------------------------------------------------------


def test_quant_table_quality50_is_base():
    assert np.array_equal(quant_table(50), STD_LUMA_QUANT)


def test_quant_table_monotone_in_quality():
    q25, q75, q95 = quant_table(25), quant_table(75), quant_table(95)
    assert (q25 >= q75).all()
    assert (q75 >= q95).all()


def test_quant_table_bounds():
    for q in (1, 10, 50, 90, 100):
        t = quant_table(q)
        assert t.min() >= 1 and t.max() <= 255


def test_quant_table_invalid_quality():
    with pytest.raises(ValueError):
        quant_table(0)
    with pytest.raises(ValueError):
        quant_table(101)


def test_quantize_dequantize_bounded_error():
    rng = np.random.default_rng(0)
    coefs = rng.normal(0, 50, (10, 8, 8))
    table = quant_table(75)
    err = np.abs(dequantize(quantize(coefs, table), table) - coefs)
    assert (err <= table / 2 + 1e-9).all()


# -- DCT ----------------------------------------------------------------------------


def test_dct_matrix_orthonormal():
    assert np.allclose(DCT_MATRIX @ DCT_MATRIX.T, np.eye(8), atol=1e-12)


def test_dct_roundtrip():
    rng = np.random.default_rng(1)
    blocks = rng.uniform(-128, 127, (20, 8, 8))
    assert np.allclose(idct_blocks(fdct_blocks(blocks)), blocks, atol=1e-9)


def test_dct_matches_scipy():
    scipy_fft = pytest.importorskip("scipy.fft")
    rng = np.random.default_rng(2)
    block = rng.uniform(-128, 127, (8, 8))
    ours = fdct_blocks(block)
    ref = scipy_fft.dctn(block, type=2, norm="ortho")
    assert np.allclose(ours, ref, atol=1e-10)


def test_dct_dc_coefficient_is_scaled_mean():
    block = np.full((8, 8), 100.0)
    coefs = fdct_blocks(block)
    assert coefs[0, 0] == pytest.approx(800.0)  # 8 * mean
    assert np.allclose(coefs.ravel()[1:], 0, atol=1e-9)


def test_idct_scaled_equals_dequant_then_idct():
    rng = np.random.default_rng(3)
    q = quant_table(75)
    qcoefs = rng.integers(-50, 50, (6, 8, 8))
    a = idct_blocks_scaled(qcoefs, q)
    b = idct_blocks(qcoefs * q)
    assert np.allclose(a, b, atol=1e-9)


def test_pixels_from_idct_clamps():
    samples = np.array([[-500.0, 500.0], [0.0, 1.4]])
    px = pixels_from_idct(samples)
    assert px.dtype == np.uint8
    assert px.tolist() == [[0, 255], [128, 129]]


@settings(max_examples=25)
@given(hnp.arrays(np.float64, (2, 8, 8), elements=st.floats(-128, 127, allow_nan=False)))
def test_dct_energy_preservation_property(blocks):
    """Orthonormal transform: Parseval's theorem holds per block."""
    coefs = fdct_blocks(blocks)
    assert np.allclose(
        (coefs**2).sum(axis=(-2, -1)), (blocks**2).sum(axis=(-2, -1)), rtol=1e-9, atol=1e-6
    )


def test_dct_shape_validation():
    with pytest.raises(ValueError):
        fdct_blocks(np.zeros((8, 4)))
    with pytest.raises(ValueError):
        idct_blocks(np.zeros((4, 8)))
