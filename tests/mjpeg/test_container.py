"""Tests for the MJPR stream container."""

import numpy as np
import pytest

from repro.mjpeg import generate_stream
from repro.mjpeg.container import ContainerError, load_stream, save_stream


@pytest.fixture
def stream():
    return generate_stream(5, 48, 48, quality=70, seed=3)


def streams_equal(a, b):
    if (a.height, a.width, a.quality, len(a)) != (b.height, b.width, b.quality, len(b)):
        return False
    for ra, rb in zip(a, b):
        fa, fb = ra.frame, rb.frame
        if fa.payload != fb.payload or fa.n_bits != fb.n_bits or fa.n_blocks != fb.n_blocks:
            return False
        if not np.array_equal(fa.qcoefs_zz, fb.qcoefs_zz):
            return False
    return True


def test_roundtrip_with_coefficients(tmp_path, stream):
    path = tmp_path / "s.mjr"
    size = save_stream(stream, path, with_coefficients=True)
    assert size == path.stat().st_size
    loaded = load_stream(path)
    assert streams_equal(stream, loaded)


def test_roundtrip_without_coefficients_reconstructs(tmp_path, stream):
    path = tmp_path / "s.mjr"
    small = save_stream(stream, path, with_coefficients=False)
    loaded = load_stream(path)
    assert streams_equal(stream, loaded)
    # storing coefficients costs space
    big = save_stream(stream, tmp_path / "s2.mjr", with_coefficients=True)
    assert big > small


def test_loaded_stream_decodes_in_pipeline(tmp_path, stream):
    from repro.mjpeg import decode_image
    from repro.mjpeg.components import build_smp_assembly
    from repro.runtime import SmpSimRuntime

    path = tmp_path / "s.mjr"
    save_stream(stream, path)
    loaded = load_stream(path)
    app = build_smp_assembly(loaded, keep_frames=True)
    rt = SmpSimRuntime()
    rt.run(app)
    rt.stop()
    frames = app.components["Reorder"].frames
    ref = decode_image(stream[3].frame.payload, 48, 48, 70)
    assert np.array_equal(frames[3], ref)


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "junk"
    path.write_bytes(b"NOPE" + bytes(60))
    with pytest.raises(ContainerError, match="magic"):
        load_stream(path)


def test_short_file_rejected(tmp_path):
    path = tmp_path / "tiny"
    path.write_bytes(b"MJ")
    with pytest.raises(ContainerError, match="shorter"):
        load_stream(path)


def test_truncation_detected(tmp_path, stream):
    path = tmp_path / "s.mjr"
    save_stream(stream, path)
    data = path.read_bytes()
    for cut in (len(data) - 7, len(data) // 2):
        (tmp_path / "cut.mjr").write_bytes(data[:cut])
        with pytest.raises(ContainerError, match="truncated|trailing"):
            load_stream(tmp_path / "cut.mjr")


def test_trailing_garbage_detected(tmp_path, stream):
    path = tmp_path / "s.mjr"
    save_stream(stream, path)
    path.write_bytes(path.read_bytes() + b"xx")
    with pytest.raises(ContainerError, match="trailing"):
        load_stream(path)


def test_unsupported_version_rejected(tmp_path, stream):
    path = tmp_path / "s.mjr"
    save_stream(stream, path)
    data = bytearray(path.read_bytes())
    data[4] = 99  # version field
    path.write_bytes(bytes(data))
    with pytest.raises(ContainerError, match="version"):
        load_stream(path)
