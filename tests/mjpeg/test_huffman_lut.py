"""Property tests pinning the LUT decode fast paths to the F.16 walk.

The flat-LUT symbol decode (``HuffmanTable.decode``), the packed-LUT
plane decode (``decode_plane``) and the per-bit MINCODE/MAXCODE walk
must be bit-for-bit interchangeable, including their error behaviour.
"""

import random

import numpy as np
import pytest

from repro.mjpeg.bitio import BitReader, BitWriter
from repro.mjpeg.decoder import (
    DecodeError,
    decode_frame_bits,
    decode_plane,
    decode_plane_reference,
)
from repro.mjpeg.encoder import encode_image, encode_plane
from repro.mjpeg.huffman import (
    STD_AC_CHROMA,
    STD_AC_LUMA,
    STD_DC_CHROMA,
    STD_DC_LUMA,
)

TABLES = [STD_DC_LUMA, STD_AC_LUMA, STD_DC_CHROMA, STD_AC_CHROMA]


@pytest.mark.parametrize("table", TABLES, ids=lambda t: t.name)
def test_lut_symbol_decode_matches_walk_on_random_sequences(table):
    rng = random.Random(1234)
    symbols = list(table.encode_map)
    for _ in range(25):
        seq = [rng.choice(symbols) for _ in range(rng.randrange(1, 120))]
        writer = BitWriter()
        for sym in seq:
            table.encode(writer, sym)
        payload = writer.getvalue()
        via_lut = BitReader(payload)
        via_walk = BitReader(payload)
        for sym in seq:
            assert table.decode(via_lut) == sym
            assert table.decode_walk(via_walk) == sym
        assert via_lut.bits_read == via_walk.bits_read


@pytest.mark.parametrize("table", TABLES, ids=lambda t: t.name)
def test_lut_covers_every_window_like_the_walk(table):
    # Spot-check windows across the whole 16-bit space: the LUT entry
    # must agree with a fresh walk over the same bits.
    for window in range(0, 1 << 16, 251):
        payload = window.to_bytes(2, "big")
        entry = table.lut[window]
        walk_reader = BitReader(payload)
        try:
            symbol = table.decode_walk(walk_reader)
        except (ValueError, EOFError):
            symbol = None
        if symbol is None:
            # the walk could not resolve a symbol inside 16 bits
            assert entry == 0
        else:
            assert entry == (walk_reader.bits_read << 8) | symbol


def test_decode_plane_matches_reference_on_random_blocks():
    rng = np.random.default_rng(42)
    for trial in range(8):
        n_blocks = int(rng.integers(1, 24))
        qzz = np.zeros((n_blocks, 64), dtype=np.int32)
        # sparse-ish blocks with occasional big magnitudes and long runs
        for b in range(n_blocks):
            for _ in range(int(rng.integers(0, 12))):
                qzz[b, int(rng.integers(0, 64))] = int(rng.integers(-1023, 1024))
        writer = BitWriter()
        encode_plane(writer, qzz)
        writer.align()
        payload = writer.getvalue()
        fast = decode_plane(BitReader(payload), n_blocks)
        ref = decode_plane_reference(BitReader(payload), n_blocks)
        np.testing.assert_array_equal(fast, ref)
        np.testing.assert_array_equal(fast, qzz)


def test_decode_plane_chroma_tables_and_mid_stream_start():
    # Two planes back to back with different tables; the second decode
    # starts at an arbitrary (non byte-aligned) bit offset.
    rng = np.random.default_rng(7)
    qzz_a = rng.integers(-255, 256, size=(5, 64)).astype(np.int32)
    qzz_b = rng.integers(-255, 256, size=(3, 64)).astype(np.int32)
    writer = BitWriter()
    encode_plane(writer, qzz_a, STD_DC_LUMA, STD_AC_LUMA)
    encode_plane(writer, qzz_b, STD_DC_CHROMA, STD_AC_CHROMA)
    writer.align()
    payload = writer.getvalue()

    fast = BitReader(payload)
    a1 = decode_plane(fast, 5, STD_DC_LUMA, STD_AC_LUMA)
    b1 = decode_plane(fast, 3, STD_DC_CHROMA, STD_AC_CHROMA)
    ref = BitReader(payload)
    a2 = decode_plane_reference(ref, 5, STD_DC_LUMA, STD_AC_LUMA)
    b2 = decode_plane_reference(ref, 3, STD_DC_CHROMA, STD_AC_CHROMA)
    np.testing.assert_array_equal(a1, a2)
    np.testing.assert_array_equal(b1, b2)
    assert fast.bits_read == ref.bits_read


def test_truncated_stream_raises_decode_error():
    image = (np.arange(64 * 64) % 251).astype(np.uint8).reshape(64, 64)
    frame = encode_image(image, quality=50)
    cut = frame.payload[: max(1, len(frame.payload) // 3)]
    with pytest.raises(DecodeError):
        decode_frame_bits(cut, frame.n_blocks)


def test_invalid_code_raises_decode_error():
    # 0xFF bytes decode as an all-ones window, which no DC luma code
    # matches; with >= 16 bits left that is a corrupt stream, not EOF.
    with pytest.raises(DecodeError):
        decode_frame_bits(b"\xff" * 8, 1)


def test_bitwriter_accepts_wide_values():
    writer = BitWriter()
    writer.write((1 << 40) - 3, 41)
    writer.write(0x5, 3)
    payload = writer.getvalue()
    reader = BitReader(payload)
    assert reader.read(41) == (1 << 40) - 3
    assert reader.read(3) == 0x5
    with pytest.raises(ValueError):
        writer.write(4, 2)  # value does not fit
    with pytest.raises(ValueError):
        writer.write(1, -1)


def test_bitwriter_align_pads_with_ones():
    writer = BitWriter()
    writer.write(0b101, 3)
    writer.align()
    assert writer.getvalue() == bytes([0b10111111])
    assert writer.bits_written == 3  # padding not counted
    writer.align()  # no-op when already aligned
    writer.write(0b1, 1)
    assert writer.getvalue() == bytes([0b10111111, 0b11111111])
    assert writer.bits_written == 4


def test_peek16_pads_with_ones_past_eof():
    reader = BitReader(b"\xa5")
    assert reader.peek16() == (0xA5 << 8) | 0xFF
    assert reader.read(8) == 0xA5
    assert reader.peek16() == 0xFFFF
    with pytest.raises(EOFError):
        reader.skip(1)
