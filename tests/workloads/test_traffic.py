"""Tests for the traffic-model scale workload.

The contracts under test mirror the CI gates: the trace digest is
identical for every shard count, batched release changes nothing but
the callback count, and the measure -> repartition -> rerun loop
improves shard balance without touching the digest.
"""

import json

import pytest

from repro.sim.shard import PROFILE_SCHEMA, repartition_from_profile
from repro.workloads import (
    TrafficConfig,
    build_traffic_graph,
    run_traffic,
    traffic_profile_payload,
)

CFG = TrafficConfig(n_components=200, n_sessions=40, ticks=2, spin=5)


def test_graph_is_deterministic_and_complete():
    graph = build_traffic_graph(CFG)
    again = build_traffic_graph(CFG)
    assert graph["names"] == again["names"]
    assert graph["edges"] == again["edges"]
    assert len(graph["names"]) == CFG.n_components
    n_ingress, n_front, n_back, n_sink = graph["tiers"]
    assert n_ingress + n_front + n_back + n_sink == CFG.n_components
    names = set(graph["names"])
    assert all(a in names and b in names for a, b in graph["edges"])


def test_traffic_rejects_tiny_graphs():
    with pytest.raises(ValueError, match="at least 8"):
        build_traffic_graph(TrafficConfig(n_components=4))


def test_digest_invariant_across_shard_counts():
    reference = run_traffic(CFG, 1)
    assert reference["events"] == reference["requests"] * (2 + 2 * CFG.fanout)
    for n_shards in (2, 4):
        result = run_traffic(CFG, n_shards)
        assert result["digest"] == reference["digest"]
        assert result["events"] == reference["events"]
        assert result["makespan_ns"] == reference["makespan_ns"]


@pytest.mark.parametrize("seed", (1, 7, 42))
def test_batched_release_matches_per_envelope(seed):
    config = TrafficConfig(n_components=120, n_sessions=24, ticks=2, spin=0, seed=seed)
    batched = run_traffic(config, 3, batch_release=True)
    reference = run_traffic(config, 3, batch_release=False)
    assert batched["digest"] == reference["digest"]
    assert batched["events"] == reference["events"]
    # Per-envelope release schedules one callback per envelope; batching
    # must do strictly better on this tick-aligned workload.
    assert reference["batch_factor"] == 1.0
    assert batched["batch_factor"] > 10.0


def test_parallel_matches_cooperative():
    assert run_traffic(CFG, 2, parallel=True)["digest"] == run_traffic(CFG, 2)["digest"]


def test_repartition_improves_balance_and_preserves_digest():
    config = TrafficConfig(n_components=400, ticks=2, spin=0)
    graph = build_traffic_graph(config)
    static = run_traffic(config, 4, graph=graph)
    profile = traffic_profile_payload(static)
    tuned_partition = repartition_from_profile(
        graph["names"], graph["edges"], 4, profile
    )
    tuned = run_traffic(config, 4, partition=tuned_partition, graph=graph)
    assert tuned["digest"] == static["digest"]
    # The heavy sessions skew the static partition; the observed profile
    # must recover a measurably flatter event spread.
    assert max(tuned["shard_events"]) < max(static["shard_events"])


def test_profile_payload_is_schema_clean_json():
    result = run_traffic(TrafficConfig(n_components=64, ticks=1, spin=0), 2)
    payload = traffic_profile_payload(result)
    assert payload["schema"] == PROFILE_SCHEMA
    assert payload["n_shards"] == 2
    json.dumps(payload)  # must serialize as-is (CLI --record-profile)
    assert all(edge["messages"] > 0 for edge in payload["edges"])
    assert all(comp["events"] > 0 for comp in payload["components"].values())
