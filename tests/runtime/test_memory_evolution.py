"""Tests for the per-component heap / memory-evolution extension."""

import pytest

from repro.core import Application, OS_LEVEL
from repro.hw.memory import AllocationError
from repro.runtime import NativeRuntime, SmpSimRuntime, Sti7200SimRuntime
from repro.runtime.base import RuntimeError_


def alloc_app(sizes=(10_000, 50_000, 20_000)):
    app = Application("heapy")

    def worker(ctx):
        handles = []
        for n in sizes:
            handles.append((yield from ctx.alloc(n, label="buf")))
        yield from ctx.free(handles[1])  # free the middle allocation
        yield from ctx.compute("ns", 1000)

    app.create("worker", behavior=worker)
    app.attach_observer()
    return app


@pytest.mark.parametrize("runtime_cls", [SmpSimRuntime, NativeRuntime])
def test_heap_observation_any_runtime(runtime_cls):
    app = alloc_app()
    if runtime_cls is Sti7200SimRuntime:
        app.components["worker"].place(cpu=1)
    rt = runtime_cls()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    os_r = reports[("worker", OS_LEVEL)]
    assert os_r["heap_bytes"] == 10_000 + 20_000
    assert os_r["heap_peak_bytes"] == 80_000
    timeline = os_r["heap_timeline"]
    assert [b for (_, b) in timeline] == [10_000, 60_000, 80_000, 30_000]
    # timestamps non-decreasing
    times = [t for (t, _) in timeline]
    assert times == sorted(times)


def test_heap_charged_to_numa_node_on_smp():
    app = alloc_app()
    app.components["worker"].place(core=4)  # node 2
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    rt.wait()
    region = rt.system.node_region(2)
    assert region.usage_by_label().get("worker:buf") == 30_000
    rt.stop()


def test_heap_in_local_sram_on_sti7200_and_exhaustion():
    """ST231 tasks allocate from their 1 MB SRAM; oversubscription fails
    with a real allocation error, as on the part."""
    app = Application("sram")

    def greedy(ctx):
        yield from ctx.alloc(900 * 1024)
        yield from ctx.alloc(900 * 1024)  # exceeds the 1 MB local SRAM

    app.create("greedy", behavior=greedy).place(cpu=1)
    rt = Sti7200SimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(AllocationError, match="exhausted"):
        rt.wait()


def test_double_free_reported():
    app = Application("dfree")

    def bad(ctx):
        h = yield from ctx.alloc(100)
        yield from ctx.free(h)
        yield from ctx.free(h)

    app.create("bad", behavior=bad)
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(RuntimeError_, match="unknown heap handle"):
        rt.wait()


def test_negative_alloc_rejected():
    app = Application("neg")

    def bad(ctx):
        yield from ctx.alloc(-1)

    app.create("bad", behavior=bad)
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(ValueError, match="negative allocation"):
        rt.wait()


def test_heap_absent_from_report_when_unused():
    from tests.runtime.conftest import make_pipeline_app

    rt = SmpSimRuntime()
    rt.run(make_pipeline_app())
    reports = rt.collect()
    rt.stop()
    assert "heap_timeline" not in reports[("prod", OS_LEVEL)]
