"""FAILED-state propagation and bounded teardown on every runtime."""

import pytest

from repro.core import Application, CONTROL, ComponentState
from repro.runtime import NativeRuntime, SmpSimRuntime
from repro.runtime.base import RuntimeError_


def crashing_app(after=2, n_messages=6):
    app = Application("crashing")

    def producer(ctx):
        for i in range(n_messages):
            yield from ctx.send("out", i)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def consumer(ctx):
        seen = 0
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return seen
            seen += 1
            if seen == after:
                raise ValueError("boom at message %d" % seen)

    app.create("prod", behavior=producer, requires=["out"])
    app.create("cons", behavior=consumer, provides=["in"])
    app.connect("prod", "out", "cons", "in")
    return app


def test_sim_failure_sets_component_and_thread_state():
    app = crashing_app()
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(ValueError, match="boom at message 2"):
        rt.wait()
    assert app.components["cons"].state == ComponentState.FAILED
    cont = rt.containers["cons"]
    assert cont.handle.state == "FAILED"
    # the sibling was not retroactively blamed
    assert app.components["prod"].state != ComponentState.FAILED


def test_native_failure_propagates_with_cause():
    app = crashing_app()
    rt = NativeRuntime(receive_timeout_s=5.0, join_timeout_s=10.0)
    rt.deploy(app)
    rt.start()
    with pytest.raises(RuntimeError_, match="boom at message 2") as err:
        rt.wait()
    assert isinstance(err.value.__cause__, ValueError)
    assert app.components["cons"].state == ComponentState.FAILED
    rt.stop()


def test_native_join_timeout_bounds_teardown():
    app = Application("sleeper")

    def sleeper(ctx):
        yield from ctx.sleep(1_000_000_000)  # 1 s wall clock

    app.create("slow", behavior=sleeper)
    rt = NativeRuntime(join_timeout_s=0.2)
    rt.deploy(app)
    rt.start()
    with pytest.raises(RuntimeError_, match="did not finish"):
        rt.wait()


def test_sim_failure_does_not_wedge_restarted_runs():
    """A failed run leaves the runtime stoppable and a fresh deploy clean."""
    app = crashing_app()
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(ValueError):
        rt.wait()
    rt.stop()

    app2 = crashing_app(after=99)  # never actually crashes
    rt2 = SmpSimRuntime()
    rt2.deploy(app2)
    rt2.start()
    rt2.wait()
    rt2.stop()
    assert app2.components["cons"].state == ComponentState.STOPPED
