"""Shared fixtures: a small pipeline application used across runtime tests."""

import pytest

from repro.core import Application, CONTROL


def producer_behavior(n_messages, payload_bytes=1000, work_units=10):
    def behavior(ctx):
        for i in range(n_messages):
            yield from ctx.compute("huffman_block", work_units)
            yield from ctx.send("out", bytes(payload_bytes), tag=f"m{i}")
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    return behavior


def consumer_behavior(work_units=10):
    def behavior(ctx):
        received = 0
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL and msg.tag == "eos":
                return received
            yield from ctx.compute("idct_block", work_units)
            received += 1

    return behavior


def make_pipeline_app(n_messages=5, payload_bytes=1000, observer=True):
    app = Application("pipeline")
    app.create("prod", behavior=producer_behavior(n_messages, payload_bytes), requires=["out"])
    app.create("cons", behavior=consumer_behavior(), provides=["in"])
    app.connect("prod", "out", "cons", "in")
    if observer:
        app.attach_observer()
    return app


@pytest.fixture
def pipeline_app():
    return make_pipeline_app()
