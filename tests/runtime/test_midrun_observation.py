"""Mid-run (on-line) observation through scheduled collects."""

import pytest

from repro.core import APPLICATION_LEVEL
from repro.runtime import SmpSimRuntime
from repro.runtime.base import RuntimeError_

from tests.runtime.conftest import make_pipeline_app


def test_scheduled_collect_sees_intermediate_counters():
    app = make_pipeline_app(n_messages=50, payload_bytes=10_000)
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    early = rt.schedule_collect(1_000, plan=[("prod", APPLICATION_LEVEL)])
    # roughly mid-run: each message costs ~0.5ms compute, 50 messages
    mid = rt.schedule_collect(12_000_000, plan=[("prod", APPLICATION_LEVEL)])
    rt.wait()
    final = rt.collect(plan=[("prod", APPLICATION_LEVEL)])
    rt.stop()

    t_early, r_early = early.result
    t_mid, r_mid = mid.result
    sends_early = r_early[("prod", APPLICATION_LEVEL)]["sends"]
    sends_mid = r_mid[("prod", APPLICATION_LEVEL)]["sends"]
    sends_final = final[("prod", APPLICATION_LEVEL)]["sends"]
    assert sends_early <= sends_mid <= sends_final == 50
    assert sends_mid < 50  # genuinely mid-run
    assert sends_mid > 0
    assert t_early < t_mid


def test_scheduled_collect_requires_observer():
    app = make_pipeline_app(observer=False)
    rt = SmpSimRuntime()
    rt.deploy(app)
    with pytest.raises(RuntimeError_, match="observer"):
        rt.schedule_collect(0)


def test_scheduled_collect_does_not_perturb_virtual_time():
    """Observation queries ride the control channel: the makespan is
    unchanged whether or not snapshots are taken mid-run."""
    spans = []
    for snapshots in (0, 3):
        app = make_pipeline_app(n_messages=30)
        rt = SmpSimRuntime()
        rt.deploy(app)
        rt.start()
        for i in range(snapshots):
            rt.schedule_collect(1_000_000 * (i + 1))
        rt.wait()
        rt.stop()
        spans.append(rt.makespan_ns)
    assert spans[0] == spans[1]


def test_queue_depth_observation():
    """The middleware level exposes live inbound queue depths -- the
    backlog signal adaptation controllers key on."""
    from repro.core import MIDDLEWARE_LEVEL

    app = make_pipeline_app(n_messages=20)

    def slow_consumer(ctx):
        n = 0
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == "control":
                return n
            yield from ctx.compute("ns", 10_000_000)
            n += 1

    app.components["cons"]._behavior_fn = slow_consumer
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    mid = rt.schedule_collect(30_000_000, plan=[("cons", MIDDLEWARE_LEVEL)])
    rt.wait()
    final = rt.collect(plan=[("cons", MIDDLEWARE_LEVEL)])
    rt.stop()
    _, mid_reports = mid.result
    assert mid_reports[("cons", MIDDLEWARE_LEVEL)]["queue_depths"]["in"] > 0
    assert final[("cons", MIDDLEWARE_LEVEL)]["queue_depths"]["in"] == 0
