"""End-to-end tests for :class:`ShardedSmpSimRuntime`.

The oracle of the sharding PR: partitioning the simulation across N
conservative shards is *unobservable* in the output -- the decoded
frame set is sha256-identical and every component sees the same event
order for any shard count.
"""

import pytest

from repro.mjpeg import generate_stream
from repro.mjpeg.components import build_smp_assembly, frames_digest
from repro.runtime import ShardedSmpSimRuntime, SmpSimRuntime
from repro.runtime.base import RuntimeError_
from repro.sim.shard import span_shard
from repro.trace import TraceBuffer, enable_sharded_tracing, merge_buffers

N_IMAGES = 3


def _decode(n_shards: int, parallel: bool = False, trace: bool = False):
    """Run the MJPEG SMP decode; returns (digest, runtime, buffers)."""
    stream = generate_stream(N_IMAGES, 96, 96, quality=75, seed=0)
    app = build_smp_assembly(stream, use_stored_coefficients=True, keep_frames=True)
    if n_shards == 0:
        rt = SmpSimRuntime()
    else:
        rt = ShardedSmpSimRuntime(n_shards, parallel=parallel)
    buffers = None
    if trace:
        rt.deploy(app)
        buffers = enable_sharded_tracing(rt)
        rt.start()
        rt.wait()
    else:
        rt.run(app)
    reports = rt.collect()
    rt.stop()
    assert len(reports) == 15  # 5 components x 3 levels
    return frames_digest(app.components["Reorder"].frames), rt, buffers


def test_frame_set_is_shard_count_invariant():
    reference, _, _ = _decode(0)  # the plain single-kernel runtime
    for n_shards in (1, 2, 4):
        digest, rt, _ = _decode(n_shards)
        assert digest == reference, f"{n_shards} shards diverged from the baseline"
        assert rt.sim.sweeps >= 1


def test_parallel_driver_output_matches_cooperative():
    cooperative, _, _ = _decode(2, parallel=False)
    parallel, _, _ = _decode(2, parallel=True)
    assert parallel == cooperative


def _per_component_sequences(buffers):
    merged = merge_buffers(buffers)
    sequences = {}
    for ts, seq, component, category, name, phase, args in merged.rows():
        sequences.setdefault(component, []).append((category, name, phase))
    return sequences


def test_per_component_event_order_is_shard_count_invariant():
    """Timestamps may shift with placement (different cores, different
    NUMA latencies) but each component must run through the identical
    event sequence at every shard count."""
    two, _, buffers2 = _decode(2, trace=True)
    four, _, buffers4 = _decode(4, trace=True)
    assert two == four
    assert len(buffers2) == 2 and len(buffers4) == 4
    assert _per_component_sequences(buffers2) == _per_component_sequences(buffers4)


def test_span_ids_come_from_the_owning_shards_range():
    _, rt, buffers = _decode(2, trace=True)
    for name, cont in rt.containers.items():
        span = next(cont.context._span_source)
        assert span_shard(span) == cont.extra["shard"], name
    # Every message allocation (send/deposit END carries the fresh span)
    # across all shard buffers gets a distinct id -- the collision the
    # per-shard ranges exist to prevent.  Receive events legitimately
    # repeat the sender's span and are excluded.
    allocated = []
    for buffer in buffers:
        for ts, seq, component, category, name, phase, args in buffer.rows():
            if name in ("send", "deposit") and phase == "E" and "span" in args:
                allocated.append(args["span"])
    assert allocated and len(allocated) == len(set(allocated))


def test_placement_hints_pin_components():
    stream = generate_stream(N_IMAGES, 96, 96, quality=75, seed=0)
    app = build_smp_assembly(stream, use_stored_coefficients=True, keep_frames=True)
    app.components["IDCT_2"].place(shard=1)
    rt = ShardedSmpSimRuntime(2)
    rt.run(app)
    rt.collect()
    rt.stop()
    assert rt.containers["IDCT_2"].extra["shard"] == 1
    reference, _, _ = _decode(0)
    assert frames_digest(app.components["Reorder"].frames) == reference


def test_dynamic_reconfiguration_is_rejected():
    stream = generate_stream(N_IMAGES, 96, 96, quality=75, seed=0)
    app = build_smp_assembly(stream, use_stored_coefficients=True)
    rt = ShardedSmpSimRuntime(2)
    rt.deploy(app)
    with pytest.raises(RuntimeError_, match="use SmpSimRuntime"):
        rt.rebind("Fetch", "fetchIdct1", "IDCT_2", "_fetchIdct2")


def test_merge_buffers_orders_by_time_shard_and_seq():
    a, b = TraceBuffer(capacity=8), TraceBuffer(capacity=8)
    # (ts, seq, component, category, name, phase, args)
    a.append((10, 1, "x", "compute", "op", "I", {}))
    a.append((30, 2, "x", "compute", "op", "I", {}))
    b.append((10, 1, "y", "compute", "op", "I", {}))
    b.append((20, 2, "y", "compute", "op", "I", {}))
    merged = merge_buffers([a, b])
    order = [(row[0], row[2]) for row in merged.rows()]
    # Equal timestamps: shard 0 (buffer a) sorts before shard 1 (b).
    assert order == [(10, "x"), (10, "y"), (20, "y"), (30, "x")]
    seqs = [row[1] for row in merged.rows()]
    assert seqs == sorted(seqs) and len(set(seqs)) == 4


def test_merge_buffers_applies_clock_offsets():
    a, b = TraceBuffer(capacity=4), TraceBuffer(capacity=4)
    a.append((100, 1, "x", "compute", "op", "I", {}))
    b.append((10, 1, "y", "compute", "op", "I", {}))
    merged = merge_buffers([a, b], clock_offsets_ns=[0, 500])
    assert [(row[0], row[2]) for row in merged.rows()] == [(100, "x"), (510, "y")]


def test_profile_roundtrip_preserves_frames_and_reshapes_partition():
    """The measure -> repartition -> rerun loop on the runtime: the
    recorded profile is schema-clean, feeds back through ``profile=``,
    and the reweighted partition still decodes the identical frame set."""
    import json

    from repro.sim.shard import PROFILE_SCHEMA

    reference, rt, _ = _decode(2)
    profile = rt.profile()
    assert profile["schema"] == PROFILE_SCHEMA
    json.dumps(profile)  # CLI --record-profile writes this verbatim
    assert set(profile["components"]) == set(rt.containers)
    assert all(c["busy_ns"] >= 0 for c in profile["components"].values())
    assert any(e["messages"] > 0 for e in profile["edges"])

    stream = generate_stream(N_IMAGES, 96, 96, quality=75, seed=0)
    app = build_smp_assembly(stream, use_stored_coefficients=True, keep_frames=True)
    rerun = ShardedSmpSimRuntime(2, profile=profile)
    rerun.run(app)
    rerun.collect()
    rerun.stop()
    assert frames_digest(app.components["Reorder"].frames) == reference


def test_shard_plane_gauges_are_stamped_and_digest_safe():
    """The shard telemetry satellite: per-shard busy/sweeps/cut-traffic
    land as *gauges* (shard-layout-dependent, so they must stay outside
    the digest) and the metrics sha256 stays shard-count invariant."""
    from repro.metrics import collect_telemetry, enable_telemetry, metrics_digest

    def run(n_shards):
        stream = generate_stream(N_IMAGES, 96, 96, quality=75, seed=0)
        app = build_smp_assembly(stream, use_stored_coefficients=True)
        for i, comp in enumerate(app.components.values()):
            comp.placement.setdefault("core", i)  # pinned placement
        rt = ShardedSmpSimRuntime(n_shards)
        rt.deploy(app)
        enable_telemetry(rt)
        rt.start()
        rt.wait()
        rt.stop()
        return collect_telemetry(rt)

    reg2, reg4 = run(2), run(4)
    assert metrics_digest(reg2) == metrics_digest(reg4)
    instruments = reg4.snapshot()["instruments"]
    busy = [k for k in instruments if k.startswith("shard_busy_seconds")]
    cut = [k for k in instruments if k.startswith("shard_cut_messages")]
    assert len(busy) == 4 and len(cut) == 8  # in/out per shard
    assert all(instruments[k]["kind"] == "gauge" for k in busy + cut)
    assert sum(instruments[k]["value"] for k in cut) > 0  # real cross traffic
