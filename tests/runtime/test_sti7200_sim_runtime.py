"""Tests for the simulated OS21/STi7200 runtime."""

import pytest

from repro.core import APPLICATION_LEVEL, Application, MIDDLEWARE_LEVEL, OS_LEVEL
from repro.runtime import Sti7200SimRuntime
from repro.runtime.base import RuntimeError_

from tests.runtime.conftest import make_pipeline_app


def place_pipeline(app):
    app.components["prod"].place(cpu=0)
    app.components["cons"].place(cpu=1)
    return app


def run_pipeline(app=None):
    app = place_pipeline(app or make_pipeline_app())
    rt = Sti7200SimRuntime()
    rt.run(app)
    return rt, app


def test_pipeline_completes():
    rt, app = run_pipeline()
    assert rt.makespan_ns > 0


def test_missing_cpu_placement_rejected():
    app = make_pipeline_app()
    rt = Sti7200SimRuntime()
    with pytest.raises(RuntimeError_, match="cpu placement"):
        rt.deploy(app)


def test_one_component_per_cpu_enforced():
    app = make_pipeline_app()
    app.components["prod"].place(cpu=1)
    app.components["cons"].place(cpu=1)
    rt = Sti7200SimRuntime()
    with pytest.raises(RuntimeError_, match="one component per CPU"):
        rt.deploy(app)


def test_one_component_per_cpu_relaxable():
    app = make_pipeline_app()
    app.components["prod"].place(cpu=1)
    app.components["cons"].place(cpu=1)
    rt = Sti7200SimRuntime(enforce_one_component_per_cpu=False)
    rt.run(app)


def test_invalid_cpu_rejected():
    app = make_pipeline_app()
    app.components["prod"].place(cpu=0)
    app.components["cons"].place(cpu=17)
    rt = Sti7200SimRuntime()
    with pytest.raises(RuntimeError_, match="no cpu"):
        rt.deploy(app)


def test_os_report_task_time_and_memory():
    rt, app = run_pipeline()
    reports = rt.collect()
    rt.stop()
    prod_os = reports[("prod", OS_LEVEL)]
    cons_os = reports[("cons", OS_LEVEL)]
    # prod has no functional provided interface: bare 60 kB task
    assert prod_os["memory_kb"] == 60.0
    # cons provides one interface: 60 + 25 kB distributed object
    assert cons_os["memory_kb"] == 85.0
    assert prod_os["exec_time_us"] > 0


def test_task_time_is_cpu_time():
    """A blocked consumer's exec_time (task_time) is far below makespan."""
    app = place_pipeline(make_pipeline_app(n_messages=3))

    def lazy_consumer(ctx):
        n = 0
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == "control":
                return n
            n += 1

    app.components["cons"]._behavior_fn = lazy_consumer
    rt = Sti7200SimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    cons_cpu_us = reports[("cons", OS_LEVEL)]["exec_time_us"]
    assert cons_cpu_us * 1_000 < rt.makespan_ns / 2


def test_distributed_objects_allocated_in_sdram():
    app = place_pipeline(make_pipeline_app())
    rt = Sti7200SimRuntime()
    rt.deploy(app)
    usage = rt.platform.region("sdram").usage_by_label()
    assert usage.get("embx:cons.in") == 25 * 1024


def test_send_cost_exceeds_smp_equivalent():
    """The STi7200 send path is orders of magnitude slower than the SMP's
    (compare Figure 8 in ms vs Figure 4 in us)."""
    from repro.runtime import SmpSimRuntime

    means = {}
    for tag, rt, app in (
        ("smp", SmpSimRuntime(), make_pipeline_app(payload_bytes=25_000)),
        ("sti", Sti7200SimRuntime(), place_pipeline(make_pipeline_app(payload_bytes=25_000))),
    ):
        rt.run(app)
        reports = rt.collect()
        rt.stop()
        means[tag] = reports[("prod", MIDDLEWARE_LEVEL)]["send"]["mean_ns"]
    assert means["sti"] > 20 * means["smp"]


def test_counters_match_on_both_platforms():
    rt, app = run_pipeline()
    reports = rt.collect()
    rt.stop()
    assert reports[("prod", APPLICATION_LEVEL)]["sends"] == 5
    assert reports[("cons", APPLICATION_LEVEL)]["receives"] == 5


def test_local_clocks_differ_between_cpus():
    rt, app = run_pipeline()
    offsets = {rt.containers[n].context.clock_offset_ns for n in ("prod", "cons")}
    assert len(offsets) == 2


def test_deterministic_across_runs():
    spans = []
    for _ in range(2):
        rt, _ = run_pipeline(make_pipeline_app())
        spans.append(rt.makespan_ns)
    assert spans[0] == spans[1]


def test_interrupts_in_os_report():
    """The OS-level report exposes interrupts raised on each task's CPU."""
    rt, app = run_pipeline()
    reports = rt.collect()
    rt.stop()
    # cons (cpu 1) owns the distributed object: 6 sends -> 6 interrupts
    assert reports[("cons", OS_LEVEL)]["interrupts"] == 6
    assert reports[("prod", OS_LEVEL)]["interrupts"] == 0
