"""Dynamic reconfiguration: runtime component creation, live connection,
rebinding, and observer-in-the-loop adaptation."""

import numpy as np
import pytest

from repro.core import APPLICATION_LEVEL, Application, CONTROL, OS_LEVEL
from repro.mjpeg import decode_image, generate_stream
from repro.mjpeg.components import IdctComponent, build_smp_assembly
from repro.runtime import NativeRuntime, SmpSimRuntime
from repro.runtime.base import RuntimeError_
from repro.sim.process import Timeout


def slow_pipeline(n_messages=30):
    """Producer feeding a deliberately slow consumer stage."""
    app = Application("reconf")

    def producer(ctx):
        for i in range(n_messages):
            yield from ctx.compute("ns", 1_000)
            yield from ctx.send("out", i)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def consumer(ctx):
        count = 0
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return count
            yield from ctx.compute("ns", 100_000)
            count += 1

    app.create("prod", behavior=producer, requires=["out"])
    app.create("cons", behavior=consumer, provides=["in"])
    app.connect("prod", "out", "cons", "in")
    app.attach_observer()
    return app


def test_add_component_mid_run_sim():
    """Two components created mid-run, wired to each other, run to
    completion inside the original application."""
    app = slow_pipeline()
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()

    received = []

    def tap_behavior(ctx):
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return
            received.append(msg.payload)

    def feeder_behavior(ctx):
        for i in range(3):
            yield from ctx.send("tap_out", f"t{i}")
        yield from ctx.send("tap_out", None, kind=CONTROL, tag="eos")

    def controller(runtime, ctx):
        yield Timeout(1_000)  # let the pipeline start
        from repro.core import Component

        tap = Component("tap", behavior=tap_behavior)
        tap.add_provided("in")
        runtime.add_component(tap, observe=True)
        runtime.add_component(
            Component("feeder", behavior=feeder_behavior),
            connections=[("feeder", "tap_out", "tap", "in")],
        )

    rt.spawn_controller(controller)
    rt.wait()
    rt.stop()
    assert received == ["t0", "t1", "t2"]
    assert "tap" in rt.containers and "feeder" in rt.containers
    assert rt.probe("tap").data_receives.value == 3


def test_dynamic_component_is_observable():
    app = slow_pipeline()
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()

    def extra_behavior(ctx):
        yield from ctx.compute("ns", 5_000)

    def controller(runtime, ctx):
        yield Timeout(100)
        from repro.core import Component

        runtime.add_component(Component("extra", behavior=extra_behavior), observe=True)

    rt.spawn_controller(controller)
    rt.wait()
    reports = rt.collect()
    rt.stop()
    assert reports[("extra", OS_LEVEL)]["cpu_time_us"] == 5
    assert ("extra", APPLICATION_LEVEL) in reports


def test_rebind_redirects_messages():
    """Messages sent after a rebind arrive at the new target."""
    app = Application("rebind")
    got = {"a": [], "b": []}

    def producer(ctx):
        yield from ctx.send("out", 1)
        yield from ctx.compute("ns", 10_000)  # controller rebinds meanwhile
        yield from ctx.send("out", 2)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def consumer(tag):
        def behavior(ctx):
            while True:
                msg = yield from ctx.receive("in")
                if msg.kind == CONTROL:
                    return
                got[tag].append(msg.payload)

        return behavior

    app.create("prod", behavior=producer, requires=["out"])
    app.create("a", behavior=consumer("a"), provides=["in"])
    app.create("b", behavior=consumer("b"), provides=["in"])
    app.connect("prod", "out", "a", "in")
    app.attach_observer()
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()

    def controller(runtime, ctx):
        yield Timeout(5_000)
        runtime.rebind("prod", "out", "b", "in")
        # stop the now-orphaned consumers so wait() can finish
        yield Timeout(100_000)
        runtime.containers["a"].context.component.get_provided("in").binding.channel.put(
            __import__("repro.core.messages", fromlist=["Message"]).Message(
                payload=None, kind=CONTROL, tag="eos"
            )
        )

    rt.spawn_controller(controller)
    rt.wait()
    rt.stop()
    assert got["a"] == [1]
    assert got["b"] == [2]


def test_autoscale_idct_mid_run_decodes_all_frames():
    """The headline scenario: observation detects the 1-IDCT bottleneck,
    the controller adds two more IDCTs mid-run, and every frame still
    decodes bit-identically."""
    stream = generate_stream(12, 96, 96, quality=75, seed=21)
    app = build_smp_assembly(stream, n_idct=1, keep_frames=True)
    app.components["Reorder"].n_upstream = None  # count upstreams live
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()

    added = []

    def controller(runtime, ctx):
        yield Timeout(10_000_000)  # let the bottleneck establish itself
        for i in (2, 3):
            comp = IdctComponent(f"IDCT_{i}", i)
            runtime.add_component(
                comp,
                connections=[(comp, "idctReorder", "Reorder", "idctReorder")],
                observe=True,
            )
            runtime.connect_live("Fetch", f"fetchIdct{i}", comp, f"_fetchIdct{i}")
            added.append(comp.name)

    rt.spawn_controller(controller)
    rt.wait()
    reports = rt.collect()
    rt.stop()

    assert added == ["IDCT_2", "IDCT_3"]
    # every frame decoded and bit-identical to the reference
    reorder = app.components["Reorder"]
    assert sorted(reorder.frames) == list(range(1, 12))
    for rec in stream:
        if rec.index == 0:
            continue
        ref = decode_image(rec.frame.payload, 96, 96, 75)
        assert np.array_equal(reorder.frames[rec.index], ref)
    # the added IDCTs actually processed work
    for name in added:
        assert reports[(name, APPLICATION_LEVEL)]["receives"] > 0
    # message conservation across the reconfigured assembly
    total_sent = reports[("Fetch", APPLICATION_LEVEL)]["sends"]
    assert reports[("Reorder", APPLICATION_LEVEL)]["receives"] == total_sent


def test_autoscale_improves_makespan():
    stream = generate_stream(12, 96, 96, quality=75, seed=22)

    def run(scale):
        app = build_smp_assembly(stream, n_idct=1, use_stored_coefficients=True)
        app.components["Reorder"].n_upstream = None
        rt = SmpSimRuntime()
        rt.deploy(app)
        rt.start()
        if scale:
            def controller(runtime, ctx):
                yield Timeout(5_000_000)
                for i in (2, 3):
                    comp = IdctComponent(f"IDCT_{i}", i)
                    runtime.add_component(
                        comp,
                        connections=[(comp, "idctReorder", "Reorder", "idctReorder")],
                    )
                    runtime.connect_live("Fetch", f"fetchIdct{i}", comp, f"_fetchIdct{i}")

            rt.spawn_controller(controller)
        rt.wait()
        rt.stop()
        return rt.makespan_ns

    static = run(scale=False)
    scaled = run(scale=True)
    assert scaled < 0.75 * static, (static, scaled)


def test_add_component_native_runtime():
    app = slow_pipeline(n_messages=5)
    rt = NativeRuntime()
    rt.deploy(app)
    rt.start()
    from repro.core import Component

    seen = []

    def late(ctx):
        msg = yield from ctx.receive("in")
        seen.append(msg.payload)

    comp = Component("late", behavior=late)
    comp.add_provided("in")
    rt.add_component(comp, observe=True)

    def pusher(ctx):
        yield from ctx.send("to_late", "hello")

    rt.add_component(
        Component("pusher", behavior=pusher),
        connections=[("pusher", "to_late", "late", "in")],
    )
    rt.wait()
    rt.stop()
    assert seen == ["hello"]


def test_reconfiguration_requires_deployed_app():
    from repro.core import Component

    rt = SmpSimRuntime()
    with pytest.raises(RuntimeError_, match="deploy"):
        rt.add_component(Component("x", behavior=lambda ctx: iter(())))
    with pytest.raises(RuntimeError_, match="no deployed"):
        rt.connect_live("a", "out", "b", "in")


def test_duplicate_dynamic_name_rejected():
    from repro.core import Component, ConnectionError_

    app = slow_pipeline()
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(ConnectionError_, match="duplicate"):
        rt.add_component(Component("prod", behavior=lambda ctx: iter(())))
    rt.wait()
    rt.stop()
