"""Tests for the native (real threads) runtime."""

import numpy as np
import pytest

from repro.core import APPLICATION_LEVEL, Application, MIDDLEWARE_LEVEL, OS_LEVEL
from repro.runtime import NativeRuntime
from repro.runtime.base import RuntimeError_
from repro.runtime.native import drive

from tests.runtime.conftest import make_pipeline_app


def run_pipeline(app=None):
    app = app or make_pipeline_app()
    rt = NativeRuntime()
    rt.run(app)
    return rt, app


def test_pipeline_completes_with_real_threads():
    rt, app = run_pipeline()
    assert rt.makespan_ns > 0
    rt.stop()


def test_counters_identical_to_simulated_runtimes():
    rt, app = run_pipeline()
    reports = rt.collect()
    rt.stop()
    assert reports[("prod", APPLICATION_LEVEL)]["sends"] == 5
    assert reports[("cons", APPLICATION_LEVEL)]["receives"] == 5
    assert reports[("cons", APPLICATION_LEVEL)]["sends"] == 0


def test_os_report_has_real_times_and_model_memory():
    rt, app = run_pipeline()
    reports = rt.collect()
    rt.stop()
    os_report = reports[("prod", OS_LEVEL)]
    assert os_report["exec_time_us"] > 0
    assert os_report["memory_kb"] == 8392.0  # attribute semantics
    assert "cpu_time_us" in os_report


def test_middleware_timers_record_real_durations():
    rt, app = run_pipeline()
    reports = rt.collect()
    rt.stop()
    send = reports[("prod", MIDDLEWARE_LEVEL)]["send"]
    assert send["count"] == 6  # 5 data + 1 eos control
    assert send["mean_ns"] > 0


def test_payload_copied_on_send():
    """Mailbox copy semantics: mutating the source after send must not
    affect the received message."""
    app = Application("copysem")
    src = np.ones(64, dtype=np.uint8)
    received = []

    def producer(ctx):
        yield from ctx.send("out", src)
        src[:] = 0  # mutate after send

    def consumer(ctx):
        msg = yield from ctx.receive("in")
        received.append(msg.payload.copy())

    app.create("p", behavior=producer, requires=["out"])
    app.create("c", behavior=consumer, provides=["in"])
    app.connect("p", "out", "c", "in")
    rt = NativeRuntime()
    rt.run(app)
    rt.stop()
    assert received[0].min() == 1


def test_component_exception_reported():
    app = Application("boom")

    def bad(ctx):
        yield from ctx.compute("x", 1)
        raise ValueError("native bug")

    app.create("c", behavior=bad)
    rt = NativeRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(RuntimeError_, match="native bug"):
        rt.wait()


def test_receive_timeout_surfaces_deadlock():
    app = Application("dead")

    def starved(ctx):
        yield from ctx.receive("in")

    app.create("c", behavior=starved, provides=["in"])
    rt = NativeRuntime(receive_timeout_s=0.2, join_timeout_s=2.0)
    rt.deploy(app)
    rt.start()
    with pytest.raises(RuntimeError_, match="timed out"):
        rt.wait()


def test_drive_rejects_raw_sim_commands():
    from repro.sim.process import Timeout

    def bad_behavior():
        yield Timeout(10)

    with pytest.raises(RuntimeError_, match="yielded"):
        drive(bad_behavior())


def test_parallel_speedup_with_threads():
    """Independent receive waits overlap: total wall time is far less
    than the sum of the consumers' blocking windows."""
    import time

    app = Application("par")
    t_sleep = 0.05

    def waiter(ctx):
        time.sleep(t_sleep)
        return None
        yield  # pragma: no cover

    for i in range(4):
        app.create(f"w{i}", behavior=waiter)
    rt = NativeRuntime()
    t0 = time.perf_counter()
    rt.run(app)
    elapsed = time.perf_counter() - t0
    rt.stop()
    assert elapsed < 4 * t_sleep * 0.9
