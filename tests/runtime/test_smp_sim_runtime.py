"""Tests for the simulated Linux/SMP runtime."""

import pytest

from repro.core import APPLICATION_LEVEL, MIDDLEWARE_LEVEL, OS_LEVEL, Application, CONTROL
from repro.core.component import ComponentState
from repro.hw import make_smp16
from repro.oslinux.system import DEFAULT_STACK_BYTES
from repro.runtime import SmpSimRuntime
from repro.runtime.base import RuntimeError_

from tests.runtime.conftest import make_pipeline_app


def run_pipeline(app=None):
    app = app or make_pipeline_app()
    rt = SmpSimRuntime()
    rt.run(app)
    return rt, app


def test_pipeline_completes_and_time_advances():
    rt, app = run_pipeline()
    assert rt.makespan_ns > 0
    assert all(c.state == ComponentState.STOPPED for c in app.functional_components())


def test_application_counters_exact():
    rt, app = run_pipeline()
    reports = rt.collect()
    rt.stop()
    assert reports[("prod", APPLICATION_LEVEL)]["sends"] == 5
    assert reports[("prod", APPLICATION_LEVEL)]["receives"] == 0
    assert reports[("cons", APPLICATION_LEVEL)]["receives"] == 5
    assert reports[("cons", APPLICATION_LEVEL)]["sends"] == 0


def test_os_report_wall_time_and_memory():
    rt, app = run_pipeline()
    reports = rt.collect()
    rt.stop()
    prod_os = reports[("prod", OS_LEVEL)]
    cons_os = reports[("cons", OS_LEVEL)]
    assert prod_os["exec_time_us"] > 0
    assert prod_os["stack_bytes"] == DEFAULT_STACK_BYTES
    assert prod_os["interface_bytes"] == 0  # no functional provided interface
    assert prod_os["memory_kb"] == 8392.0
    assert cons_os["interface_bytes"] > 0  # one mailbox
    assert cons_os["memory_kb"] == pytest.approx(8392 + 2458)


def test_middleware_report_send_times_scale_with_size():
    small = make_pipeline_app(n_messages=10, payload_bytes=1_000)
    large = make_pipeline_app(n_messages=10, payload_bytes=100_000)
    means = {}
    for tag, app in (("small", small), ("large", large)):
        rt = SmpSimRuntime()
        rt.run(app)
        reports = rt.collect()
        rt.stop()
        means[tag] = reports[("prod", MIDDLEWARE_LEVEL)]["send"]["mean_ns"]
    assert means["large"] > 10 * means["small"]


def test_mailbox_memory_charged_to_node():
    app = make_pipeline_app()
    rt = SmpSimRuntime()
    rt.deploy(app)
    used = sum(r.used_bytes for r in rt.platform.regions.values())
    # one functional mailbox (cons.in) + no stacks yet
    assert used == 2458 * 1024


def test_stacks_charged_at_start_released_at_exit():
    app = make_pipeline_app()
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    used = sum(r.used_bytes for r in rt.platform.regions.values())
    assert used == 2458 * 1024 + 2 * DEFAULT_STACK_BYTES
    rt.wait()
    used_after = sum(r.used_bytes for r in rt.platform.regions.values())
    assert used_after == 2458 * 1024  # stacks released, mailboxes remain
    rt.stop()


def test_components_pinned_round_robin():
    app = make_pipeline_app()
    rt = SmpSimRuntime()
    rt.deploy(app)
    cores = [rt.containers[n].extra["core"] for n in ("prod", "cons")]
    assert cores == [0, 1]


def test_explicit_core_placement():
    app = make_pipeline_app()
    app.components["prod"].place(core=7)
    rt = SmpSimRuntime()
    rt.deploy(app)
    assert rt.containers["prod"].extra["core"] == 7


def test_deterministic_across_runs():
    results = []
    for _ in range(2):
        rt, _ = run_pipeline(make_pipeline_app())
        results.append(rt.makespan_ns)
    assert results[0] == results[1]


def test_stuck_component_reported():
    app = Application("stuck")

    def forever(ctx):
        yield from ctx.receive("in")

    app.create("c", behavior=forever, provides=["in"])
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(RuntimeError_, match="did not finish"):
        rt.wait()


def test_component_exception_propagates():
    app = Application("boom")

    def bad(ctx):
        yield from ctx.compute("x", 1)
        raise ValueError("component bug")

    app.create("c", behavior=bad)
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(ValueError, match="component bug"):
        rt.wait()


def test_collect_without_observer_rejected():
    app = make_pipeline_app(observer=False)
    rt = SmpSimRuntime()
    rt.run(app)
    with pytest.raises(RuntimeError_, match="observer"):
        rt.collect()


def test_collect_specific_plan():
    rt, app = run_pipeline()
    reports = rt.collect(plan=[("prod", APPLICATION_LEVEL)])
    rt.stop()
    assert set(reports) == {("prod", APPLICATION_LEVEL)}


def test_send_to_unconnected_interface_fails():
    from repro.core import ConnectionError_

    app = Application("bad")

    def lonely(ctx):
        yield from ctx.send("out", b"x")

    app.create("c", behavior=lonely, requires=["out"])
    # validation catches it before deployment
    rt = SmpSimRuntime()
    with pytest.raises(ConnectionError_, match="not connected"):
        rt.deploy(app)


def test_cache_observation_extension():
    """With caches enabled, OS-level reports include miss counters."""
    app = make_pipeline_app()
    rt = SmpSimRuntime(platform=make_smp16(with_caches=True))
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    cache = reports[("prod", OS_LEVEL)]["cache"]
    assert cache["misses"] > 0
    assert 0.0 <= cache["miss_rate"] <= 1.0


def test_message_latency_observed_end_to_end():
    """Middleware-level latency: a slow consumer sees queueing delay far
    above the raw transfer time."""
    from repro.core import Application, CONTROL, MIDDLEWARE_LEVEL

    app = Application("latency")

    def producer(ctx):
        for _ in range(10):
            yield from ctx.send("out", b"x" * 1000)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def slow_consumer(ctx):
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return
            yield from ctx.compute("ns", 5_000_000)

    app.create("prod", behavior=producer, requires=["out"])
    app.create("cons", behavior=slow_consumer, provides=["in"])
    app.connect("prod", "out", "cons", "in")
    app.attach_observer()
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    latency = reports[("cons", MIDDLEWARE_LEVEL)]["latency"]
    assert latency["count"] == 11
    # the 10th message waited behind ~9 x 5 ms of consumer work
    assert latency["max_ns"] > 30_000_000
    assert latency["min_ns"] >= 0
