"""Tests for the bench harness satellites: the perf-regression gate
and the multiprocess decode sharding.

The gate is tested against synthetic baselines with the kernel benches
stubbed out (the real benches are minutes-scale); the shard worker is
exercised directly to pin its contract -- regenerate-from-seed framing,
per-shard correctness gate, block accounting that the merge step sums.
"""

import json

import repro.bench as bench


def _fake_results(schedule_run_ns, tracer_emit_ns):
    return {
        "benches": {
            "schedule_run": {"ns_per_event": schedule_run_ns},
            "tracer_emit": {"ns_per_emit": tracer_emit_ns},
        }
    }


def _write_baseline(tmp_path):
    path = tmp_path / "BENCH_kernel.json"
    path.write_text(json.dumps(_fake_results(100.0, 200.0)))
    return str(path)


def test_check_passes_within_tolerance(tmp_path, monkeypatch, capsys):
    path = _write_baseline(tmp_path)
    # +24% on one figure, improvement on the other: both inside the gate
    monkeypatch.setattr(bench, "bench_kernel", lambda quick: _fake_results(124.0, 150.0))
    assert bench.check_regressions(quick=True, baseline_path=path)
    out = capsys.readouterr().out
    assert "check schedule_run" in out
    assert "REGRESSION" not in out


def test_check_fails_past_tolerance(tmp_path, monkeypatch, capsys):
    path = _write_baseline(tmp_path)
    # tracer_emit 30% over baseline must trip the 25% gate
    monkeypatch.setattr(bench, "bench_kernel", lambda quick: _fake_results(100.0, 260.0))
    assert not bench.check_regressions(quick=True, baseline_path=path)
    out = capsys.readouterr().out
    assert "REGRESSION" in out


def test_round_robin_shards_partition_all_frames():
    n_frames, n_shards = 8, 3
    shards = [list(range(s, n_frames, n_shards)) for s in range(n_shards)]
    seen = sorted(i for shard in shards for i in shard)
    assert seen == list(range(n_frames))


def test_decode_shard_worker_regenerates_and_times_its_slice():
    result = bench._decode_shard((2, True, [0]))
    assert set(result) == {"fast", "walk", "encode", "blocks"}
    assert result["blocks"] > 0
    assert result["fast"] > 0 and result["walk"] > 0 and result["encode"] > 0
    # two complementary shards account for every block exactly once
    other = bench._decode_shard((2, True, [1]))
    from repro.mjpeg import generate_stream

    stream = generate_stream(2, 96, 96, quality=75, seed=0)
    total = sum(r.frame.n_blocks for r in stream.records)
    assert result["blocks"] + other["blocks"] == total
