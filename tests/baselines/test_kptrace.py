"""Tests for the KPTrace-style kernel tracer baseline."""

import pytest

from repro.baselines import KPTrace
from repro.core import APPLICATION_LEVEL
from repro.runtime import SmpSimRuntime

from tests.runtime.conftest import make_pipeline_app


def traced_run(n_messages=5):
    app = make_pipeline_app(n_messages=n_messages)
    rt = SmpSimRuntime()
    rt.deploy(app)
    tracer = KPTrace(rt.system.engine).install()
    rt.start()
    rt.wait()
    reports = rt.collect()
    rt.stop()
    tracer.uninstall()
    return rt, tracer, reports


def test_records_scheduler_events():
    rt, tracer, _ = traced_run()
    assert tracer.event_count() > 0
    assert {"prod", "cons"} <= set(tracer.threads_seen())


def test_cpu_time_reconstruction_matches_engine():
    rt, tracer, _ = traced_run()
    reconstructed = tracer.cpu_time_by_thread()
    for name in ("prod", "cons"):
        actual = rt.containers[name].handle.cpu_time_ns
        assert reconstructed[name] == actual


def test_core_occupancy_sums_to_busy_time():
    rt, tracer, _ = traced_run()
    occupancy = tracer.core_occupancy()
    for core_idx, busy in occupancy.items():
        assert busy == rt.system.engine.cores[core_idx].busy_ns


def test_no_component_mapping_in_raw_events():
    """The baseline sees *threads* -- including infrastructure threads --
    with no notion of interfaces or messages: exactly the gap the paper
    motivates EMBera with."""
    rt, tracer, reports = traced_run()
    seen = set(tracer.threads_seen())
    # infrastructure (observation services) pollutes the thread view
    assert any(".obsvc" in t for t in seen)
    # and nothing in the records mentions messages, while EMBera counts them
    assert reports[("prod", APPLICATION_LEVEL)]["sends"] == 5
    assert not hasattr(tracer.records[0], "messages")


def test_event_volume_grows_with_run_length():
    """Low-level trace volume scales with execution length, while the
    EMBera summary stays at a fixed number of reports per component --
    the summarized-vs-detailed trade-off of the paper's conclusion."""
    from repro.core import Application, CONTROL

    def ping_pong_app(n):
        # Consumer faster than producer: it blocks on every message, so
        # the scheduler records transitions proportional to traffic.
        app = Application("pingpong")

        def producer(ctx):
            for i in range(n):
                yield from ctx.compute("huffman_block", 20)
                yield from ctx.send("out", b"x" * 64)
            yield from ctx.send("out", None, kind=CONTROL, tag="eos")

        def consumer(ctx):
            while True:
                msg = yield from ctx.receive("in")
                if msg.kind == CONTROL:
                    return

        app.create("prod", behavior=producer, requires=["out"])
        app.create("cons", behavior=consumer, provides=["in"])
        app.connect("prod", "out", "cons", "in")
        app.attach_observer()
        return app

    volumes = {}
    reports_counts = {}
    for n in (10, 100):
        app = ping_pong_app(n)
        rt = SmpSimRuntime()
        rt.deploy(app)
        tracer = KPTrace(rt.system.engine).install()
        rt.start()
        rt.wait()
        reports = rt.collect()
        rt.stop()
        volumes[n] = tracer.event_count()
        reports_counts[n] = len(reports)
    assert volumes[100] > 5 * volumes[10]
    assert reports_counts[10] == reports_counts[100]  # summary size is constant


def test_double_install_rejected():
    rt = SmpSimRuntime()
    tracer = KPTrace(rt.system.engine).install()
    with pytest.raises(RuntimeError, match="already installed"):
        tracer.install()
    tracer.uninstall()


def test_chained_hooks_preserved():
    rt = SmpSimRuntime()
    calls = []
    rt.system.engine.on_context_switch = lambda c, o, n: calls.append(1)
    tracer = KPTrace(rt.system.engine).install()
    app = make_pipeline_app()
    rt.deploy(app)
    rt.start()
    rt.wait()
    rt.stop()
    assert calls  # the pre-existing hook still fires
    assert tracer.event_count() > 0
