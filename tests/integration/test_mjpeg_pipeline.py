"""Integration tests: the componentized MJPEG decoder on every runtime.

These verify both *functional correctness* (decoded frames match the
single-threaded reference decoder bit-for-bit) and the *paper-shape*
properties of the observation data (counters, memory, balance).
"""

import numpy as np
import pytest

from repro.core import APPLICATION_LEVEL, OS_LEVEL
from repro.mjpeg import decode_image, generate_stream
from repro.mjpeg.components import build_smp_assembly, build_sti7200_assembly
from repro.runtime import NativeRuntime, SmpSimRuntime, Sti7200SimRuntime

N_IMAGES = 8  # small but exercises priming + multi-frame reassembly


@pytest.fixture(scope="module")
def stream():
    return generate_stream(N_IMAGES, 96, 96, quality=75, seed=42)


@pytest.fixture(scope="module")
def reference_frames(stream):
    return {
        r.index: decode_image(r.frame.payload, 96, 96, stream.quality) for r in stream
    }


def check_frames(frames, reference_frames):
    # frame 0 primes the decoder and is not dispatched
    assert sorted(frames) == list(range(1, N_IMAGES))
    for idx, img in frames.items():
        assert np.array_equal(img, reference_frames[idx]), f"frame {idx} differs"


def test_smp_sim_pipeline_decodes_correctly(stream, reference_frames):
    app = build_smp_assembly(stream, keep_frames=True)
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    check_frames(app.components["Reorder"].frames, reference_frames)
    # Table 2 structure: 18 * (N - 1) data messages
    expected = 18 * (N_IMAGES - 1)
    assert reports[("Fetch", APPLICATION_LEVEL)]["sends"] == expected
    assert reports[("Reorder", APPLICATION_LEVEL)]["receives"] == expected
    for i in (1, 2, 3):
        r = reports[(f"IDCT_{i}", APPLICATION_LEVEL)]
        assert r["sends"] == r["receives"] == expected // 3


def test_smp_sim_memory_matches_table1(stream):
    app = build_smp_assembly(stream)
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    assert reports[("Fetch", OS_LEVEL)]["memory_kb"] == 8392.0
    for i in (1, 2, 3):
        assert reports[(f"IDCT_{i}", OS_LEVEL)]["memory_kb"] == 10850.0
    assert reports[("Reorder", OS_LEVEL)]["memory_kb"] == 13308.0


def test_smp_sim_pipeline_balanced(stream):
    """The three parallel IDCTs balance the stages (Table 1 discussion)."""
    app = build_smp_assembly(stream)
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    times = {
        name: reports[(name, OS_LEVEL)]["exec_time_us"]
        for name in ("Fetch", "IDCT_1", "IDCT_2", "IDCT_3", "Reorder")
    }
    spread = max(times.values()) / min(times.values())
    assert spread < 1.35, times
    # Completion order: Fetch first, Reorder last (as in Table 1's rows)
    assert times["Fetch"] <= times["IDCT_1"] <= times["Reorder"]


def test_sti7200_pipeline_decodes_correctly(stream, reference_frames):
    app = build_sti7200_assembly(stream, keep_frames=True)
    rt = Sti7200SimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    check_frames(app.components["Fetch-Reorder"].frames, reference_frames)


def test_sti7200_memory_matches_table3(stream):
    app = build_sti7200_assembly(stream)
    rt = Sti7200SimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    assert reports[("Fetch-Reorder", OS_LEVEL)]["memory_kb"] == 110.0
    assert reports[("IDCT_1", OS_LEVEL)]["memory_kb"] == 85.0
    assert reports[("IDCT_2", OS_LEVEL)]["memory_kb"] == 85.0


def test_sti7200_fetch_reorder_dominates(stream):
    """Table 3 shape: the ST40 Fetch-Reorder task time is ~10x an IDCT's."""
    app = build_sti7200_assembly(stream)
    rt = Sti7200SimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    fr = reports[("Fetch-Reorder", OS_LEVEL)]["exec_time_us"]
    idct = reports[("IDCT_1", OS_LEVEL)]["exec_time_us"]
    assert 6 < fr / idct < 20, (fr, idct)


def test_native_pipeline_decodes_correctly(stream, reference_frames):
    app = build_smp_assembly(stream, keep_frames=True)
    rt = NativeRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    check_frames(app.components["Reorder"].frames, reference_frames)
    expected = 18 * (N_IMAGES - 1)
    assert reports[("Fetch", APPLICATION_LEVEL)]["sends"] == expected


def test_stored_coefficient_mode_identical_output(stream, reference_frames):
    """The cost-model-only Fetch path must decode identically."""
    app = build_smp_assembly(stream, use_stored_coefficients=True, keep_frames=True)
    rt = SmpSimRuntime()
    rt.run(app)
    rt.stop()
    check_frames(app.components["Reorder"].frames, reference_frames)


def test_stored_coefficient_mode_identical_sim_time(stream):
    """Charged costs are mode-independent: simulated time matches exactly."""
    spans = []
    for stored in (False, True):
        app = build_smp_assembly(stream, use_stored_coefficients=stored)
        rt = SmpSimRuntime()
        rt.run(app)
        rt.stop()
        spans.append(rt.makespan_ns)
    assert spans[0] == spans[1]


def test_exec_time_scales_linearly_with_images():
    """Twice the images -> about twice the execution time (Table 1)."""
    spans = {}
    for n in (6, 12):
        s = generate_stream(n, 96, 96, quality=75, seed=1)
        app = build_smp_assembly(s)
        rt = SmpSimRuntime()
        rt.run(app)
        rt.stop()
        spans[n] = rt.makespan_ns
    ratio = spans[12] / spans[6]
    assert 1.7 < ratio < 2.4, spans


def test_table2_counts_independent_of_content():
    """The Table 2 counts are structural: any seed/quality produces
    exactly 18*(N-1) regardless of image content."""
    from repro.core import APPLICATION_LEVEL

    for seed, quality in ((1, 30), (2, 95)):
        s = generate_stream(5, 96, 96, quality=quality, seed=seed)
        app = build_smp_assembly(s)
        rt = SmpSimRuntime()
        rt.run(app)
        reports = rt.collect()
        rt.stop()
        assert reports[("Fetch", APPLICATION_LEVEL)]["sends"] == 18 * 4


def test_fetch_reorder_middleware_share_on_sti7200(stream):
    """Analysis helper on the STi7200 run: communication is a small
    share of the ST40's busy time (compute dominates, as in Table 3)."""
    from repro.metrics.analysis import middleware_cost_share

    app = build_sti7200_assembly(stream, use_stored_coefficients=True)
    rt = Sti7200SimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    shares = middleware_cost_share(reports)
    assert 0.0 < shares["Fetch-Reorder"] < 0.2
