"""The shipped examples must actually run (guards against rot).

Each example is executed in a subprocess with a reduced workload where
the script accepts one; a non-zero exit or traceback fails the test.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", []),
    ("mjpeg_smp.py", ["6"]),
    ("mjpeg_sti7200.py", ["4"]),
    ("observer_midrun.py", []),
    ("trace_timeline.py", []),
    ("audio_filterbank.py", []),
    ("autoscale.py", []),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert "Traceback" not in result.stderr
