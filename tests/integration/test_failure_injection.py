"""Failure injection: how the system behaves when components misbehave."""

import numpy as np
import pytest

from repro.core import Application, CONTROL
from repro.mjpeg import generate_stream
from repro.mjpeg.components import build_smp_assembly
from repro.mjpeg.decoder import DecodeError
from repro.runtime import NativeRuntime, SmpSimRuntime
from repro.runtime.base import RuntimeError_


def crashing_idct_app(stream, crash_after):
    """An MJPEG assembly whose IDCT_2 dies after N batches."""
    app = build_smp_assembly(stream)
    idct2 = app.components["IDCT_2"]
    original = idct2.behavior

    def faulty(ctx):
        count = 0
        while True:
            msg = yield from ctx.receive("_fetchIdct2")
            if msg.kind == CONTROL:
                return
            count += 1
            if count > crash_after:
                raise RuntimeError("injected IDCT fault")
            from repro.mjpeg.decoder import idct_stage

            batch = msg.payload
            pixels = idct_stage(batch["coefs"])
            yield from ctx.compute("idct_block", pixels.shape[0])
            yield from ctx.send(
                "idctReorder",
                {"frame": batch["frame"], "batch": batch["batch"], "pixels": pixels},
            )

    idct2._behavior_fn = faulty
    idct2.behavior = lambda ctx: faulty(ctx)
    return app


def test_sim_component_crash_surfaces_original_exception():
    stream = generate_stream(6, 96, 96, seed=0)
    app = crashing_idct_app(stream, crash_after=3)
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(RuntimeError, match="injected IDCT fault"):
        rt.wait()


def test_native_component_crash_reported_with_component_name():
    stream = generate_stream(4, 96, 96, seed=0)
    app = crashing_idct_app(stream, crash_after=2)
    rt = NativeRuntime(receive_timeout_s=2.0, join_timeout_s=10.0)
    rt.deploy(app)
    rt.start()
    with pytest.raises(RuntimeError_) as err:
        rt.wait()
    assert "IDCT_2" in str(err.value) or "injected" in str(err.value)


def test_corrupted_bitstream_fails_loudly_not_silently():
    stream = generate_stream(4, 96, 96, seed=1)
    # truncate the payload of frame 2
    rec = stream[2]
    rec.frame.payload = rec.frame.payload[: len(rec.frame.payload) // 3]
    app = build_smp_assembly(stream)
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(DecodeError):
        rt.wait()


def test_missing_eos_reports_stuck_components():
    """A producer that forgets end-of-stream leaves consumers blocked;
    the runtime names them instead of hanging or lying."""
    app = Application("noeos")

    def producer(ctx):
        yield from ctx.send("out", b"only one")

    def consumer(ctx):
        while True:
            yield from ctx.receive("in")

    app.create("p", behavior=producer, requires=["out"])
    app.create("c", behavior=consumer, provides=["in"])
    app.connect("p", "out", "c", "in")
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(RuntimeError_, match="c"):
        rt.wait()


def test_reorder_detects_incomplete_frames():
    """If an IDCT drops a batch, Reorder raises on shutdown instead of
    silently emitting fewer frames."""
    stream = generate_stream(4, 96, 96, seed=2)
    app = build_smp_assembly(stream)
    idct1 = app.components["IDCT_1"]

    def dropping(ctx):
        from repro.mjpeg.decoder import idct_stage

        dropped = False
        while True:
            msg = yield from ctx.receive("_fetchIdct1")
            if msg.kind == CONTROL:
                yield from ctx.send("idctReorder", None, kind=CONTROL, tag="eos")
                return
            if not dropped:
                dropped = True
                continue  # swallow one batch
            batch = msg.payload
            pixels = idct_stage(batch["coefs"])
            yield from ctx.send(
                "idctReorder",
                {"frame": batch["frame"], "batch": batch["batch"], "pixels": pixels},
            )

    idct1.behavior = lambda ctx: dropping(ctx)
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(RuntimeError, match="incomplete frame"):
        rt.wait()


def test_observation_survives_component_failure():
    """Counters gathered before a crash remain queryable afterwards."""
    stream = generate_stream(6, 96, 96, seed=3)
    app = crashing_idct_app(stream, crash_after=3)
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    with pytest.raises(RuntimeError):
        rt.wait()
    probe = rt.probe("IDCT_2")
    assert probe.data_receives.value >= 3
    assert probe.report("application")["receives"] >= 3
    assert rt.probe("Fetch").data_sends.value > 0
