"""Extra MJPEG integration coverage: the merged Fetch-Reorder assembly on
the native runtime, STi7200 counters, and a wide-assembly stress test."""

import numpy as np
import pytest

from repro.core import APPLICATION_LEVEL, Application, CONTROL
from repro.mjpeg import decode_image, generate_stream
from repro.mjpeg.components import build_sti7200_assembly
from repro.runtime import NativeRuntime, SmpSimRuntime, Sti7200SimRuntime


def test_sti7200_assembly_runs_on_native_runtime():
    """The Figure 7 assembly is runtime-agnostic: the same components run
    on real threads (placement hints are simply ignored there)."""
    stream = generate_stream(5, 96, 96, quality=75, seed=31)
    app = build_sti7200_assembly(stream, keep_frames=True)
    rt = NativeRuntime()
    rt.run(app)
    rt.stop()
    fr = app.components["Fetch-Reorder"]
    ref = decode_image(stream[2].frame.payload, 96, 96, 75)
    assert np.array_equal(fr.frames[2], ref)


def test_sti7200_communication_counts_structural():
    """On the 2-IDCT deployment each IDCT gets 9 of the 18 batches."""
    n = 6
    stream = generate_stream(n, 96, 96, quality=75, seed=32)
    app = build_sti7200_assembly(stream)
    rt = Sti7200SimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    total = 18 * (n - 1)
    fr = reports[("Fetch-Reorder", APPLICATION_LEVEL)]
    assert fr["sends"] == total
    assert fr["receives"] == total
    assert fr["deposits"] == n - 1
    for i in (1, 2):
        idct = reports[(f"IDCT_{i}", APPLICATION_LEVEL)]
        assert idct["receives"] == idct["sends"] == total // 2


def test_wide_assembly_stress():
    """A 40-component scatter/gather assembly runs and conserves
    messages -- kernel and scheduler scale past the paper's 5."""
    n_workers = 38
    per_worker = 4
    app = Application("wide")

    def source(ctx):
        for w in range(n_workers):
            for m in range(per_worker):
                yield from ctx.send(f"w{w}", (w, m))
            yield from ctx.send(f"w{w}", None, kind=CONTROL, tag="eos")

    def worker(ctx):
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                yield from ctx.send("out", None, kind=CONTROL, tag="eos")
                return
            yield from ctx.compute("ns", 10_000)
            yield from ctx.send("out", msg.payload)

    def sink(ctx):
        eos = 0
        items = 0
        while eos < n_workers:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                eos += 1
            else:
                items += 1
        return items

    app.create("source", behavior=source, requires=[f"w{w}" for w in range(n_workers)])
    for w in range(n_workers):
        app.create(f"worker{w}", behavior=worker, provides=["in"], requires=["out"])
        app.connect("source", f"w{w}", f"worker{w}", "in")
    app.create("sink", behavior=sink, provides=["in"])
    for w in range(n_workers):
        app.connect(f"worker{w}", "out", "sink", "in")
    app.attach_observer()
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    assert rt.containers["sink"].handle.result == n_workers * per_worker
    total_sends = sum(
        reports[(c, APPLICATION_LEVEL)]["sends"] for c in app.components if c != "observer"
    )
    total_recvs = sum(
        reports[(c, APPLICATION_LEVEL)]["receives"] for c in app.components if c != "observer"
    )
    assert total_sends == total_recvs == 2 * n_workers * per_worker
