"""Runtime parity: the same application observed on all three runtimes.

The paper's portability claim is that the component model and its
observation are platform-independent while the numbers underneath are
platform-specific.  Concretely: application-level observation
(structure, counters) must be identical across runtimes; OS-level
numbers must differ in the platform-characteristic ways.
"""

import pytest

from repro.core import APPLICATION_LEVEL, OS_LEVEL
from repro.runtime import NativeRuntime, SmpSimRuntime, Sti7200SimRuntime

from tests.runtime.conftest import make_pipeline_app


def run_on(runtime_cls):
    app = make_pipeline_app(n_messages=12, payload_bytes=2_000)
    if runtime_cls is Sti7200SimRuntime:
        app.components["prod"].place(cpu=0)
        app.components["cons"].place(cpu=1)
    rt = runtime_cls()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    return reports


@pytest.fixture(scope="module")
def all_reports():
    return {
        cls.__name__: run_on(cls)
        for cls in (SmpSimRuntime, Sti7200SimRuntime, NativeRuntime)
    }


def test_application_level_identical_across_runtimes(all_reports):
    baselines = None
    for name, reports in all_reports.items():
        app_level = {
            comp: {
                "sends": reports[(comp, APPLICATION_LEVEL)]["sends"],
                "receives": reports[(comp, APPLICATION_LEVEL)]["receives"],
                "structure": reports[(comp, APPLICATION_LEVEL)]["structure"],
            }
            for comp in ("prod", "cons")
        }
        if baselines is None:
            baselines = app_level
        else:
            assert app_level == baselines, f"{name} diverges at application level"


def test_bytes_accounting_identical_across_runtimes(all_reports):
    values = {
        name: reports[("prod", APPLICATION_LEVEL)]["bytes_sent"]
        for name, reports in all_reports.items()
    }
    assert len(set(values.values())) == 1, values


def test_os_level_memory_semantics_differ_by_platform(all_reports):
    smp = all_reports["SmpSimRuntime"][("cons", OS_LEVEL)]
    sti = all_reports["Sti7200SimRuntime"][("cons", OS_LEVEL)]
    native = all_reports["NativeRuntime"][("cons", OS_LEVEL)]
    # Linux-style accounting: stack + mailbox structures (~10.6 MB)
    assert smp["memory_kb"] == native["memory_kb"] == pytest.approx(8392 + 2458)
    # OS21-style accounting: task data + distributed object (85 kB)
    assert sti["memory_kb"] == 85.0


def test_exec_time_semantics_differ_by_platform(all_reports):
    """Same workload: OS21 charges orders of magnitude more virtual time
    (slow cores), and native exec time is real host time (small)."""
    smp_us = all_reports["SmpSimRuntime"][("prod", OS_LEVEL)]["exec_time_us"]
    sti_us = all_reports["Sti7200SimRuntime"][("prod", OS_LEVEL)]["exec_time_us"]
    assert sti_us > 5 * smp_us
