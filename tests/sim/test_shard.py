"""Unit tests for the sharded conservative simulation layer.

Covers the kernel hooks the shard coordinator relies on
(``deadlock_check``, ``on_idle``, purge threshold re-derivation), the
partitioning helpers, span-id ranges, the envelope/mailbox/staging
machinery, and the coordinator itself (delivery-order invariance across
shard counts, deadlock semantics, cooperative vs parallel drivers).
"""

import threading

import pytest

from repro.sim import Kernel
from repro.sim.errors import DeadlockError
from repro.sim.mailbox import Envelope, Mailbox, Staging
from repro.sim.process import Process
from repro.sim.resources import Channel
from repro.sim.shard import (
    PROFILE_SCHEMA,
    SHARD_SPAN_BITS,
    Shard,
    ShardedSimulation,
    cut_edges,
    merge_shard_results,
    partition_graph,
    profile_weights,
    repartition_from_profile,
    round_robin_partition,
    shard_core_blocks,
    shard_span_source,
    span_shard,
)


# -- kernel hooks --------------------------------------------------------------


def _blocked_process(kernel):
    chan = Channel(kernel, name="never")

    def body():
        yield from chan.get()

    return Process(kernel, body(), name="blocked"), chan


def test_kernel_deadlock_check_default_raises():
    kernel = Kernel()
    _blocked_process(kernel)
    with pytest.raises(DeadlockError):
        kernel.run()


def test_kernel_deadlock_check_disabled_returns():
    kernel = Kernel()
    _blocked_process(kernel)
    kernel.deadlock_check = False
    kernel.run()  # idle is not an error: the coordinator decides
    assert kernel._live_processes == 1


def test_kernel_on_idle_can_refuel_the_run():
    kernel = Kernel()
    proc, chan = _blocked_process(kernel)
    fed = []

    def on_idle() -> bool:
        if fed:
            return False
        fed.append(True)
        chan.put("late arrival")
        return True

    kernel.on_idle = on_idle
    kernel.run()
    assert not proc._alive


def test_kernel_on_idle_false_falls_through_to_deadlock():
    kernel = Kernel()
    _blocked_process(kernel)
    kernel.on_idle = lambda: False
    with pytest.raises(DeadlockError):
        kernel.run()


def test_purge_rederives_ready_cap():
    """Regression: a purge that drops most of a bloated due run must
    re-derive the pressure threshold from the compacted population, not
    keep the geometrically backed-off one."""
    kernel = Kernel()
    noop = lambda: None  # noqa: E731
    # Dense same-timestamp inserts into the due window back the
    # threshold off geometrically without rebuilding.
    handles = [kernel.schedule(5, noop) for _ in range(5000)]
    assert kernel._ready_cap > 4096
    # Cancel nearly everything; compaction triggers repeatedly on the way.
    for handle in handles[:4990]:
        handle.cancel()
    assert kernel._n_cancelled < 64  # purges ran; only a sub-threshold tail left
    assert kernel._ready_cap == 512  # max(512, live << 1), re-derived by purge
    kernel.run()
    assert kernel.now == 5


# -- partitioning helpers ------------------------------------------------------


def test_round_robin_partition_matches_strided_ranges():
    # The exact split the decode bench used before the refactor.
    assert round_robin_partition(10, 3) == [
        list(range(0, 10, 3)),
        list(range(1, 10, 3)),
        list(range(2, 10, 3)),
    ]
    # More parts than items would silently yield empty buckets; callers
    # clamp (min(n_parts, n_items)) and the helper refuses otherwise.
    with pytest.raises(ValueError, match="empty part"):
        round_robin_partition(2, 4)
    with pytest.raises(ValueError):
        round_robin_partition(4, 0)


def test_merge_shard_results_sums_keys():
    merged = merge_shard_results(
        [{"a": 1, "b": 0.5, "c": "x"}, {"a": 2, "b": 0.25, "c": "y"}], ("a", "b")
    )
    assert merged == {"a": 3, "b": 0.75}


def test_shard_core_blocks_contiguous_and_balanced():
    assert shard_core_blocks(16, 4) == [
        [0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]
    ]
    assert shard_core_blocks(10, 3) == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
    with pytest.raises(ValueError):
        shard_core_blocks(2, 3)
    with pytest.raises(ValueError):
        shard_core_blocks(4, 0)


def test_partition_graph_balance_and_determinism():
    names = [f"c{i}" for i in range(8)]
    edges = [(f"c{i}", f"c{i + 1}") for i in range(7)]  # one chain
    first = partition_graph(names, edges, 2)
    assert first == partition_graph(names, edges, 2)  # deterministic
    sizes = [sum(1 for s in first.values() if s == k) for k in range(2)]
    assert sizes == [4, 4]
    # A chain split in two has exactly one cut edge.
    assert len(cut_edges(first, edges)) == 1


def test_partition_graph_affinity_wins():
    names = ["a", "b", "c", "d"]
    edges = [("a", "b"), ("b", "c"), ("c", "d")]
    assignment = partition_graph(names, edges, 2, affinity={"a": 1, "d": 0})
    assert assignment["a"] == 1
    assert assignment["d"] == 0


def test_partition_graph_rejects_bad_input():
    with pytest.raises(ValueError):
        partition_graph(["a", "a"], [], 2)
    with pytest.raises(ValueError):
        partition_graph(["a"], [("a", "zz")], 1)
    with pytest.raises(ValueError):
        partition_graph(["a"], [], 2, affinity={"a": 5})
    with pytest.raises(ValueError):
        partition_graph(["a"], [], 2, affinity={"zz": 0})


def test_partition_graph_rejects_more_shards_than_components():
    with pytest.raises(ValueError, match="empty shards"):
        partition_graph(["a", "b"], [], 3)


def test_partition_graph_deterministic_under_affinity_pins():
    names = [f"c{i}" for i in range(9)]
    edges = [(f"c{i}", f"c{i + 1}") for i in range(8)]
    affinity = {"c0": 2, "c8": 0}
    weights = {f"c{i}": float(i + 1) for i in range(9)}
    first = partition_graph(names, edges, 3, weights=weights, affinity=affinity)
    for _ in range(3):
        again = partition_graph(names, edges, 3, weights=weights, affinity=affinity)
        assert again == first
    assert first["c0"] == 2 and first["c8"] == 0
    sizes = [sum(1 for s in first.values() if s == k) for k in range(3)]
    assert all(n >= 1 for n in sizes)


def test_partition_graph_edge_weights_steer_expansion():
    # A hub with three spokes plus a detached pair: the heavy edge must
    # pull its endpoint into the hub's shard ahead of the light spokes.
    names = ["hub", "x", "y", "z", "m", "n"]
    edges = [("hub", "x"), ("hub", "y"), ("hub", "z"), ("m", "n")]
    heavy = partition_graph(names, edges, 2, edge_weights={("hub", "z"): 100.0})
    assert heavy["z"] == heavy["hub"]
    assert heavy == partition_graph(names, edges, 2, edge_weights={("hub", "z"): 100.0})
    with pytest.raises(ValueError):
        partition_graph(names, edges, 2, edge_weights={("hub", "nope"): 1.0})


def test_profile_weights_extracts_node_and_edge_weights():
    profile = {
        "schema": PROFILE_SCHEMA,
        "components": {
            "a": {"busy_ns": 3000, "events": 5},
            "b": 1000,
            "c": {"events": 2},
            "d": {},
        },
        "edges": [
            {"src": "a", "dst": "b", "messages": 7},
            {"src": "b", "dst": "a", "messages": 3},
        ],
    }
    node_w, edge_w = profile_weights(profile)
    assert node_w["a"] == 3000.0
    assert node_w["b"] == 1000.0
    assert node_w["c"] == 2.0  # busy_ns absent: falls back to events
    assert node_w["d"] == 1.0  # floors at 1.0
    assert edge_w[("a", "b")] == 7.0 and edge_w[("b", "a")] == 3.0
    with pytest.raises(ValueError, match="schema"):
        profile_weights({"schema": "nope", "components": {}})


def test_repartition_from_profile_balances_by_observed_load():
    # Two hot chain heads: unit-weight partitioning puts both halves of
    # the chain together; observed busy time forces the hot pair apart.
    names = ["hot1", "hot2", "cold1", "cold2"]
    edges = [("hot1", "hot2"), ("hot2", "cold1"), ("cold1", "cold2")]
    profile = {
        "schema": PROFILE_SCHEMA,
        "components": {
            "hot1": {"busy_ns": 100_000},
            "hot2": {"busy_ns": 100_000},
            "cold1": {"busy_ns": 10},
            "cold2": {"busy_ns": 10},
        },
        "edges": [{"src": "hot2", "dst": "cold1", "messages": 1}],
    }
    assignment = repartition_from_profile(names, edges, 2, profile)
    assert assignment["hot1"] != assignment["hot2"]
    # Unknown components in the profile are ignored, not an error.
    profile["components"]["ghost"] = {"busy_ns": 1}
    profile["edges"].append({"src": "ghost", "dst": "hot1", "messages": 5})
    assert repartition_from_profile(names, edges, 2, profile) == assignment
    pinned = repartition_from_profile(
        names, edges, 2, profile, affinity={"hot1": 1}
    )
    assert pinned["hot1"] == 1


# -- span-id ranges (shard-safe tracer ids) ------------------------------------


def test_shard_zero_span_range_is_bit_compatible():
    source = shard_span_source(0)
    assert [next(source) for _ in range(3)] == [1, 2, 3]


def test_span_sources_never_collide_across_shards():
    ids = []
    for shard in range(4):
        source = shard_span_source(shard)
        ids.extend(next(source) for _ in range(1000))
    assert len(set(ids)) == len(ids)


def test_span_shard_recovers_the_owner():
    for shard in (0, 1, 3, 7):
        source = shard_span_source(shard)
        assert span_shard(next(source)) == shard
    assert span_shard(123) == 0  # unsharded ids read as shard 0


def test_shard_span_source_rejects_negative_index():
    with pytest.raises(ValueError):
        shard_span_source(-1)


def test_span_bits_leave_room_for_real_traces():
    # 48 bits of per-shard sequence: a trace would need ~2.8e14 spans
    # per shard before ranges could touch.
    assert SHARD_SPAN_BITS >= 40


# -- envelopes / mailbox / staging ---------------------------------------------


def test_envelope_rejects_receive_before_send():
    with pytest.raises(ValueError):
        Envelope(5, 9, "a", "out", 0, lambda: None)


def test_mailbox_post_drain_roundtrip_threaded():
    mailbox = Mailbox()
    envs = [Envelope(i + 1, i, f"c{i % 4}", "out", i, lambda: None) for i in range(64)]
    threads = [
        threading.Thread(target=lambda sl=sl: [mailbox.post(e) for e in sl])
        for sl in (envs[:32], envs[32:])
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(mailbox) == 64
    drained = mailbox.drain()
    assert len(drained) == 64 and len(mailbox) == 0
    assert {e.seq for e in drained} == set(range(64))


def test_staging_releases_in_key_order_below_horizon():
    staging = Staging()
    order = []
    # Same receive time, distinct (send, src, iface, seq) tiebreakers,
    # pushed in scrambled order.
    scrambled = [
        Envelope(10, 4, "b", "out", 0, lambda: order.append("b4")),
        Envelope(10, 2, "a", "out", 1, lambda: order.append("a2.1")),
        Envelope(12, 0, "a", "out", 2, lambda: order.append("late")),
        Envelope(10, 2, "a", "out", 0, lambda: order.append("a2.0")),
        Envelope(10, 2, "a", "in", 5, lambda: order.append("a2.in")),
    ]
    for env in scrambled:
        staging.push(env)
    released = []
    staging.release_below(12, lambda _t, deliver: released.append(deliver))
    for deliver in released:
        deliver()
    # Key order: (recv, send, src, iface, seq); recv=12 stays staged.
    assert order == ["a2.in", "a2.0", "a2.1", "b4"]
    assert staging.min_recv_time() == 12
    assert len(staging) == 1


def test_push_many_matches_individual_pushes():
    envs = [
        Envelope(i % 7 + 1, 0, f"c{i % 3}", "out", i, lambda: None) for i in range(40)
    ]
    one, many = Staging(), Staging()
    for env in envs:
        one.push(env)
    assert many.push_many(envs) == 40
    released_one, released_many = [], []
    one.release_below(100, lambda t, cb: released_one.append((t, cb)))
    many.release_below(100, lambda t, cb: released_many.append((t, cb)))
    assert released_one == released_many  # same envelopes, same key order
    assert many.push_many([]) == 0


def test_release_batched_groups_by_recv_time_in_key_order():
    staging = Staging()
    order = []

    def mk(recv, send, src, seq, tag):
        return Envelope(recv, send, src, "out", seq, lambda: order.append(tag))

    for env in (
        mk(10, 2, "b", 0, "b0"),
        mk(10, 1, "a", 0, "a0"),
        mk(20, 3, "c", 1, "c1"),
        mk(10, 2, "b", 1, "b1"),
        mk(30, 0, "z", 0, "late"),
    ):
        staging.push(env)
    scheduled = []
    n = staging.release_batched(25, lambda t, cb: scheduled.append((t, cb)))
    assert n == 4
    # One callback per *distinct* receive time below the horizon.
    assert [t for t, _ in scheduled] == [10, 20]
    for _t, cb in scheduled:
        cb()
    assert order == ["a0", "b0", "b1", "c1"]  # key order inside the group
    assert staging.released == 4
    assert staging.batches == 2
    assert len(staging) == 1 and staging.min_recv_time() == 30


# -- coordinator ---------------------------------------------------------------


def _pipeline_run(n_shards: int, parallel: bool = False, batch: bool = True):
    """A 4-chain x 3-stage pipeline on the raw shard layer; returns the
    per-stage-component delivery log."""
    n_chains, n_stages = 4, 3
    link_ns, compute_ns = 100, 700
    shards = [Shard(i) for i in range(n_shards)]
    for shard in shards:
        shard.batch_release = batch
    sim = ShardedSimulation(shards)
    shard_of = {
        (c, s): (c + s) % n_shards for c in range(n_chains) for s in range(n_stages)
    }
    for c in range(n_chains):
        for s in range(n_stages - 1):
            sim.add_link(shard_of[(c, s)], shard_of[(c, s + 1)], link_ns)
    for k in range(n_shards):
        sim.add_link(k, k, compute_ns + link_ns)

    log = {(c, s): [] for c in range(n_chains) for s in range(n_stages)}

    def handler(c, s, item, t):
        me = shard_of[(c, s)]
        assert shards[me].kernel.now == t  # delivered exactly at recv time
        log[(c, s)].append((t, item))
        if s + 1 < n_stages:
            dst = shard_of[(c, s + 1)]
            send = t + compute_ns
            env = Envelope(
                send + link_ns, send, f"c{c}", f"s{s}", item,
                lambda: handler(c, s + 1, item, send + link_ns),
            )
            (shards[dst].stage if dst == me else shards[dst].post)(env)

    for c in range(n_chains):
        for item in range(5):
            t = (item + 1) * 400 + c * 7
            shards[shard_of[(c, 0)]].stage(
                Envelope(t, 0, "", f"c{c}", item, lambda c=c, i=item, t=t: handler(c, 0, i, t))
            )
    sweeps = sim.run_parallel() if parallel else sim.run()
    assert sweeps >= 1
    return log


def test_delivery_log_invariant_across_shard_counts():
    reference = _pipeline_run(1)
    assert all(len(v) == 5 for v in reference.values())
    for n_shards in (2, 3, 4):
        assert _pipeline_run(n_shards) == reference


def test_parallel_driver_matches_cooperative():
    assert _pipeline_run(4, parallel=True) == _pipeline_run(4, parallel=False)


def test_pipeline_batched_release_matches_per_envelope():
    """The batching tentpole's oracle on the pipeline harness:
    Shard.batch_release toggles between release_batched and the
    reference release_below; the delivery logs must be identical."""
    for n_shards in (1, 3):
        assert _pipeline_run(n_shards, batch=True) == _pipeline_run(n_shards, batch=False)


def _chaotic_run(n_shards: int, seed: int, batch: bool):
    """A message-storm workload with hash-derived (layout-invariant)
    routing and clustered timestamps, so batched release really forms
    multi-envelope groups.  Returns the per-component delivery log."""
    n_comp, n_msgs, hops = 10, 30, 3
    compute_ns, link_ns = 500, 100
    shards = [Shard(i) for i in range(n_shards)]
    for shard in shards:
        shard.batch_release = batch
    sim = ShardedSimulation(shards)
    for a in range(n_shards):
        for b in range(n_shards):
            sim.add_link(a, b, compute_ns + link_ns)
    shard_of = [i % n_shards for i in range(n_comp)]
    log = {i: [] for i in range(n_comp)}
    seqs = [0] * n_comp

    def handler(dst, src, seq, t, ttl):
        me = shard_of[dst]
        assert shards[me].kernel.now == t
        log[dst].append((t, src, seq))
        if ttl:
            nxt = (dst * 31 + seq * 17 + t + seed) % n_comp
            q = seqs[dst]
            seqs[dst] = q + 1
            send = t + compute_ns
            env = Envelope(
                send + link_ns, send, f"c{dst}", "out", q,
                lambda: handler(nxt, dst, q, send + link_ns, ttl - 1),
            )
            (shards[shard_of[nxt]].stage if shard_of[nxt] == me
             else shards[shard_of[nxt]].post)(env)

    for i in range(n_msgs):
        dst = (i * 7 + seed) % n_comp
        t = 1_000 * (i % 5 + 1)  # clustered entry times -> shared recv times
        shards[shard_of[dst]].stage(
            Envelope(t, 0, "src", f"m{i}", i,
                     lambda d=dst, i=i, t=t: handler(d, -1, i, t, hops))
        )
    sim.run()
    assert sum(len(v) for v in log.values()) == n_msgs * (hops + 1)
    return log


@pytest.mark.parametrize("seed", (1, 7, 42))
def test_batched_release_equivalent_to_per_envelope(seed):
    """Seeds 1/7/42 (the chaos-campaign set): batched and per-envelope
    release produce identical per-component delivery sequences, at every
    shard count, and both match across shard counts."""
    reference = _chaotic_run(1, seed, batch=True)
    for n_shards in (1, 2, 4):
        assert _chaotic_run(n_shards, seed, batch=True) == reference
        assert _chaotic_run(n_shards, seed, batch=False) == reference


def test_true_deadlock_is_reported_by_the_coordinator():
    shards = [Shard(0), Shard(1)]
    sim = ShardedSimulation(shards)
    sim.add_link(0, 1, 100)
    _blocked_process(shards[1].kernel)  # waits forever, nobody sends
    with pytest.raises(DeadlockError, match="process\\(es\\) still alive"):
        sim.run()


def test_idle_shard_with_pending_cross_shard_input_is_not_deadlocked():
    """The satellite-6 regression: shard 1 idles on a channel whose only
    producer lives on shard 0.  The mailbox drain must surface the
    cross-shard envelope before any deadlock verdict."""
    shards = [Shard(0), Shard(1)]
    sim = ShardedSimulation(shards)
    sim.add_link(0, 1, 100)

    chan = Channel(shards[1].kernel, name="cross")

    def consumer():
        msg = yield from chan.get()
        assert msg == "payload"

    proc = Process(shards[1].kernel, consumer(), name="consumer")
    # Shard 0 sends at t=50; shard 1 has nothing local at all.
    shards[1].post(Envelope(150, 50, "producer", "out", 0, lambda: chan.put("payload")))
    shards[0].kernel.schedule(50, lambda: None)
    sim.run()
    assert not proc._alive


def test_unlinked_shards_run_independently():
    # No links at all: two shards with staged work can make progress
    # (bounds are infinite), so this must still complete.
    shards = [Shard(0), Shard(1)]
    sim = ShardedSimulation(shards)
    hits = []
    shards[0].stage(Envelope(10, 0, "a", "out", 0, lambda: hits.append(0)))
    shards[1].stage(Envelope(20, 0, "b", "out", 0, lambda: hits.append(1)))
    sim.run()
    assert sorted(hits) == [0, 1]


def test_shards_must_be_indexed_in_order():
    with pytest.raises(ValueError):
        ShardedSimulation([Shard(1), Shard(0)])
    with pytest.raises(ValueError):
        ShardedSimulation([])


def test_quiescent_clocks_align_to_global_max():
    shards = [Shard(0), Shard(1)]
    sim = ShardedSimulation(shards)
    sim.add_link(0, 1, 100)
    shards[0].kernel.schedule(5_000, lambda: None)
    shards[1].kernel.schedule(7, lambda: None)
    sim.run()
    assert shards[0].kernel.now == shards[1].kernel.now == 5_000
