"""Property-based tests of kernel/channel/cache invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import CacheConfig, CacheSim
from repro.sim import Channel, Kernel, Process, Timeout
from repro.sim.rng import RngRegistry


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=60))
def test_kernel_fires_in_nondecreasing_time_order(delays):
    """Whatever the schedule, callbacks observe monotone time."""
    k = Kernel()
    seen = []
    for d in delays:
        k.schedule(d, lambda: seen.append(k.now))
    k.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
    assert k.now == max(delays)


@given(
    st.lists(st.integers(0, 1000), min_size=1, max_size=40),
    st.integers(1, 5),
)
def test_channel_preserves_fifo_order_property(put_delays, n_consumers):
    """Items come out in put order regardless of put timing and the
    number of competing consumers."""
    k = Kernel()
    ch = Channel(k)
    got = []

    def consumer():
        while True:
            item = yield from ch.get()
            if item is None:
                return
            got.append(item)

    # FIFO means *arrival* order: items put earlier come out earlier, and
    # equal-time puts keep their scheduling order (stable tie-break).
    items = list(range(len(put_delays)))
    arrival_order = [item for _, item in sorted(zip(put_delays, items), key=lambda p: p[0])]
    position = {item: i for i, item in enumerate(arrival_order)}
    per_consumer = [[] for _ in range(n_consumers)]

    def tagged_consumer(idx):
        while True:
            item = yield from ch.get()
            if item is None:
                return
            per_consumer[idx].append(item)
            got.append(item)

    for i in range(n_consumers):
        Process(k, tagged_consumer(i))
    for delay, item in zip(put_delays, items):
        k.schedule(delay, ch.put, item)
    stop_at = max(put_delays) + 1
    for _ in range(n_consumers):
        k.schedule(stop_at, ch.put, None)
    k.run()
    assert sorted(got) == items  # nothing lost, nothing duplicated
    if n_consumers == 1:
        assert per_consumer[0] == arrival_order
    for view in per_consumer:
        # each consumer sees a subsequence of the global arrival order
        positions = [position[item] for item in view]
        assert positions == sorted(positions)


@given(st.integers(0, 2**31), st.text(min_size=1, max_size=20))
def test_rng_streams_reproducible_and_independent(seed, name):
    a = RngRegistry(seed).stream(name).random(8)
    b = RngRegistry(seed).stream(name).random(8)
    assert np.array_equal(a, b)
    other = RngRegistry(seed).stream(name + "x").random(8)
    assert not np.array_equal(a, other)


class _ReferenceLru:
    """Oracle: per-set explicit LRU lists."""

    def __init__(self, sets, ways):
        self.sets = sets
        self.ways = ways
        self.state = [[] for _ in range(sets)]
        self.misses = 0

    def access(self, line):
        s = line % self.sets
        tag = line // self.sets
        lru = self.state[s]
        if tag in lru:
            lru.remove(tag)
            lru.append(tag)
        else:
            self.misses += 1
            if len(lru) >= self.ways:
                lru.pop(0)
            lru.append(tag)


@settings(max_examples=50)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
def test_cache_matches_reference_lru_model(lines):
    sets, ways, line_bytes = 4, 2, 64
    sim = CacheSim(CacheConfig(size_bytes=sets * ways * line_bytes, line_bytes=line_bytes, ways=ways))
    ref = _ReferenceLru(sets, ways)
    for line in lines:
        sim.access([line * line_bytes])
        ref.access(line)
    assert sim.stats.misses == ref.misses


@given(st.lists(st.tuples(st.integers(0, 5_000), st.integers(0, 3)), min_size=1, max_size=30))
def test_process_interleaving_deterministic_property(script):
    """Two identical kernels running identical process sets produce the
    same event trace -- the determinism contract."""

    def run_once():
        k = Kernel()
        log = []

        def body(tag, steps):
            for s in steps:
                yield Timeout(s)
                log.append((k.now, tag))

        for i, (base, extra) in enumerate(script):
            Process(k, body(i, [base, base + extra, 1]))
        k.run()
        return log

    assert run_once() == run_once()
