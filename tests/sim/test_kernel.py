"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Kernel
from repro.sim.errors import SchedulingError


def test_time_starts_at_zero():
    assert Kernel().now == 0


def test_schedule_and_run_advances_clock():
    k = Kernel()
    fired = []
    k.schedule(100, fired.append, "a")
    k.schedule(50, fired.append, "b")
    k.run()
    assert fired == ["b", "a"]
    assert k.now == 100


def test_same_time_events_fire_in_scheduling_order():
    k = Kernel()
    fired = []
    for i in range(10):
        k.schedule(5, fired.append, i)
    k.run()
    assert fired == list(range(10))


def test_schedule_at_absolute_time():
    k = Kernel()
    seen = []
    k.schedule_at(42, lambda: seen.append(k.now))
    k.run()
    assert seen == [42]


def test_negative_delay_rejected():
    k = Kernel()
    with pytest.raises(SchedulingError):
        k.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    k = Kernel()
    k.schedule(100, lambda: None)
    k.run()
    with pytest.raises(SchedulingError):
        k.schedule_at(50, lambda: None)


def test_cancel_prevents_firing():
    k = Kernel()
    fired = []
    h = k.schedule(10, fired.append, "x")
    h.cancel()
    k.run()
    assert fired == []
    assert k.now == 0 or k.now == 10  # cancelled events may or may not advance time
    assert k.pending() == 0


def test_run_until_stops_before_future_events():
    k = Kernel()
    fired = []
    k.schedule(10, fired.append, "early")
    k.schedule(1000, fired.append, "late")
    k.run(until=500)
    assert fired == ["early"]
    assert k.now == 500
    k.run()
    assert fired == ["early", "late"]


def test_run_max_events():
    k = Kernel()
    fired = []
    for i in range(5):
        k.schedule(i, fired.append, i)
    k.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_are_processed():
    k = Kernel()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            k.schedule(10, chain, n + 1)

    k.schedule(0, chain, 0)
    k.run()
    assert fired == [0, 1, 2, 3]
    assert k.now == 30


def test_peek_skips_cancelled():
    k = Kernel()
    h = k.schedule(5, lambda: None)
    k.schedule(9, lambda: None)
    h.cancel()
    assert k.peek() == 9


def test_events_executed_counter():
    k = Kernel()
    for i in range(7):
        k.schedule(i, lambda: None)
    k.run()
    assert k.events_executed == 7
