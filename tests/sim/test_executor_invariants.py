"""Executor invariants checked via the context-switch hook."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Kernel, Timeout
from repro.sim.executor import Compute, ExecEngine, PriorityPolicy, RoundRobinPolicy


class UnitCpu:
    def cost_ns(self, opclass, units):
        return int(units)


def build(n_cores, policy):
    k = Kernel()
    return k, ExecEngine(k, [UnitCpu() for _ in range(n_cores)], policy)


class SwitchAuditor:
    """Checks mutual exclusion per core and per thread from switch events."""

    def __init__(self, engine):
        self.core_busy = {}
        self.thread_on = {}
        self.violations = []
        engine.on_context_switch = self.on_switch

    def on_switch(self, core, old, new):
        if old is not None:
            if self.core_busy.get(core.index) is not old:
                self.violations.append(("core-mismatch", core.index, old.name))
            self.core_busy[core.index] = None
            self.thread_on.pop(old.name, None)
        if new is not None:
            if self.core_busy.get(core.index) is not None:
                self.violations.append(("core-double-book", core.index, new.name))
            if new.name in self.thread_on:
                self.violations.append(("thread-on-two-cores", new.name))
            self.core_busy[core.index] = new
            self.thread_on[new.name] = core.index


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 500), st.integers(0, 200), st.integers(0, 9)),
        min_size=1,
        max_size=12,
    ),
    st.integers(1, 4),
    st.booleans(),
)
def test_no_core_or_thread_double_booking(specs, n_cores, use_priority):
    policy = PriorityPolicy(quantum_ns=50) if use_priority else RoundRobinPolicy(quantum_ns=50)
    k, eng = build(n_cores, policy)
    auditor = SwitchAuditor(eng)

    def body(compute_ns, sleep_ns):
        yield Compute("op", compute_ns)
        if sleep_ns:
            yield Timeout(sleep_ns)
            yield Compute("op", compute_ns // 2)

    for i, (compute_ns, sleep_ns, prio) in enumerate(specs):
        eng.spawn(body(compute_ns, sleep_ns), name=f"t{i}", priority=prio)
    eng.shutdown()
    k.run()
    assert auditor.violations == []
    assert all(t.state == "DONE" for t in eng.threads)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(1, 1000), min_size=1, max_size=10),
    st.integers(1, 3),
)
def test_cpu_time_conservation(compute_times, n_cores):
    """Sum of per-thread CPU time == sum of per-core busy time, and each
    thread is charged exactly what it asked for."""
    k, eng = build(n_cores, RoundRobinPolicy(quantum_ns=64))
    threads = []

    def body(ns):
        yield Compute("op", ns)

    for i, ns in enumerate(compute_times):
        threads.append(eng.spawn(body(ns), name=f"t{i}"))
    eng.shutdown()
    k.run()
    for t, ns in zip(threads, compute_times):
        assert t.cpu_time_ns == ns
    assert sum(t.cpu_time_ns for t in threads) == sum(c.busy_ns for c in eng.cores)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(1, 300), min_size=2, max_size=8))
def test_makespan_bounds(compute_times):
    """Single core: makespan == total work.  The scheduler may neither
    lose nor invent time."""
    k, eng = build(1, RoundRobinPolicy(quantum_ns=37))
    for i, ns in enumerate(compute_times):
        def body(n=ns):
            yield Compute("op", n)
        eng.spawn(body(), name=f"t{i}")
    eng.shutdown()
    k.run()
    assert k.now == sum(compute_times)
