"""Property test for conservative lookahead (satellite of the sharding PR).

For seeded random workloads, every cross-shard message must satisfy

    receive time >= sender clock + link latency

where the link latency is the declared lookahead of the (src, dst)
shard pair.  The test also checks the two delivery-side halves of the
contract: an envelope's deliver callback runs exactly at its receive
time, and no shard's clock ever has to move backwards (a violation
raises ``SimulationError`` inside :meth:`Shard.run_until`, failing the
test by exception).
"""

import random

import pytest

from repro.sim.mailbox import Envelope
from repro.sim.shard import Shard, ShardedSimulation

SEEDS = [1, 7, 42]


@pytest.mark.parametrize("seed", SEEDS)
def test_cross_shard_receive_respects_lookahead(seed):
    rng = random.Random(seed)
    n_shards = rng.choice([2, 3, 4])
    shards = [Shard(i) for i in range(n_shards)]
    sim = ShardedSimulation(shards)

    # Random per-pair latencies; the declared link *is* the lookahead.
    latency = {}
    for src in range(n_shards):
        for dst in range(n_shards):
            latency[(src, dst)] = rng.randrange(50, 301)
            sim.add_link(src, dst, latency[(src, dst)])

    # Record every staged/posted envelope through the shard hook.  The
    # sender's shard index is encoded in env.src by construction below.
    records = []

    def hook_for(dst):
        def hook(env, cross):
            records.append((dst, env, cross))

        return hook

    for i, shard in enumerate(shards):
        shard.on_envelope = hook_for(i)

    seq = iter(range(10**9))
    delivered = []

    def forward(me, hops, t):
        # Deliver exactly at the receive time, on the owning kernel.
        assert shards[me].kernel.now == t
        delivered.append((me, t))
        if hops == 0:
            return
        dst = rng.randrange(n_shards)
        send = t  # sender clock at the moment of sending
        recv = send + latency[(me, dst)]
        env = Envelope(
            recv, send, f"s{me}", "out", next(seq),
            lambda: forward(dst, hops - 1, recv),
        )
        (shards[dst].stage if dst == me else shards[dst].post)(env)

    n_msgs = 60
    for m in range(n_msgs):
        me = m % n_shards
        t = rng.randrange(1, 2_000)
        hops = rng.randrange(1, 8)
        shards[me].stage(
            Envelope(t, 0, "seed", "in", m, lambda me=me, h=hops, t=t: forward(me, h, t))
        )

    sim.run()  # a lookahead violation raises SimulationError in run_until

    forwarded = [(dst, env, cross) for dst, env, cross in records if env.src != "seed"]
    assert forwarded, "workload generated no forwarded messages"
    assert any(cross for _, _, cross in forwarded), "no cross-shard traffic"
    for dst, env, _cross in forwarded:
        src = int(env.src[1:])
        assert env.recv_time >= env.send_time + latency[(src, dst)], (
            f"envelope {env.src}->shard{dst} recv {env.recv_time} undercuts "
            f"sender clock {env.send_time} + lookahead {latency[(src, dst)]}"
        )
    # Everything injected was eventually delivered.
    assert len(delivered) == n_msgs + len(forwarded)
