"""Reference model for the kernel property suite: the pre-calendar
binary-heap kernel, kept verbatim (minus hot-path pooling tweaks that
do not affect observable order).

The calendar-queue kernel in ``repro.sim.kernel`` must be
observationally equivalent to this implementation: identical
``(time, seq)`` dispatch order, identical final clocks, identical
``pending()`` counts and ``DeadlockError`` behaviour.  The property
tests in ``test_kernel_properties.py`` drive both kernels through
randomized schedule/cancel/call_soon/run-until interleavings and
compare traces event by event.

``schedule_timer`` is aliased to ``schedule`` here: the timer wheel is
purely an optimisation path, so a wheel-parked timer must dispatch
exactly as if it had gone through the ordinary queue.
"""

from __future__ import annotations

import heapq
import sys
from collections import deque
from typing import Any, Callable, Optional

from repro.sim.errors import DeadlockError, SchedulingError

_COMPACT_MIN = 64
_POOL_MAX = 512


class ReferenceEventHandle:
    """Cancellable handle for a scheduled callback (heap reference)."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_kernel", "_queued", "_in_heap")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        kernel: Optional["ReferenceKernel"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._kernel = kernel
        self._queued = kernel is not None
        self._in_heap = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        kernel = self._kernel
        if kernel is not None and self._queued:
            kernel._alive -= 1
            if self._in_heap:
                kernel._n_cancelled += 1
                if (
                    kernel._n_cancelled >= _COMPACT_MIN
                    and kernel._n_cancelled * 2 >= len(kernel._heap)
                ):
                    kernel._compact()

    def __lt__(self, other: "ReferenceEventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ReferenceEventHandle t={self.time} seq={self.seq} {state}>"


class ReferenceKernel:
    """Binary-heap discrete-event kernel: the oracle for the calendar."""

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._heap: list[ReferenceEventHandle] = []
        self._imm: deque[ReferenceEventHandle] = deque()
        self._live_processes: int = 0
        self.events_executed: int = 0
        self._alive: int = 0
        self._n_cancelled: int = 0
        self._pool: list[ReferenceEventHandle] = []

    @property
    def now(self) -> int:
        return self._now

    def schedule(self, delay_ns: int, callback: Callable[..., None], *args: Any):
        if delay_ns < 0:
            raise SchedulingError(f"negative delay: {delay_ns}")
        return self.schedule_at(self._now + int(delay_ns), callback, *args)

    def schedule_at(self, time_ns: int, callback: Callable[..., None], *args: Any):
        if time_ns < self._now:
            raise SchedulingError(f"cannot schedule in the past: {time_ns} < {self._now}")
        handle = self._new_handle(int(time_ns), callback, args)
        handle._in_heap = True
        heapq.heappush(self._heap, handle)
        return handle

    # The timer wheel is an optimisation, not a semantic: a deadline
    # timer must order exactly like an ordinary scheduled event.
    schedule_timer = schedule

    def call_soon(self, callback: Callable[..., None], *args: Any):
        handle = self._new_handle(self._now, callback, args)
        self._imm.append(handle)
        return handle

    def _new_handle(self, time_ns: int, callback: Callable[..., None], args: tuple):
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = time_ns
            handle.seq = self._seq
            handle.callback = callback
            handle.args = args
            handle.cancelled = False
            handle._queued = True
            handle._in_heap = False
        else:
            handle = ReferenceEventHandle(time_ns, self._seq, callback, args, self)
        self._seq += 1
        self._alive += 1
        return handle

    def _discard(self, handle) -> None:
        handle._queued = False
        handle.callback = None
        handle.args = ()
        if len(self._pool) < _POOL_MAX and sys.getrefcount(handle) <= 3:
            self._pool.append(handle)

    def _compact(self) -> None:
        heap = self._heap
        live = [h for h in heap if not h.cancelled]
        removed = len(heap) - len(live)
        if not removed:
            return
        for h in heap:
            if h.cancelled:
                h._queued = False
                h.callback = None
                h.args = ()
        self._n_cancelled -= removed
        heapq.heapify(live)
        self._heap = live

    def _prune_heads(self) -> None:
        imm = self._imm
        while imm and imm[0].cancelled:
            self._discard(imm.popleft())
        heap = self._heap
        while heap and heap[0].cancelled:
            self._n_cancelled -= 1
            self._discard(heapq.heappop(heap))

    def pending(self) -> int:
        return self._alive

    def peek(self) -> Optional[int]:
        self._prune_heads()
        imm, heap = self._imm, self._heap
        if imm:
            if heap and (heap[0].time, heap[0].seq) < (imm[0].time, imm[0].seq):
                return heap[0].time
            return imm[0].time
        return heap[0].time if heap else None

    def step(self) -> bool:
        self._prune_heads()
        imm, heap = self._imm, self._heap
        if imm:
            head = imm[0]
            if heap and (heap[0].time, heap[0].seq) < (head.time, head.seq):
                handle = heapq.heappop(heap)
            else:
                handle = imm.popleft()
        elif heap:
            handle = heapq.heappop(heap)
        else:
            return False
        self._now = handle.time
        self.events_executed += 1
        self._alive -= 1
        handle._queued = False
        callback = handle.callback
        args = handle.args
        callback(*args)
        self._discard(handle)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            nxt = self.peek()
            if nxt is None:
                if self._live_processes > 0:
                    raise DeadlockError(
                        f"no pending events but {self._live_processes} process(es) still alive"
                    )
                break
            if until is not None and nxt > until:
                self._now = until
                break
            self.step()
            executed += 1
        return self._now
