"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Event, Kernel, Process, Timeout, WaitEvent
from repro.sim.errors import SimulationError


def run_proc(body, **kw):
    k = Kernel()
    p = Process(k, body(k) if callable(body) else body, **kw)
    k.run()
    return k, p


def test_process_advances_time_with_timeout():
    def body(k):
        yield Timeout(100)
        yield Timeout(50)

    k, p = run_proc(body)
    assert k.now == 150
    assert not p.alive


def test_process_result_is_return_value():
    def body(k):
        yield Timeout(1)
        return "answer"

    _, p = run_proc(body)
    assert p.done.triggered
    assert p.result == "answer"


def test_wait_event_receives_trigger_value():
    k = Kernel()
    ev = Event(k)
    got = []

    def waiter():
        value = yield WaitEvent(ev)
        got.append(value)

    Process(k, waiter())
    k.schedule(500, ev.trigger, "payload")
    k.run()
    assert got == ["payload"]
    assert k.now == 500


def test_wait_on_already_triggered_event_resumes_immediately():
    k = Kernel()
    ev = Event(k)
    ev.trigger(7)
    got = []

    def waiter():
        got.append((yield WaitEvent(ev)))

    Process(k, waiter())
    k.run()
    assert got == [7]
    assert k.now == 0


def test_multiple_waiters_resume_in_wait_order():
    k = Kernel()
    ev = Event(k)
    order = []

    def waiter(tag):
        yield WaitEvent(ev)
        order.append(tag)

    for tag in "abc":
        Process(k, waiter(tag))
    k.schedule(10, ev.trigger)
    k.run()
    assert order == ["a", "b", "c"]


def test_yield_from_composes_subbehaviours():
    def sub():
        yield Timeout(10)
        return 5

    def body(k):
        x = yield from sub()
        yield Timeout(x)
        return x * 2

    k, p = run_proc(body)
    assert k.now == 15
    assert p.result == 10


def test_exception_in_process_propagates_from_run():
    def body(k):
        yield Timeout(1)
        raise ValueError("boom")

    k = Kernel()
    Process(k, body(k))
    with pytest.raises(ValueError, match="boom"):
        k.run()


def test_on_error_handler_captures_exception():
    captured = []

    def body(k):
        yield Timeout(1)
        raise ValueError("boom")

    k = Kernel()
    Process(k, body(k), on_error=lambda p, e: captured.append(str(e)))
    k.run()
    assert captured == ["boom"]


def test_kill_terminates_process():
    progressed = []

    def body():
        yield Timeout(100)
        progressed.append("should not happen")

    k = Kernel()
    p = Process(k, body())
    k.schedule(10, p.kill)
    k.run()
    assert progressed == []
    assert not p.alive
    assert p.done.triggered


def test_yielding_garbage_is_an_error():
    def body(k):
        yield 42  # not a Command

    k = Kernel()
    Process(k, body(k))
    with pytest.raises(SimulationError, match="non-command"):
        k.run()


def test_non_generator_body_rejected():
    k = Kernel()
    with pytest.raises(SimulationError):
        Process(k, lambda: None)


def test_start_delay():
    ts = []

    def body(k):
        ts.append(k.now)
        yield Timeout(0)

    k = Kernel()
    Process(k, body(k), start_delay_ns=25)
    k.run()
    assert ts == [25]


def test_processes_interleave_deterministically():
    log = []

    def body(k, tag, step):
        for _ in range(3):
            yield Timeout(step)
            log.append((k.now, tag))

    k = Kernel()
    Process(k, body(k, "a", 10))
    Process(k, body(k, "b", 15))
    k.run()
    # At t=30 both resume; b's wakeup was scheduled first (at t=15 vs t=20),
    # so FIFO tie-breaking puts b ahead of a.
    assert log == [(10, "a"), (15, "b"), (20, "a"), (30, "b"), (30, "a"), (45, "b")]
