"""Unit tests for semaphores, mutexes and FIFO channels."""

import pytest

from repro.sim import Channel, Kernel, Mutex, Process, Semaphore, Timeout
from repro.sim.errors import DeadlockError, SimulationError


def test_semaphore_fast_path_does_not_block():
    k = Kernel()
    sem = Semaphore(k, value=2)
    acquired = []

    def body():
        yield from sem.acquire()
        acquired.append(k.now)

    Process(k, body())
    Process(k, body())
    k.run()
    assert acquired == [0, 0]
    assert sem.value == 0


def test_semaphore_blocks_and_wakes_fifo():
    k = Kernel()
    sem = Semaphore(k, value=1)
    order = []

    def holder():
        yield from sem.acquire()
        yield Timeout(100)
        sem.release()

    def waiter(tag):
        yield from sem.acquire()
        order.append((tag, k.now))
        sem.release()

    Process(k, holder())
    Process(k, waiter("first"), start_delay_ns=1)
    Process(k, waiter("second"), start_delay_ns=2)
    k.run()
    assert order == [("first", 100), ("second", 100)]


def test_semaphore_try_acquire():
    k = Kernel()
    sem = Semaphore(k, value=1)
    assert sem.try_acquire()
    assert not sem.try_acquire()
    sem.release()
    assert sem.try_acquire()


def test_semaphore_negative_initial_rejected():
    with pytest.raises(SimulationError):
        Semaphore(Kernel(), value=-1)


def test_mutex_double_release_rejected():
    k = Kernel()
    m = Mutex(k)
    assert m.try_acquire()
    m.release()
    with pytest.raises(SimulationError):
        m.release()


def test_channel_put_then_get():
    k = Kernel()
    ch = Channel(k)
    got = []

    def consumer():
        got.append((yield from ch.get()))
        got.append((yield from ch.get()))

    ch.put("x")
    ch.put("y")
    Process(k, consumer())
    k.run()
    assert got == ["x", "y"]


def test_channel_get_blocks_until_put():
    k = Kernel()
    ch = Channel(k)
    got = []

    def consumer():
        got.append(((yield from ch.get()), k.now))

    Process(k, consumer())
    k.schedule(77, ch.put, "late")
    k.run()
    assert got == [("late", 77)]


def test_channel_fifo_order_across_waiters():
    k = Kernel()
    ch = Channel(k)
    got = []

    def consumer(tag):
        item = yield from ch.get()
        got.append((tag, item))

    Process(k, consumer("c1"))
    Process(k, consumer("c2"), start_delay_ns=1)
    k.schedule(10, ch.put, "a")
    k.schedule(20, ch.put, "b")
    k.run()
    assert got == [("c1", "a"), ("c2", "b")]


def test_bounded_channel_put_raises_when_full():
    k = Kernel()
    ch = Channel(k, capacity=1)
    ch.put(1)
    with pytest.raises(SimulationError, match="full"):
        ch.put(2)


def test_bounded_channel_put_blocking_waits_for_space():
    k = Kernel()
    ch = Channel(k, capacity=1)
    done = []

    def producer():
        yield from ch.put_blocking("a")
        yield from ch.put_blocking("b")
        done.append(k.now)

    def consumer():
        yield Timeout(50)
        item = yield from ch.get()
        assert item == "a"
        yield Timeout(50)
        item = yield from ch.get()
        assert item == "b"

    Process(k, producer())
    Process(k, consumer())
    k.run()
    assert done == [50]


def test_channel_try_get():
    k = Kernel()
    ch = Channel(k)
    assert ch.try_get() == (False, None)
    ch.put(9)
    assert ch.try_get() == (True, 9)


def test_channel_counters():
    k = Kernel()
    ch = Channel(k)
    ch.put(1)
    ch.put(2)

    def consumer():
        yield from ch.get()

    Process(k, consumer())
    k.run()
    assert ch.total_put == 2
    assert ch.total_got == 1
    assert len(ch) == 1


def test_deadlock_detection():
    k = Kernel()
    ch = Channel(k)

    def starved():
        yield from ch.get()

    Process(k, starved())
    with pytest.raises(DeadlockError):
        k.run()


def test_invalid_capacity_rejected():
    with pytest.raises(SimulationError):
        Channel(Kernel(), capacity=0)
