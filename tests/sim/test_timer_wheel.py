"""Targeted tests for the ``schedule_timer`` wheel path.

The wheel is an optimization, not a semantic: timers must obey the
exact ``(time, seq)`` ordering contract of :meth:`Kernel.schedule`,
while cancel-before-fire (the dominant receive-deadline pattern) must
stay off the calendar entirely -- no tombstones, no compaction.
"""

from repro.sim.kernel import Kernel


def test_timer_shares_ordering_domain_with_schedule():
    kernel = Kernel()
    log = []
    # same instant, interleaved across all three insert paths: FIFO by
    # scheduling order must hold regardless of which queue each rides
    kernel.schedule(100, log.append, "s0")
    kernel.schedule_timer(100, log.append, "t0")
    kernel.schedule(100, log.append, "s1")
    kernel.schedule_timer(100, log.append, "t1")
    kernel.run()
    assert log == ["s0", "t0", "s1", "t1"]
    assert kernel.now == 100


def test_cancelled_timer_never_fires_and_never_tombstones():
    kernel = Kernel()
    fired = []
    handles = [kernel.schedule_timer(5_000, fired.append, i) for i in range(200)]
    keeper = kernel.schedule(7_000, fired.append, "keeper")
    for h in handles:
        h.cancel()
    assert kernel.pending() == 1
    # wheel cancels must not count as calendar tombstones (no compaction
    # pressure from deadline churn)
    assert kernel._n_cancelled == 0
    kernel.run()
    assert fired == ["keeper"]
    assert not keeper.cancelled


def test_timer_beyond_wheel_horizon_falls_back_to_calendar():
    kernel = Kernel()
    log = []
    kernel.schedule_timer(10, log.append, "anchor")  # narrow slot width
    # far beyond the 256-slot horizon of the freshly anchored wheel
    kernel.schedule_timer(10_000_000, log.append, "far")
    kernel.schedule(5_000, log.append, "mid")
    kernel.run()
    assert log == ["anchor", "mid", "far"]
    assert kernel.now == 10_000_000


def test_wheel_reanchors_to_new_timescale_after_draining():
    kernel = Kernel()
    log = []
    kernel.schedule_timer(50, log.append, ("fine", 50))
    kernel.run()
    # wheel is empty again: a much coarser timer must re-anchor cleanly
    kernel.schedule_timer(1_000_000, lambda: log.append(("coarse", kernel.now)))
    kernel.run()
    assert log == [("fine", 50), ("coarse", 1_000_050)]


def test_timer_cancel_interleaved_with_regular_events():
    kernel = Kernel()
    log = []

    def deliver(i):
        log.append(("deliver", i, kernel.now))
        if pending_timers:
            pending_timers.pop().cancel()

    pending_timers = []
    for i in range(50):
        pending_timers.append(kernel.schedule_timer(10_000, log.append, ("timeout", i)))
        kernel.schedule(100 * (i + 1), deliver, i)
    kernel.run()
    delivered = [e for e in log if e[0] == "deliver"]
    timeouts = [e for e in log if e[0] == "timeout"]
    assert len(delivered) == 50
    # each delivery cancelled one deadline; none should have fired
    assert timeouts == []
    assert kernel.pending() == 0
