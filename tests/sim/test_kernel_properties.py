"""Property tests: the calendar-queue kernel vs the heap reference model.

Each seed generates one randomized command script -- schedule bursts at
tie-heavy / medium / far-future delays, ``schedule_at``, ``call_soon``,
deadline timers, mass cancels, partial ``run(until=...)`` and
``run(max_events=...)`` phases, plus reentrant callbacks that schedule
more work from inside the dispatch loop.  The script is replayed
verbatim on both kernels and the observable traces must be identical:
every dispatched ``(time, tag)`` in order, every ``peek``/``pending``
observation, the final clock and the executed-event count.

Tags are unique per scheduled event, so trace equality pins the exact
``(time, seq)`` dispatch order, including FIFO tie-breaks across the
immediate queue, the calendar buckets, the far-future spill and the
timer wheel.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.kernel import Kernel

from reference_kernel import ReferenceKernel

SEEDS = [1, 7, 42]

# Delay palettes chosen to land in every calendar structure: dense ties
# (due-run insorts), bucket-scale gaps, and far-future spill/migration.
_TIE_DELAYS = (0, 1, 2, 3, 5, 8)
_MED_MAX = 50_000
_FAR_MAX = 2_000_000_000


def _gen_script(seed: int, n_ops: int = 900) -> list[tuple]:
    """Generate a command script; pure data so both kernels replay it."""
    rng = random.Random(seed)
    script: list[tuple] = []
    tag = 0
    for _ in range(n_ops):
        r = rng.random()
        if r < 0.30:
            delay = rng.choice(_TIE_DELAYS) if rng.random() < 0.5 else rng.randrange(_MED_MAX)
            script.append(("schedule", delay, tag))
            tag += 1
        elif r < 0.38:
            script.append(("schedule_far", rng.randrange(_MED_MAX, _FAR_MAX), tag))
            tag += 1
        elif r < 0.46:
            script.append(("schedule_at", rng.randrange(_MED_MAX), tag))
            tag += 1
        elif r < 0.54:
            script.append(("call_soon", tag))
            tag += 1
        elif r < 0.66:
            # Deadline-timer churn: most of these get cancelled below.
            script.append(("timer", rng.randrange(1, _MED_MAX), tag))
            tag += 1
        elif r < 0.74:
            script.append(("cancel", rng.randrange(1 << 30)))
        elif r < 0.78:
            script.append(("mass_cancel", rng.randrange(1 << 30)))
        elif r < 0.84:
            script.append(("burst", rng.randrange(40, 160), rng.randrange(_MED_MAX), tag))
            tag += 1000  # reserve a tag block for the burst
        elif r < 0.90:
            script.append(("run_until", rng.randrange(1, _MED_MAX)))
        elif r < 0.96:
            script.append(("run_some", rng.randrange(1, 200)))
        else:
            script.append(("observe",))
    script.append(("run_all",))
    return script


class _Driver:
    """Replays a script against one kernel, recording every observable."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.trace: list[tuple] = []
        self.handles: list = []  # live handles, same order on both kernels
        self.spawn_budget = 300

    def _cb(self, tag: int):
        kernel = self.kernel
        trace = self.trace

        def fire():
            trace.append(("fire", kernel.now, tag))
            # Reentrant scheduling: callbacks add more work, derived
            # deterministically from the tag so both kernels agree.
            if tag % 7 == 0 and self.spawn_budget > 0:
                self.spawn_budget -= 1
                kernel.schedule((tag * 31) % 1009, self._cb(tag + 1_000_000))
                if tag % 14 == 0:
                    kernel.call_soon(self._cb(tag + 2_000_000))

        return fire

    def replay(self, script: list[tuple]) -> None:
        kernel = self.kernel
        handles = self.handles
        for cmd in script:
            op = cmd[0]
            if op == "schedule" or op == "schedule_far":
                handles.append(kernel.schedule(cmd[1], self._cb(cmd[2])))
            elif op == "schedule_at":
                handles.append(kernel.schedule_at(kernel.now + cmd[1], self._cb(cmd[2])))
            elif op == "call_soon":
                handles.append(kernel.call_soon(self._cb(cmd[1])))
            elif op == "timer":
                handles.append(kernel.schedule_timer(cmd[1], self._cb(cmd[2])))
            elif op == "cancel":
                if handles:
                    handles.pop(cmd[1] % len(handles)).cancel()
            elif op == "mass_cancel":
                if len(handles) > 4:
                    start = cmd[1] % len(handles)
                    doomed = handles[start::2]
                    del handles[start::2]
                    for h in doomed:
                        h.cancel()
            elif op == "burst":
                n, base_delay, base_tag = cmd[1], cmd[2], cmd[3]
                for i in range(n):
                    handles.append(
                        kernel.schedule((base_delay + i * 17) % _MED_MAX, self._cb(base_tag + i))
                    )
            elif op == "run_until":
                t = kernel.run(until=kernel.now + cmd[1])
                self.trace.append(("ran_until", t))
            elif op == "run_some":
                t = kernel.run(max_events=cmd[1])
                self.trace.append(("ran_some", t, kernel.events_executed))
            elif op == "observe":
                self.trace.append(("observe", kernel.peek(), kernel.pending(), kernel.now))
            elif op == "run_all":
                t = kernel.run()
                self.trace.append(("ran_all", t))


@pytest.mark.parametrize("seed", SEEDS)
def test_calendar_matches_heap_reference(seed):
    script = _gen_script(seed)
    cal = _Driver(Kernel())
    ref = _Driver(ReferenceKernel())
    cal.replay(script)
    ref.replay(script)

    assert len(cal.trace) == len(ref.trace)
    for i, (got, want) in enumerate(zip(cal.trace, ref.trace)):
        assert got == want, f"seed {seed}: trace diverges at index {i}: {got} != {want}"
    assert cal.kernel.now == ref.kernel.now
    assert cal.kernel.events_executed == ref.kernel.events_executed
    assert cal.kernel.pending() == ref.kernel.pending() == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_dispatch_times_monotone(seed):
    """Sanity on the calendar itself: fire times never go backwards."""
    script = _gen_script(seed, n_ops=400)
    cal = _Driver(Kernel())
    cal.replay(script)
    fires = [e for e in cal.trace if e[0] == "fire"]
    assert fires, "script dispatched nothing"
    times = [e[1] for e in fires]
    assert times == sorted(times)


@pytest.mark.parametrize("seed", SEEDS)
def test_tie_break_is_fifo(seed):
    """All-ties workload: dispatch order must equal scheduling order
    across schedule / call_soon / timer inserts at one instant."""
    rng = random.Random(seed)
    kernel = Kernel()
    order: list[int] = []
    expected: list[int] = []
    for tag in range(500):
        expected.append(tag)
        kind = rng.random()
        if kind < 0.4:
            kernel.schedule(0, order.append, tag)
        elif kind < 0.7:
            kernel.call_soon(order.append, tag)
        else:
            kernel.schedule_timer(0, order.append, tag)
    kernel.run()
    assert order == expected
