"""Determinism and fast-path tests for the event kernel.

The kernel's ordering contract -- fire by (time, scheduling order),
regardless of which internal queue an event rides -- must survive the
O(1) ``pending`` counter, the immediate-queue ``call_soon`` fast path,
calendar-queue compaction, the timer wheel and handle pooling.
"""

import random

from repro.sim.kernel import Kernel


def test_equal_timestamp_fifo_across_call_soon_and_schedule():
    kernel = Kernel()
    log = []
    # interleave the two zero-delay paths; FIFO must hold across both
    kernel.schedule(0, log.append, "s0")
    kernel.call_soon(log.append, "c0")
    kernel.schedule(0, log.append, "s1")
    kernel.call_soon(log.append, "c1")
    kernel.schedule(5, log.append, "later")
    kernel.call_soon(log.append, "c2")
    kernel.run()
    assert log == ["s0", "c0", "s1", "c1", "c2", "later"]


def test_call_soon_from_callback_runs_at_current_time():
    kernel = Kernel()
    log = []

    def outer():
        log.append(("outer", kernel.now))
        kernel.call_soon(lambda: log.append(("inner", kernel.now)))

    kernel.schedule(10, outer)
    kernel.schedule(10, log.append, ("peer", 10))
    kernel.run()
    # the nested call_soon fires after the already-queued same-time peer
    assert log == [("outer", 10), ("peer", 10), ("inner", 10)]


def test_pending_is_exact_through_cancels_and_compaction():
    kernel = Kernel()
    noop = lambda: None  # noqa: E731
    handles = [kernel.schedule(i + 1, noop) for i in range(500)]
    assert kernel.pending() == 500
    for handle in handles[100:]:
        handle.cancel()
    assert kernel.pending() == 100
    # double-cancel must not decrement twice
    handles[100].cancel()
    handles[499].cancel()
    assert kernel.pending() == 100
    executed = kernel.run()
    assert executed == 100
    assert kernel.events_executed == 100
    assert kernel.pending() == 0


def test_compaction_preserves_order():
    kernel = Kernel()
    log = []
    rng = random.Random(99)
    handles = []
    for i in range(400):
        t = rng.randrange(1, 50)
        handles.append(kernel.schedule(t, log.append, (t, i)))
    cancelled = set(rng.sample(range(400), 300))
    for i in cancelled:
        handles[i].cancel()  # enough dead entries to trigger compaction
    kernel.run()
    expected = [
        (t, i) for (t, i) in sorted(
            (h.time, i) for i, h in enumerate(handles) if i not in cancelled
        )
    ]
    assert log == expected


def test_run_until_between_events():
    kernel = Kernel()
    log = []
    kernel.schedule(10, log.append, "a")
    kernel.schedule(20, log.append, "b")
    kernel.run(until=15)
    assert log == ["a"]
    assert kernel.now == 15
    assert kernel.pending() == 1
    kernel.run()
    assert log == ["a", "b"]
    assert kernel.now == 20


def _seeded_workload(kernel, seed):
    """A self-rescheduling workload driven by a seeded RNG; returns the
    fire log."""
    rng = random.Random(seed)
    log = []

    def fire(label, depth):
        log.append((kernel.now, label))
        if depth > 0:
            for j in range(rng.randrange(0, 3)):
                child = f"{label}.{j}"
                if rng.random() < 0.3:
                    kernel.call_soon(fire, child, depth - 1)
                else:
                    kernel.schedule(rng.randrange(0, 7), fire, child, depth - 1)
            if rng.random() < 0.2:
                handle = kernel.schedule(rng.randrange(1, 5), fire, label + ".x", 0)
                handle.cancel()

    for i in range(30):
        kernel.schedule(rng.randrange(0, 20), fire, f"root{i}", 3)
    kernel.run()
    return log


def test_seeded_workload_is_deterministic():
    k1, k2 = Kernel(), Kernel()
    log1 = _seeded_workload(k1, seed=2024)
    log2 = _seeded_workload(k2, seed=2024)
    assert log1 == log2
    assert k1.events_executed == k2.events_executed
    assert k1.now == k2.now
    # timestamps never regress
    times = [t for t, _ in log1]
    assert times == sorted(times)


def test_cancel_after_fire_is_noop_even_with_pooling():
    kernel = Kernel()
    log = []
    first = kernel.schedule(1, log.append, "first")
    kernel.run()
    assert log == ["first"]
    # the fired handle may have been recycled internally; cancelling the
    # caller's reference must not disturb later events
    first.cancel()
    first.cancel()
    kernel.schedule(2, log.append, "second")
    kernel.call_soon(log.append, "soon")
    assert kernel.pending() == 2
    kernel.run()
    assert log == ["first", "soon", "second"]
    assert kernel.pending() == 0


def test_handle_pool_reuse_keeps_results_correct():
    kernel = Kernel()
    fired = []
    # schedule/run repeatedly so discarded handles cycle through the pool
    for round_no in range(20):
        for i in range(50):
            kernel.schedule(i % 5, fired.append, (round_no, i))
        kernel.run()
    assert len(fired) == 20 * 50
    # each round fires its own events in (time, scheduling order)
    for round_no in range(20):
        chunk = [item for item in fired if item[0] == round_no]
        assert chunk == sorted(chunk, key=lambda item: (item[1] % 5, item[1]))
