"""Unit tests for the CPU execution engine and scheduling policies."""

import pytest

from repro.sim import Channel, Event, Kernel, Timeout, WaitEvent
from repro.sim.executor import (
    Compute,
    ExecEngine,
    PriorityPolicy,
    RoundRobinPolicy,
    YieldCpu,
)


class UnitCpu:
    """1 unit of any opclass costs 1 ns."""

    def cost_ns(self, opclass, units):
        return int(units)


def make_engine(n_cores=1, policy=None):
    k = Kernel()
    engine = ExecEngine(k, [UnitCpu() for _ in range(n_cores)], policy or RoundRobinPolicy())
    return k, engine


def drain(k, engine):
    k.run()


def test_single_thread_compute_advances_time_and_charges_cpu():
    k, eng = make_engine()

    def body():
        yield Compute("op", 1000)

    t = eng.spawn(body(), name="t")
    eng.shutdown()
    k.run()
    assert t.state == "DONE"
    assert t.cpu_time_ns == 1000
    assert k.now == 1000
    assert t.wall_time_ns() == 1000


def test_two_threads_one_core_serialize():
    k, eng = make_engine(n_cores=1)

    def body():
        yield Compute("op", 100)

    t1 = eng.spawn(body(), name="t1")
    t2 = eng.spawn(body(), name="t2")
    eng.shutdown()
    k.run()
    assert k.now == 200
    assert t1.cpu_time_ns == 100 and t2.cpu_time_ns == 100


def test_two_threads_two_cores_run_in_parallel():
    k, eng = make_engine(n_cores=2)

    def body():
        yield Compute("op", 100)

    eng.spawn(body())
    eng.spawn(body())
    eng.shutdown()
    k.run()
    assert k.now == 100


def test_round_robin_interleaves_on_quantum():
    k = Kernel()
    eng = ExecEngine(k, [UnitCpu()], RoundRobinPolicy(quantum_ns=10))
    finish = {}

    def body(tag):
        yield Compute("op", 20)
        finish[tag] = k.now

    eng.spawn(body("a"), name="a")
    eng.spawn(body("b"), name="b")
    eng.shutdown()
    k.run()
    # With 10ns quanta the two 20ns jobs interleave: both finish near 40ns,
    # rather than a finishing at 20 and b at 40.
    assert finish["a"] == 30
    assert finish["b"] == 40


def test_thread_sleep_releases_cpu():
    k, eng = make_engine(n_cores=1)
    log = []

    def sleeper():
        yield Timeout(1000)
        log.append(("sleeper", k.now))

    def worker():
        yield Compute("op", 100)
        log.append(("worker", k.now))

    eng.spawn(sleeper(), name="s")
    eng.spawn(worker(), name="w")
    eng.shutdown()
    k.run()
    assert log == [("worker", 100), ("sleeper", 1000)]


def test_thread_blocks_on_event_and_receives_value():
    k, eng = make_engine()
    ev = Event(k)
    got = []

    def waiter():
        value = yield WaitEvent(ev)
        got.append(value)

    eng.spawn(waiter())
    k.schedule(500, ev.trigger, "data")
    eng.shutdown()
    k.run()
    assert got == ["data"]


def test_channel_works_inside_threads():
    k, eng = make_engine(n_cores=2)
    ch = Channel(k)
    got = []

    def producer():
        yield Compute("op", 10)
        ch.put("m")

    def consumer():
        item = yield from ch.get()
        got.append((item, k.now))

    eng.spawn(consumer())
    eng.spawn(producer())
    eng.shutdown()
    k.run()
    assert got == [("m", 10)]


def test_priority_preemption():
    k = Kernel()
    eng = ExecEngine(k, [UnitCpu()], PriorityPolicy(quantum_ns=1_000_000))
    log = []

    def low():
        yield Compute("op", 1000)
        log.append(("low-done", k.now))

    def high():
        yield Compute("op", 100)
        log.append(("high-done", k.now))

    eng.spawn(low(), name="low", priority=1)

    def launch_high():
        eng.spawn(high(), name="high", priority=10)

    k.schedule(200, launch_high)
    eng.shutdown()
    k.run()
    # High preempts low at t=200, runs 100ns, low resumes and finishes at 1100.
    assert log == [("high-done", 300), ("low-done", 1100)]


def test_priority_equal_no_preempt():
    k = Kernel()
    eng = ExecEngine(k, [UnitCpu()], PriorityPolicy(quantum_ns=1_000_000))
    log = []

    def body(tag, n):
        yield Compute("op", n)
        log.append(tag)

    eng.spawn(body("first", 100), priority=5)
    eng.spawn(body("second", 100), priority=5)
    eng.shutdown()
    k.run()
    assert log == ["first", "second"]


def test_affinity_restricts_core():
    k, eng = make_engine(n_cores=2)

    def body():
        yield Compute("op", 100)

    t1 = eng.spawn(body(), affinity=[1])
    t2 = eng.spawn(body(), affinity=[1])
    eng.shutdown()
    k.run()
    # Both pinned to core 1: serialized.
    assert k.now == 200
    assert eng.cores[0].busy_ns == 0
    assert eng.cores[1].busy_ns == 200


def test_affinity_no_matching_core_rejected():
    from repro.sim.errors import SimulationError

    k, eng = make_engine(n_cores=1)
    with pytest.raises(SimulationError):
        eng.spawn((x for x in []), affinity=[5])


def test_yield_cpu_round_robins():
    k, eng = make_engine(n_cores=1)
    log = []

    def body(tag):
        log.append((tag, 1))
        yield YieldCpu()
        log.append((tag, 2))

    eng.spawn(body("a"))
    eng.spawn(body("b"))
    eng.shutdown()
    k.run()
    assert log == [("a", 1), ("b", 1), ("a", 2), ("b", 2)]


def test_thread_exception_propagates():
    k, eng = make_engine()

    def body():
        yield Compute("op", 10)
        raise RuntimeError("task crashed")

    eng.spawn(body())
    eng.shutdown()
    with pytest.raises(RuntimeError, match="task crashed"):
        k.run()


def test_heterogeneous_cores_charge_differently():
    class SlowCpu:
        def cost_ns(self, opclass, units):
            return int(units) * 10

    k = Kernel()
    eng = ExecEngine(k, [UnitCpu(), SlowCpu()], RoundRobinPolicy())

    def body():
        yield Compute("op", 100)

    fast = eng.spawn(body(), affinity=[0])
    slow = eng.spawn(body(), affinity=[1])
    eng.shutdown()
    k.run()
    assert fast.cpu_time_ns == 100
    assert slow.cpu_time_ns == 1000


def test_core_utilization():
    k, eng = make_engine(n_cores=2)

    def body():
        yield Compute("op", 100)

    eng.spawn(body(), affinity=[0])
    eng.shutdown()
    k.run()
    assert eng.cores[0].utilization(k.now) == 1.0
    assert eng.cores[1].utilization(k.now) == 0.0


def test_context_switch_hook():
    k, eng = make_engine(n_cores=1)
    switches = []
    eng.on_context_switch = lambda core, old, new: switches.append(
        (core.index, old.name if old else None, new.name if new else None)
    )

    def body():
        yield Compute("op", 10)

    eng.spawn(body(), name="t1")
    eng.shutdown()
    k.run()
    assert (0, None, "t1") in switches
    assert (0, "t1", None) in switches
