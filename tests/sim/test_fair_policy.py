"""Tests for the CFS-flavoured fair scheduling policy."""

import pytest

from repro.sim import Kernel
from repro.sim.errors import SimulationError
from repro.sim.executor import Compute, ExecEngine, FairPolicy


class UnitCpu:
    def cost_ns(self, opclass, units):
        return int(units)


def build(n_cores=1, quantum=100, step=2.0):
    k = Kernel()
    return k, ExecEngine(k, [UnitCpu() for _ in range(n_cores)], FairPolicy(quantum, step))


def spawn_spinner(eng, name, priority, total):
    def body():
        yield Compute("op", total)

    return eng.spawn(body(), name=name, priority=priority)


def test_equal_priority_shares_equally():
    k, eng = build(quantum=100)
    a = spawn_spinner(eng, "a", 0, 100_000)
    b = spawn_spinner(eng, "b", 0, 100_000)
    eng.shutdown()
    k.run(until=50_000)
    # halfway through, both have ~equal CPU time
    assert a.cpu_time_ns == pytest.approx(b.cpu_time_ns, rel=0.05)


def test_weighted_share_follows_priority():
    """Priority +1 at weight_step=2 doubles the entitled share."""
    k, eng = build(quantum=100, step=2.0)
    low = spawn_spinner(eng, "low", 0, 10_000_000)
    high = spawn_spinner(eng, "high", 1, 10_000_000)
    eng.shutdown()
    k.run(until=30_000)
    ratio = high.cpu_time_ns / low.cpu_time_ns
    assert 1.7 < ratio < 2.4, ratio


def test_three_way_weighted_shares():
    k, eng = build(quantum=50, step=2.0)
    threads = [spawn_spinner(eng, f"t{p}", p, 10_000_000) for p in (0, 1, 2)]
    eng.shutdown()
    k.run(until=70_000)
    t0, t1, t2 = (t.cpu_time_ns for t in threads)
    assert t1 / t0 == pytest.approx(2.0, rel=0.25)
    assert t2 / t0 == pytest.approx(4.0, rel=0.25)


def test_work_conservation():
    k, eng = build(quantum=64)
    for i in range(5):
        spawn_spinner(eng, f"t{i}", i % 2, 1_000)
    eng.shutdown()
    k.run()
    assert k.now == 5_000
    assert all(t.state == "DONE" for t in eng.threads)


def test_late_arrival_catches_up():
    """A thread spawned later has zero vruntime and is favoured until it
    catches up -- the CFS newcomer behaviour."""
    k, eng = build(quantum=100)
    early = spawn_spinner(eng, "early", 0, 1_000_000)

    late = {}

    def spawn_late():
        late["t"] = spawn_spinner(eng, "late", 0, 1_000_000)

    k.schedule(10_000, spawn_late)
    eng.shutdown()
    k.run(until=16_000)
    # in the 6k ns after arrival the latecomer ran nearly exclusively
    assert late["t"].cpu_time_ns > 5_000


def test_invalid_weight_step_rejected():
    with pytest.raises(SimulationError):
        FairPolicy(weight_step=0)


def test_linux_system_fair_scheduler_option():
    from repro.hw import make_smp16
    from repro.oslinux import LinuxSystem

    k = Kernel()
    sys_ = LinuxSystem(k, make_smp16(), scheduler="fair")
    proc = sys_.spawn_process("app")
    done = []

    def worker():
        yield Compute("ns", 1000)
        done.append(1)

    proc.pthread_create(worker())
    sys_.shutdown()
    k.run()
    assert done == [1]
    with pytest.raises(ValueError, match="unknown scheduler"):
        LinuxSystem(Kernel(), make_smp16(), scheduler="bogus")
