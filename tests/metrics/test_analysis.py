"""Tests for cross-component report analysis."""

import pytest

from repro.core import APPLICATION_LEVEL, MIDDLEWARE_LEVEL, OS_LEVEL
from repro.metrics.analysis import (
    communication_matrix,
    conservation_check,
    load_balance,
    middleware_cost_share,
    pipeline_throughput,
    summarize,
)
from repro.mjpeg import generate_stream
from repro.mjpeg.components import build_smp_assembly
from repro.runtime import SmpSimRuntime


def synthetic_reports():
    return {
        ("a", OS_LEVEL): {"cpu_time_us": 100},
        ("b", OS_LEVEL): {"cpu_time_us": 300},
        ("a", APPLICATION_LEVEL): {"sends": 10, "receives": 0, "bytes_sent": 500,
                                   "bytes_received": 0, "deposits": 0},
        ("b", APPLICATION_LEVEL): {"sends": 0, "receives": 10, "bytes_sent": 0,
                                   "bytes_received": 500, "deposits": 5},
        ("a", MIDDLEWARE_LEVEL): {"send": {"total_ns": 20_000}, "receive": {"total_ns": 0}},
        ("b", MIDDLEWARE_LEVEL): {"send": {"total_ns": 0}, "receive": {"total_ns": 150_000}},
    }


def test_load_balance_identifies_bottleneck():
    report = load_balance(synthetic_reports())
    assert report.bottleneck == "b"
    assert report.imbalance == pytest.approx(1.5)
    assert not report.balanced


def test_load_balance_requires_os_reports():
    with pytest.raises(ValueError, match="no OS-level"):
        load_balance({})


def test_communication_matrix_and_conservation():
    matrix = communication_matrix(synthetic_reports())
    assert matrix["a"]["sends"] == 10
    assert conservation_check(synthetic_reports()) == (10, 10)


def test_middleware_cost_share():
    shares = middleware_cost_share(synthetic_reports())
    assert shares["a"] == pytest.approx(0.2)
    assert shares["b"] == pytest.approx(0.5)


def test_pipeline_throughput():
    tp = pipeline_throughput(synthetic_reports(), makespan_ns=1_000_000_000)
    assert tp == pytest.approx(5.0)
    assert pipeline_throughput({}, makespan_ns=100) is None
    with pytest.raises(ValueError):
        pipeline_throughput(synthetic_reports(), makespan_ns=0)


def test_summarize_combines_everything():
    s = summarize(synthetic_reports(), makespan_ns=1_000_000_000)
    assert s["bottleneck"] == "b"
    assert s["messages_conserved"]
    assert s["throughput_per_s"] == pytest.approx(5.0)


def test_analysis_on_real_mjpeg_run():
    """The paper's 4.4 reading, mechanised: the SMP assembly with three
    IDCTs is well load-balanced and conserves all messages."""
    stream = generate_stream(10, 96, 96, quality=75, seed=9)
    app = build_smp_assembly(stream, use_stored_coefficients=True)
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    s = summarize(reports, makespan_ns=rt.makespan_ns)
    assert s["balanced"], s
    assert s["messages_conserved"]
    assert s["throughput_per_s"] == pytest.approx(
        9 / (rt.makespan_ns / 1e9), rel=0.01
    )


def test_analysis_detects_idct_bottleneck_with_fewer_idcts():
    """...and with a single IDCT the bottleneck moves there, exactly the
    risk the paper predicts for changed input sizes."""
    stream = generate_stream(8, 96, 96, quality=75, seed=9)
    app = build_smp_assembly(stream, n_idct=1, use_stored_coefficients=True)
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    balance = load_balance(reports)
    assert balance.bottleneck == "IDCT_1"
    assert not balance.balanced
