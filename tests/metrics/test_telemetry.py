"""The live telemetry plane: histograms, windows, shard-exact merge.

Three families of guarantees pinned here:

- percentile math on the log2 streaming histogram (bucket boundaries,
  empty / single-sample / constant streams, interpolation clamped to
  the tracked min/max);
- the windowed delta series on the sim clock (deltas land in the
  window they were observed in, gauges stay out of windows) and the
  ``clear()`` / fresh-registry parity contract (repeated campaigns in
  one process must number and fill windows identically);
- the shard-merge property: per-shard histograms merged bucketwise are
  *bucket-exact* equal to the single-kernel run under pinned placement
  (seeds 1 / 7 / 42), the ``metrics sha256`` CI oracle in test form.
"""

import pytest

from repro.metrics.export import metrics_digest
from repro.metrics.telemetry import (
    DEFAULT_WINDOW_NS,
    Log2Histogram,
    MetricsRegistry,
    N_BUCKETS,
    bucket_bounds,
    bucket_of,
    instrument_id,
    merge_registries,
)
from repro.mjpeg import generate_stream
from repro.mjpeg.components import build_smp_assembly
from repro.runtime import ShardedSmpSimRuntime


# -- buckets -----------------------------------------------------------------


def test_bucket_of_boundaries():
    assert bucket_of(0) == 0
    assert bucket_of(-5) == 0  # negatives clamp into the zero bucket
    assert bucket_of(1) == 1
    assert bucket_of(2) == 2
    assert bucket_of(3) == 2
    assert bucket_of(4) == 3
    for k in range(1, 62):
        assert bucket_of(1 << k) == k + 1
        assert bucket_of((1 << k) - 1) == k
    assert bucket_of(1 << 200) == N_BUCKETS - 1  # huge samples saturate


def test_bucket_bounds_tile_the_integers():
    assert bucket_bounds(0) == (0, 0)
    prev_hi = 0
    for b in range(1, 20):
        lo, hi = bucket_bounds(b)
        assert lo == prev_hi + 1, f"gap before bucket {b}"
        assert lo <= hi
        assert bucket_of(lo) == b and bucket_of(hi) == b
        prev_hi = hi


# -- percentile math ---------------------------------------------------------


def test_empty_histogram_reports_zero():
    h = Log2Histogram("empty")
    assert h.percentile(0.5) == 0.0
    assert h.quantiles() == {"p50_ns": 0.0, "p90_ns": 0.0, "p99_ns": 0.0, "p999_ns": 0.0}


def test_single_sample_is_exact_at_every_quantile():
    h = Log2Histogram()
    h.observe(700)  # interior of bucket [512, 1023]
    for q in (0.5, 0.9, 0.99, 0.999):
        assert h.percentile(q) == 700.0  # clamped to min == max == sample


def test_constant_stream_is_exact():
    h = Log2Histogram()
    for _ in range(1000):
        h.observe(12_345)
    assert h.percentile(0.5) == 12_345.0
    assert h.percentile(0.999) == 12_345.0


def test_interpolation_clamps_to_min_and_max():
    h = Log2Histogram()
    h.observe(512)   # both land in bucket [512, 1023]
    h.observe(1000)
    # raw interpolation would leave the [512, 1000] hull at the edges
    assert h.percentile(0.001) >= 512.0
    assert h.percentile(0.999) <= 1000.0
    assert h.min_value == 512 and h.max_value == 1000


def test_quantile_keys_match_snapshot():
    h = Log2Histogram()
    h.observe(8)
    snap = h.snapshot()
    for key in ("p50_ns", "p90_ns", "p99_ns", "p999_ns"):
        assert key in snap
    assert snap["count"] == 1 and snap["total_ns"] == 8
    assert snap["min_ns"] == 8 and snap["max_ns"] == 8


def test_percentile_is_monotone_in_q():
    h = Log2Histogram()
    for v in (1, 3, 9, 80, 700, 6_000, 50_000):
        h.observe(v)
    qs = [h.percentile(q) for q in (0.1, 0.5, 0.9, 0.99, 0.999)]
    assert qs == sorted(qs)


# -- merge -------------------------------------------------------------------


def test_histogram_merge_is_bucketwise_exact():
    a, b, whole = Log2Histogram(), Log2Histogram(), Log2Histogram()
    for i, v in enumerate((0, 1, 5, 900, 3, 70_000, 2, 2)):
        (a if i % 2 else b).observe(v)
        whole.observe(v)
    a.merge(b)
    assert a.state() == whole.state()
    assert a.min_value == whole.min_value
    assert a.max_value == whole.max_value
    assert a.quantiles() == whole.quantiles()


def test_merge_empty_histogram_is_identity():
    a = Log2Histogram()
    a.observe(42)
    before = a.state()
    a.merge(Log2Histogram())
    assert a.state() == before


# -- the windowed series -----------------------------------------------------


def test_window_deltas_land_where_observed():
    reg = MetricsRegistry(window_ns=1_000)
    h = reg.histogram("lat_ns", component="c")
    n = reg.counter("msgs_total", component="c")
    reg.advance(100)
    h.observe(5)
    n.inc()
    reg.advance(1_500)  # closes window 0
    h.observe(9)
    reg.finish(1_600)   # closes window 1 (final, partial)

    assert [w.index for w in reg.windows] == [0, 1]
    w0, w1 = reg.windows
    hid = instrument_id("lat_ns", {"component": "c"})
    cid = instrument_id("msgs_total", {"component": "c"})
    assert w0.data[hid] == {
        "kind": "histogram", "count": 1, "total_ns": 5, "buckets": {"3": 1},
    }
    assert w0.data[cid] == {"kind": "counter", "inc": 1}
    assert w1.data[hid]["count"] == 1 and w1.data[hid]["total_ns"] == 9
    assert cid not in w1.data  # no counter traffic in window 1


def test_empty_windows_are_skipped():
    reg = MetricsRegistry(window_ns=1_000)
    h = reg.histogram("lat_ns")
    reg.advance(100)
    h.observe(1)
    reg.advance(10_500)  # jumps 10 windows; gap windows carried nothing
    h.observe(2)
    reg.finish(10_600)
    assert [w.index for w in reg.windows] == [0, 10]


def test_gauges_never_appear_in_windows():
    reg = MetricsRegistry(window_ns=1_000)
    g = reg.gauge("queue_depth", component="c")
    h = reg.histogram("lat_ns")
    reg.advance(100)
    g.set(7, 100)
    h.observe(3)
    reg.finish(1_500)
    for w in reg.windows:
        assert all("queue_depth" not in iid for iid in w.data)


def test_window_ids_count_from_one():
    reg = MetricsRegistry(window_ns=1_000)
    h = reg.histogram("x")
    for ts in (100, 1_100, 2_100):
        reg.advance(ts)
        h.observe(1)
    reg.finish(2_200)
    assert [w.id for w in reg.windows] == [1, 2, 3]


# -- clear() / fresh-registry parity (the TraceBuffer.clear() twin) ----------


def _drive(reg: MetricsRegistry) -> None:
    """One deterministic mini-campaign against the registry surface."""
    h = reg.histogram("lat_ns", component="c", iface="in")
    n = reg.counter("msgs_total", component="c")
    g = reg.gauge("busy_ns", component="c")
    for i, (ts, v) in enumerate(
        ((100, 5), (900, 80), (1_200, 7), (4_400, 9), (9_001, 6_000))
    ):
        reg.advance(ts)
        h.observe(v)
        n.inc()
        g.set(i, ts)
    reg.finish(9_100)


def _series(reg: MetricsRegistry):
    return [(w.id, w.index, w.start_ns, w.end_ns, w.data) for w in reg.windows]


def test_cleared_registry_matches_fresh_registry():
    reg = MetricsRegistry(window_ns=1_000)
    _drive(reg)
    first = _series(reg)
    first_digest = metrics_digest(reg)
    assert first, "the mini-campaign must produce windows"

    reg.clear()
    assert reg.windows == [] and reg.last_ns == 0
    _drive(reg)  # same campaign, same process, after clear()
    assert _series(reg) == first
    assert metrics_digest(reg) == first_digest

    fresh = MetricsRegistry(window_ns=1_000)
    _drive(fresh)
    assert _series(fresh) == first
    assert metrics_digest(fresh) == first_digest


def test_clear_keeps_cached_instrument_references_valid():
    reg = MetricsRegistry(window_ns=1_000)
    h = reg.histogram("lat_ns")
    n = reg.counter("msgs_total")
    h.observe(9)
    n.inc(3)
    reg.clear()
    assert h.count == 0 and h.state() == (0, 0, tuple([0] * N_BUCKETS))
    assert n.value == 0
    h.observe(9)  # the same object keeps feeding the same registry
    assert reg.histogram("lat_ns") is h
    assert h.count == 1


# -- the shard-merge property (seeds 1 / 7 / 42) -----------------------------


def _decode_registry(seed: int, n_shards: int):
    """Pinned-placement MJPEG decode with telemetry on N shards."""
    from repro.metrics.telemetry import collect_telemetry, enable_telemetry

    stream = generate_stream(3, 96, 96, quality=75, seed=seed)
    app = build_smp_assembly(stream, use_stored_coefficients=True, keep_frames=True)
    for i, comp in enumerate(app.components.values()):
        comp.placement.setdefault("core", i)
    rt = ShardedSmpSimRuntime(n_shards)
    rt.deploy(app)
    enable_telemetry(rt)
    rt.start()
    rt.wait()
    merged = collect_telemetry(rt)
    rt.collect()
    rt.stop()
    return merged


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_sharded_histograms_merge_bucket_exact(seed):
    single = _decode_registry(seed, 1)
    sharded = _decode_registry(seed, 2)
    assert single.windows, "the decode must produce a window series"
    assert metrics_digest(sharded) == metrics_digest(single)


def test_merge_registries_rejects_mixed_window_ns():
    with pytest.raises(ValueError, match="window_ns"):
        merge_registries(
            [MetricsRegistry(window_ns=1_000), MetricsRegistry(window_ns=2_000)]
        )
    with pytest.raises(ValueError, match="nothing to merge"):
        merge_registries([])


def test_merge_registries_renumbers_and_combines_same_index_windows():
    a = MetricsRegistry(shard=0, window_ns=1_000, window_ids=lambda: iter((10, 11)))
    b = MetricsRegistry(shard=1, window_ns=1_000, window_ids=lambda: iter((20, 21)))
    for reg, v in ((a, 4), (b, 6)):
        h = reg.histogram("lat_ns")
        reg.advance(100)
        h.observe(v)
        reg.finish(200)
    merged = merge_registries([a, b])
    assert [w.id for w in merged.windows] == [1]  # global renumbering
    (window,) = merged.windows
    assert window.index == 0
    assert window.data["lat_ns"]["count"] == 2
    assert window.data["lat_ns"]["total_ns"] == 10
    assert merged.histogram("lat_ns").count == 2


def test_default_window_is_five_virtual_milliseconds():
    assert DEFAULT_WINDOW_NS == 5_000_000
    with pytest.raises(ValueError):
        MetricsRegistry(window_ns=0)
