"""Unit tests for counters, timers, memory stats and table rendering."""

import pytest

from repro.metrics import Counter, MemoryStats, Table, Timer


def test_counter_increments():
    c = Counter("c")
    c.inc()
    c.inc(5)
    assert c.snapshot() == 6


def test_counter_negative_rejected():
    with pytest.raises(ValueError):
        Counter().inc(-1)


def test_timer_stats():
    t = Timer("t")
    for d in (100, 200, 300):
        t.record(d)
    assert t.count == 3
    assert t.total_ns == 600
    assert t.mean_ns == 200
    assert t.min_ns == 100
    assert t.max_ns == 300
    assert t.variance_ns2 == pytest.approx(6666.67, rel=0.01)


def test_timer_empty():
    t = Timer()
    assert t.mean_ns == 0.0
    assert t.variance_ns2 == 0.0
    assert t.snapshot()["min_ns"] == 0


def test_timer_negative_rejected():
    with pytest.raises(ValueError):
        Timer().record(-1)


def test_timer_merge():
    a, b = Timer(), Timer()
    a.record(10)
    b.record(30)
    b.record(50)
    a.merge(b)
    assert a.count == 3
    assert a.total_ns == 90
    assert a.min_ns == 10
    assert a.max_ns == 50
    a.merge(Timer())  # merging empty is a no-op
    assert a.count == 3


def test_memory_stats_totals():
    m = MemoryStats(stack_bytes=8392 * 1024, interface_bytes=2458 * 1024)
    assert m.total_kb == 10850.0
    assert m.snapshot()["total_bytes"] == m.total_bytes


def test_table_render_and_dicts():
    t = Table(["Component", "Time (us)"], title="T1")
    t.add_row(["Fetch", 4084])
    t.add_row(["IDCTx", 4084])
    text = t.render()
    assert "T1" in text
    assert "Fetch" in text and "4,084" in text
    assert t.as_dicts()[0]["Component"] == "Fetch"


def test_table_row_width_validated():
    t = Table(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row([1])


def test_table_needs_columns():
    with pytest.raises(ValueError):
        Table([])


def test_asciichart_renders_points_and_legend():
    from repro.metrics.asciichart import render_xy

    out = render_xy(
        [0, 50, 100],
        {"st40": [0, 10, 20], "st231": [0, 5, 10]},
        width=20,
        height=6,
        x_label="size (kB)",
        y_label="time (ms)",
    )
    assert "*" in out and "+" in out
    assert "*=st40" in out and "+=st231" in out
    assert "time (ms)" in out and "size (kB)" in out
    assert out.splitlines()[1].strip().startswith("20")  # y max label


def test_asciichart_monotone_series_plots_monotone_columns():
    from repro.metrics.asciichart import render_xy

    out = render_xy([0, 1, 2, 3], {"s": [0, 1, 2, 3]}, width=12, height=6)
    # strictly increasing values occupy strictly decreasing row indices;
    # scan only the plot rows (marked by the axis bar), not the legend
    cols = []
    for i, line in enumerate(out.splitlines()):
        if " |" not in line:
            continue
        for c, ch in enumerate(line):
            if ch == "*":
                cols.append((c, i))
    cols.sort()
    row_order = [r for _, r in cols]
    assert len(cols) == 4
    assert row_order == sorted(row_order, reverse=True)


def test_asciichart_validation():
    from repro.metrics.asciichart import render_xy

    with pytest.raises(ValueError):
        render_xy([1], {}, width=20, height=6)
    with pytest.raises(ValueError):
        render_xy([1, 2], {"s": [1]}, width=20, height=6)
    with pytest.raises(ValueError):
        render_xy([1], {"s": [1]}, width=5, height=6)
