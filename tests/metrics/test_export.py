"""Exporter contracts: JSON round-trip, digest invariance, Prometheus.

The ``repro.metrics/v1`` JSON document must round-trip through
:func:`registry_from_payload` without moving the digest (the CI
metrics-smoke job checks the same property on real run artifacts), the
digest must ignore gauges (host-time busy values are not
shard-invariant), and the Prometheus text form must use the standard
cumulative-``le`` histogram encoding.
"""

import json

import pytest

from repro.metrics.export import (
    SCHEMA,
    metrics_digest,
    read_metrics,
    registry_from_payload,
    registry_payload,
    to_prometheus,
    write_metrics,
)
from repro.metrics.telemetry import MetricsRegistry, bucket_bounds, bucket_of


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry(window_ns=1_000)
    h = reg.histogram("delivery_latency_ns", component="IDCT_1", iface="in")
    n = reg.counter("messages_sent_total", component="Fetch", iface="out")
    g = reg.gauge("busy_ns", component="Fetch")
    reg.advance(100)
    for v in (0, 3, 900, 70_000):
        h.observe(v)
    n.inc(4)
    g.set(123_456, 100)
    reg.advance(2_500)
    h.observe(12)
    reg.finish(2_600)
    return reg


# -- JSON round-trip ---------------------------------------------------------


def test_payload_round_trip_is_identity_on_instruments_and_windows():
    reg = _populated_registry()
    payload = registry_payload(reg, meta={"run": "unit"})
    assert payload["schema"] == SCHEMA
    assert payload["meta"] == {"run": "unit"}

    rebuilt = registry_from_payload(json.loads(json.dumps(payload)))
    assert metrics_digest(rebuilt) == metrics_digest(reg)
    # the round-tripped payload is byte-identical minus meta
    again = registry_payload(rebuilt)
    original = dict(payload)
    original.pop("meta")
    assert json.dumps(again, sort_keys=True) == json.dumps(original, sort_keys=True)


def test_unknown_schema_is_rejected():
    payload = registry_payload(_populated_registry())
    payload["schema"] = "repro.metrics/v999"
    with pytest.raises(ValueError, match="repro.metrics/v999"):
        registry_from_payload(payload)
    with pytest.raises(ValueError, match="expected"):
        registry_from_payload({"instruments": {}})


def test_round_trip_restores_histogram_extremes():
    reg = _populated_registry()
    rebuilt = registry_from_payload(registry_payload(reg))
    h = rebuilt.histogram("delivery_latency_ns", component="IDCT_1", iface="in")
    assert h.count == 5
    assert h.min_value == 0 and h.max_value == 70_000
    assert h.quantiles() == reg.histogram(
        "delivery_latency_ns", component="IDCT_1", iface="in"
    ).quantiles()


# -- the invariance digest ---------------------------------------------------


def test_digest_ignores_gauges():
    a = _populated_registry()
    b = _populated_registry()
    b.gauge("busy_ns", component="Fetch").set(999_999_999, 9_999)
    b.gauge("queue_depth", component="Fetch", iface="in").set(42, 1)
    assert metrics_digest(a) == metrics_digest(b)


def test_digest_is_sensitive_to_counters_histograms_and_windows():
    base = metrics_digest(_populated_registry())

    bumped = _populated_registry()
    bumped.counter("messages_sent_total", component="Fetch", iface="out").inc()
    assert metrics_digest(bumped) != base

    observed = _populated_registry()
    observed.histogram("delivery_latency_ns", component="IDCT_1", iface="in").observe(1)
    assert metrics_digest(observed) != base

    rewindowed = _populated_registry()
    rewindowed.windows.pop()
    assert metrics_digest(rewindowed) != base


# -- Prometheus text ---------------------------------------------------------


def test_prometheus_counters_and_gauges():
    prom = to_prometheus(_populated_registry())
    assert "# TYPE repro_messages_sent_total counter" in prom
    assert 'repro_messages_sent_total{component="Fetch",iface="out"} 4' in prom
    assert "# TYPE repro_busy_ns gauge" in prom
    assert 'repro_busy_ns{component="Fetch"} 123456' in prom
    assert prom.endswith("\n")


def test_prometheus_histogram_is_cumulative_le_form():
    prom = to_prometheus(_populated_registry())
    labels = 'component="IDCT_1",iface="in"'
    assert "# TYPE repro_delivery_latency_ns histogram" in prom
    # samples 0, 3, 12, 900, 70000 -> buckets 0, 2, 4, 10, 17
    for value, cum in ((0, 1), (3, 2), (12, 3), (900, 4), (70_000, 5)):
        le = bucket_bounds(bucket_of(value))[1]
        assert f'repro_delivery_latency_ns_bucket{{{labels},le="{le}"}} {cum}' in prom
    assert f'repro_delivery_latency_ns_bucket{{{labels},le="+Inf"}} 5' in prom
    assert f"repro_delivery_latency_ns_sum{{{labels}}} {0 + 3 + 12 + 900 + 70_000}" in prom
    assert f"repro_delivery_latency_ns_count{{{labels}}} 5" in prom


def test_prometheus_type_line_emitted_once_per_metric_name():
    reg = _populated_registry()
    reg.counter("messages_sent_total", component="IDCT_1", iface="out").inc()
    prom = to_prometheus(reg)
    assert prom.count("# TYPE repro_messages_sent_total counter") == 1


# -- write / read ------------------------------------------------------------


def test_write_metrics_picks_format_by_suffix(tmp_path):
    reg = _populated_registry()

    json_path = tmp_path / "out.json"
    payload = write_metrics(json_path, reg, meta={"images": 3})
    assert payload["meta"] == {"images": 3}
    loaded = read_metrics(json_path)
    assert metrics_digest(loaded) == metrics_digest(reg)

    prom_path = tmp_path / "out.prom"
    write_metrics(prom_path, reg)
    assert prom_path.read_text() == to_prometheus(reg)

    txt_path = tmp_path / "out.txt"
    write_metrics(txt_path, reg)
    assert txt_path.read_text() == to_prometheus(reg)
