"""Tests for declarative platform configuration."""

import pytest

from repro.hw import make_smp16, make_sti7200
from repro.hw.config import (
    PlatformConfigError,
    platform_from_config,
    platform_from_json,
    platform_to_config,
)


def biglittle_config():
    return {
        "name": "biglittle",
        "cores": [
            {"name": "big0", "freq_hz": 2.0e9, "cycles": {"idct_block": 200e3}, "node": 0},
            {"name": "big1", "freq_hz": 2.0e9, "cycles": {"idct_block": 200e3}, "node": 0},
            {"name": "little0", "freq_hz": 0.8e9, "cycles": {"idct_block": 600e3}, "node": 1},
        ],
        "regions": [
            {"name": "dram", "size_bytes": 1 << 30, "node": 0},
            {"name": "sram", "size_bytes": 1 << 20, "node": 1, "kind": "sram"},
        ],
        "numa": {"distance": [[0, 1], [1, 0]], "hop_penalty": 0.3},
        "cache": {"size_bytes": 1 << 20, "line_bytes": 64, "ways": 4},
    }


def test_build_from_config():
    p = platform_from_config(biglittle_config())
    assert p.name == "biglittle"
    assert p.n_cores == 3
    assert p.cores[0].cost_ns("idct_block", 1) < p.cores[2].cost_ns("idct_block", 1)
    assert p.region("sram").kind == "sram"
    assert p.copy_factor(0, 1) == pytest.approx(1.3)
    assert p.caches is not None and len(p.caches) == 3


def test_roundtrip_through_config():
    p1 = platform_from_config(biglittle_config())
    p2 = platform_from_config(platform_to_config(p1))
    assert p2.name == p1.name
    assert [c.name for c in p2.cores] == [c.name for c in p1.cores]
    assert p2.cores[2].cost_ns("idct_block", 10) == p1.cores[2].cost_ns("idct_block", 10)
    assert p2.copy_factor(0, 1) == p1.copy_factor(0, 1)


def test_builtin_platforms_roundtrip():
    for factory in (make_smp16, make_sti7200):
        original = factory()
        rebuilt = platform_from_config(platform_to_config(original))
        assert rebuilt.n_cores == original.n_cores
        assert rebuilt.core_nodes == original.core_nodes
        for a, b in zip(rebuilt.cores, original.cores):
            assert a.cost_ns("memcpy_byte", 1024) == b.cost_ns("memcpy_byte", 1024)


def test_json_file(tmp_path):
    import json

    path = tmp_path / "platform.json"
    path.write_text(json.dumps(biglittle_config()))
    p = platform_from_json(path)
    assert p.name == "biglittle"


def test_validation_errors():
    with pytest.raises(PlatformConfigError, match="missing"):
        platform_from_config({"name": "x", "cores": [{"name": "c", "freq_hz": 1e9}]})
    with pytest.raises(PlatformConfigError, match="no cores"):
        platform_from_config({"name": "x", "cores": [], "regions": [{"name": "m", "size_bytes": 1}]})
    bad = biglittle_config()
    bad["cores"][0]["freq_hz"] = -1
    with pytest.raises(PlatformConfigError, match="bad core"):
        platform_from_config(bad)
    dup = biglittle_config()
    dup["regions"].append({"name": "dram", "size_bytes": 10})
    with pytest.raises(PlatformConfigError, match="duplicate region"):
        platform_from_config(dup)
    out_of_range = biglittle_config()
    out_of_range["cores"][0]["node"] = 5
    with pytest.raises(PlatformConfigError, match="outside numa"):
        platform_from_config(out_of_range)


def test_custom_platform_runs_applications():
    """An application deploys unchanged on a config-declared platform."""
    from repro.runtime import SmpSimRuntime
    from tests.runtime.conftest import make_pipeline_app

    config = {
        "name": "tiny2",
        "cores": [
            {"name": "c0", "freq_hz": 1e9, "node": 0},
            {"name": "c1", "freq_hz": 1e9, "node": 0},
        ],
        "regions": [{"name": "node0", "size_bytes": 1 << 30, "node": 0}],
    }
    rt = SmpSimRuntime(platform=platform_from_config(config))
    rt.run(make_pipeline_app())
    reports = rt.collect()
    rt.stop()
    assert reports[("prod", "application")]["sends"] == 5
