"""Unit tests for CPU cost models."""

import pytest

from repro.hw import CpuModel


def test_cost_scales_with_units():
    cpu = CpuModel("c", 1e9, {"op": 10})
    assert cpu.cost_ns("op", 1) == 10
    assert cpu.cost_ns("op", 100) == 1000


def test_cost_scales_with_frequency():
    fast = CpuModel("fast", 2e9, {"op": 10})
    slow = CpuModel("slow", 1e9, {"op": 10})
    assert slow.cost_ns("op", 100) == 2 * fast.cost_ns("op", 100)


def test_unknown_opclass_uses_default():
    cpu = CpuModel("c", 1e9, {"op": 10}, default_cycles=3)
    assert cpu.cost_ns("mystery", 100) == 300


def test_ns_opclass_charges_raw_time():
    cpu = CpuModel("c", 123e6, {})
    assert cpu.cost_ns("ns", 5000) == 5000


def test_fractional_cycles_per_byte():
    cpu = CpuModel("c", 1e9, {"memcpy_byte": 0.5})
    assert cpu.cost_ns("memcpy_byte", 1000) == 500


def test_scaled_copy():
    cpu = CpuModel("c", 1e9, {"op": 10}, default_cycles=2)
    slow = cpu.scaled("c2", 3.0)
    assert slow.cost_ns("op", 10) == 300
    assert slow.cost_ns("other", 10) == 60
    # original untouched
    assert cpu.cost_ns("op", 10) == 100


def test_invalid_frequency_rejected():
    with pytest.raises(ValueError):
        CpuModel("c", 0)


def test_negative_cycle_cost_rejected():
    with pytest.raises(ValueError):
        CpuModel("c", 1e9, {"op": -1})
