"""Unit tests for the set-associative cache simulator."""

import pytest

from repro.hw import CacheConfig, CacheSim


def small_cache(ways=2, sets=4, line=64):
    return CacheSim(CacheConfig(size_bytes=ways * sets * line, line_bytes=line, ways=ways))


def test_cold_miss_then_hit():
    c = small_cache()
    assert c.access([0]) == 1
    assert c.access([0]) == 0
    assert c.stats.hits == 1
    assert c.stats.misses == 1


def test_same_line_is_one_miss():
    c = small_cache(line=64)
    misses = c.access([0, 1, 63])
    assert misses == 1


def test_lru_eviction_within_set():
    c = small_cache(ways=2, sets=1, line=64)
    a, b, d = 0, 64, 128  # all map to the single set
    c.access([a, b])       # fill both ways
    c.access([a])          # a is now most-recent
    c.access([d])          # evicts b (LRU)
    assert c.access([a]) == 0   # a still resident
    assert c.access([b]) == 1   # b was evicted
    assert c.stats.evictions >= 1


def test_access_range_touches_each_line_once():
    c = small_cache(ways=8, sets=64, line=64)
    misses = c.access_range(0, 64 * 10)
    assert misses == 10
    # re-reading the same range hits
    assert c.access_range(0, 64 * 10) == 0


def test_access_range_partial_lines():
    c = small_cache(ways=8, sets=64, line=64)
    # 1 byte spanning into line 0 only
    assert c.access_range(10, 1) == 1
    # crossing a line boundary touches two lines (one already resident)
    assert c.access_range(60, 8) == 1


def test_access_range_zero_bytes():
    c = small_cache()
    assert c.access_range(0, 0) == 0


def test_flush_invalidates():
    c = small_cache()
    c.access([0])
    c.flush()
    assert c.access([0]) == 1
    assert c.resident_lines() == 1


def test_miss_rate():
    c = small_cache()
    c.access([0, 0, 0, 64])
    assert c.stats.accesses == 4
    assert c.stats.miss_rate == pytest.approx(0.5)


def test_streaming_larger_than_cache_always_misses():
    c = small_cache(ways=2, sets=4, line=64)  # 512 B cache
    first = c.access_range(0, 4096)
    second = c.access_range(0, 4096)
    assert first == 64
    assert second == 64  # nothing useful survives the stream


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, line_bytes=64, ways=3)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=0)


def test_negative_address_rejected():
    with pytest.raises(ValueError):
        small_cache().access([-1])
