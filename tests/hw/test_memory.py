"""Unit tests for memory regions and allocation tracking."""

import pytest

from repro.hw import AllocationError, MemoryRegion


def test_alloc_free_roundtrip():
    r = MemoryRegion("m", 1000)
    h = r.alloc(400, "stack")
    assert r.used_bytes == 400
    assert r.free_bytes == 600
    r.free(h)
    assert r.used_bytes == 0


def test_exhaustion_raises():
    r = MemoryRegion("m", 100)
    r.alloc(80)
    with pytest.raises(AllocationError, match="exhausted"):
        r.alloc(30)


def test_peak_tracks_high_water_mark():
    r = MemoryRegion("m", 1000)
    h1 = r.alloc(500)
    h2 = r.alloc(300)
    r.free(h1)
    r.free(h2)
    assert r.peak_bytes == 800
    assert r.used_bytes == 0


def test_double_free_rejected():
    r = MemoryRegion("m", 100)
    h = r.alloc(10)
    r.free(h)
    with pytest.raises(AllocationError, match="unknown"):
        r.free(h)


def test_usage_by_label_aggregates():
    r = MemoryRegion("m", 1000)
    r.alloc(100, "stack")
    r.alloc(50, "mailbox")
    r.alloc(60, "mailbox")
    assert r.usage_by_label() == {"stack": 100, "mailbox": 110}


def test_timeline_records_samples():
    r = MemoryRegion("m", 1000)
    h = r.alloc(100, time_ns=10)
    r.alloc(200, time_ns=20)
    r.free(h, time_ns=30)
    assert r.timeline() == [(10, 100), (20, 300), (30, 200)]


def test_negative_alloc_rejected():
    r = MemoryRegion("m", 100)
    with pytest.raises(AllocationError):
        r.alloc(-5)


def test_zero_size_region_rejected():
    with pytest.raises(AllocationError):
        MemoryRegion("m", 0)
