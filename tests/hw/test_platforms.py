"""Unit tests for the interconnect helpers and concrete platforms."""

import numpy as np
import pytest

from repro.hw import CpuModel, MemoryRegion, Platform, hypercube_distance, make_smp16, make_sti7200
from repro.hw.interconnect import NumaCostModel, hypercube_distance_matrix
from repro.hw.smp16 import OPTERON_CYCLES
from repro.hw.sti7200 import ST231_CORES, ST40_CORE


def test_hypercube_distance_basics():
    assert hypercube_distance(0, 0) == 0
    assert hypercube_distance(0, 1) == 1
    assert hypercube_distance(0, 7) == 3
    assert hypercube_distance(5, 6) == 2


def test_hypercube_matrix_symmetric_and_degree3():
    m = hypercube_distance_matrix(8)
    assert (m == m.T).all()
    assert (np.diag(m) == 0).all()
    # each node has exactly 3 neighbours at distance 1
    assert ((m == 1).sum(axis=1) == 3).all()


def test_hypercube_matrix_requires_power_of_two():
    with pytest.raises(ValueError):
        hypercube_distance_matrix(6)


def test_numa_cost_factor_affine_in_hops():
    m = NumaCostModel(hypercube_distance_matrix(8), hop_penalty=0.25)
    assert m.cost_factor(0, 0) == 1.0
    assert m.cost_factor(0, 1) == 1.25
    assert m.cost_factor(0, 7) == pytest.approx(1.75)


def test_numa_rejects_asymmetric_matrix():
    with pytest.raises(ValueError):
        NumaCostModel(np.array([[0, 1], [2, 0]]))


def test_smp16_shape():
    p = make_smp16()
    assert p.n_cores == 16
    assert p.core_nodes == [i // 2 for i in range(16)]
    assert len(p.regions) == 8
    assert p.total_memory_bytes() == 32 * 1024**3
    assert p.caches is None


def test_smp16_with_caches():
    p = make_smp16(with_caches=True)
    assert p.caches is not None and len(p.caches) == 16
    assert p.cache_of_core(3).config.size_bytes == 2 * 1024 * 1024


def test_smp16_send_slope_matches_figure4():
    """2.64 ns/byte -> ~338 us for a local 125 kB message (Figure 4)."""
    p = make_smp16()
    cost = p.cores[0].cost_ns("memcpy_byte", 125 * 1024)
    assert 300_000 < cost < 380_000


def test_smp16_stage_balance_matches_table1():
    """Per-image: fetch ~ reorder ~ idct/3 (the paper's balanced pipeline)."""
    cpu = CpuModel("opteron", 2.2e9, OPTERON_CYCLES)
    blocks = 144  # one 96x96 image
    fetch = cpu.cost_ns("huffman_block", blocks)
    idct_per_component = cpu.cost_ns("idct_block", blocks / 3)
    reorder = cpu.cost_ns("reorder_block", blocks)
    assert fetch == pytest.approx(idct_per_component, rel=0.05)
    assert reorder == pytest.approx(fetch, rel=0.05)
    # ~7 ms per image per stage -> ~4.08 s for 578 images
    assert fetch * 578 == pytest.approx(4.08e9, rel=0.05)


def test_sti7200_shape():
    p = make_sti7200()
    assert p.n_cores == 5
    assert p.cores[ST40_CORE].name == "st40"
    assert all(p.cores[i].name.startswith("st231") for i in ST231_CORES)
    assert p.region("sdram").size_bytes == 2 * 1024**3
    assert p.region("st231_0_local").size_bytes == 1024**2


def test_sti7200_memcpy_asymmetry_matches_figure8():
    """ST40 per-byte send cost must exceed ST231's (Figure 8 ordering)."""
    p = make_sti7200()
    st40 = p.cores[ST40_CORE].cost_ns("memcpy_byte", 1024)
    st231 = p.cores[ST231_CORES[0]].cost_ns("memcpy_byte", 1024)
    assert st40 > 1.5 * st231


def test_sti7200_task_times_match_table3():
    """913k cycles/block -> ~95 s per IDCT; ST40 fetch+reorder -> ~1173 s."""
    p = make_sti7200()
    st231 = p.cores[1]
    idct_s = st231.cost_ns("idct_block", 578 * 72) / 1e9
    assert idct_s == pytest.approx(95, rel=0.05)
    st40 = p.cores[0]
    fr_s = (
        st40.cost_ns("huffman_block", 578 * 144) + st40.cost_ns("reorder_block", 578 * 144)
    ) / 1e9
    assert fr_s == pytest.approx(1173, rel=0.05)
    # the paper's ~10x ratio between Fetch-Reorder and IDCT tasks
    assert 8 < fr_s / idct_s < 16


def test_platform_copy_factor_uniform_when_no_numa():
    p = Platform(
        "flat",
        cores=[CpuModel("c", 1e9)],
        core_nodes=[0],
        regions={"m": MemoryRegion("m", 1024)},
    )
    assert p.copy_factor(0, 3) == 1.0


def test_platform_validation():
    with pytest.raises(ValueError):
        Platform("bad", cores=[CpuModel("c", 1e9)], core_nodes=[0, 1], regions={})
    with pytest.raises(ValueError):
        Platform("empty", cores=[], core_nodes=[], regions={})


def test_platform_unknown_region_message():
    p = make_sti7200()
    with pytest.raises(KeyError, match="sdram"):
        p.region("nope")
