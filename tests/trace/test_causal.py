"""Causal span graph, latency attribution, queue depths, columnar buffer."""

import json

import pytest

from repro.core import Application, CONTROL
from repro.runtime import NativeRuntime, SmpSimRuntime
from repro.trace import (
    SpanGraph,
    TraceBuffer,
    Tracer,
    enable_tracing,
    queue_depth_series,
    read_columns,
    write_chrome_trace,
    write_columns,
)

N_ITEMS = 6


def make_chain_app(n_items=N_ITEMS):
    """prod -> relay -> sink, with the sink depositing tagged items:
    three-hop causal chains ending in a deposit."""

    def prod(ctx):
        for i in range(n_items):
            yield from ctx.compute("huffman_block", 5)
            yield from ctx.send("out", bytes(256), tag=f"m{i}")
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def relay(ctx):
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                yield from ctx.send("out", None, kind=CONTROL, tag="eos")
                return
            yield from ctx.compute("idct_block", 20)
            yield from ctx.send("out", msg.payload)

    def sink(ctx):
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return
            yield from ctx.deposit("display", msg.payload, tag="item")

    app = Application("chain")
    app.create("prod", behavior=prod, requires=["out"])
    app.create("relay", behavior=relay, provides=["in"], requires=["out"])
    app.create("sink", behavior=sink, provides=["in", "display"])
    app.connect("prod", "out", "relay", "in")
    app.connect("relay", "out", "sink", "in")
    return app


@pytest.fixture(scope="module")
def chain_trace():
    rt = SmpSimRuntime()
    rt.deploy(make_chain_app())
    buffer = enable_tracing(rt)
    rt.start()
    rt.wait()
    rt.stop()
    return buffer


def test_span_graph_structure(chain_trace):
    graph = SpanGraph.from_trace(chain_trace)
    sends = [e for e in graph.edges.values() if e.op == "send" and e.kind == "data"]
    deposits = [e for e in graph.edges.values() if e.op == "deposit"]
    # Every data message of the chain shows up exactly once, delivered.
    assert len(sends) == 2 * N_ITEMS
    assert len(deposits) == N_ITEMS
    assert all(e.delivered for e in sends)
    assert all(e.receptions == 1 for e in sends)
    # Span ids are the dict keys, hence unique by construction; check
    # they are all positive and the cause links point at real receives.
    assert all(span > 0 for span in graph.edges)
    for dep in deposits:
        chain = graph.chain(dep.span)
        assert [e.src for e in chain] == ["prod", "relay", "sink"]
        assert chain[0].cause == 0  # root of the causal chain


def test_attribution_telescopes_to_e2e(chain_trace):
    graph = SpanGraph.from_trace(chain_trace)
    items = graph.attribute_items("item")
    assert len(items) == N_ITEMS
    for item in items:
        assert item.e2e_ns > 0
        # The acceptance criterion: hop segments sum exactly to the
        # measured end-to-end latency.
        assert item.attributed_ns == item.e2e_ns
        assert len(item.hops) == 3
    worst = graph.critical_path("item")
    assert worst.e2e_ns == max(it.e2e_ns for it in items)


def test_hop_segments_nonnegative(chain_trace):
    graph = SpanGraph.from_trace(chain_trace)
    for item in graph.attribute_items("item"):
        for hop in item.hops:
            assert hop.compute_ns >= 0
            assert hop.send_ns >= 0
            assert hop.queue_ns >= 0
            assert hop.recv_ns >= 0


def test_queue_depth_series(chain_trace):
    series = queue_depth_series(chain_trace)
    # Drained mailboxes return to zero; depth never goes negative.
    for mailbox in ("relay.in", "sink.in"):
        depths = [d for _, d in series[mailbox]]
        assert min(depths) >= 0
        assert depths[-1] == 0
    # The sink's display mailbox is never drained: monotone growth to
    # the item count -- the backpressure signal.
    display = [d for _, d in series["sink.display"]]
    assert display == list(range(1, N_ITEMS + 1))


def test_backpressure_report(chain_trace):
    from repro.metrics.analysis import backpressure_report

    report = backpressure_report(queue_depth_series(chain_trace))
    assert report["sink.display"]["final_depth"] == N_ITEMS
    assert report["sink.display"]["peak_depth"] == N_ITEMS
    assert report["relay.in"]["final_depth"] == 0
    assert 0 <= report["relay.in"]["mean_depth"] <= report["relay.in"]["peak_depth"]


def test_flow_events_link_every_send(chain_trace, tmp_path):
    path = tmp_path / "chain.chrome.json"
    write_chrome_trace(chain_trace.events(), path)
    records = json.loads(path.read_text())
    starts = {r["id"] for r in records if r.get("ph") == "s"}
    finishes = {r["id"] for r in records if r.get("ph") == "f"}
    graph = SpanGraph.from_trace(chain_trace)
    delivered = {e.span for e in graph.edges.values() if e.op == "send" and e.delivered}
    # Every send opens a flow and every delivered span closes one.
    assert delivered <= starts
    assert delivered <= finishes
    assert finishes <= starts


def test_columnar_roundtrip(chain_trace, tmp_path):
    path = tmp_path / "chain.columns.json"
    n = write_columns(chain_trace, path)
    assert n == len(chain_trace)
    cols = read_columns(path)
    ref = chain_trace.columns()
    assert cols.timestamp_ns == ref.timestamp_ns
    assert cols.args == ref.args
    # The loaded columns feed the same analyses as the live buffer.
    graph = SpanGraph.from_trace(cols)
    assert len(graph.attribute_items("item")) == N_ITEMS


def test_columns_view_matches_events():
    buffer = TraceBuffer()
    tracer = Tracer(buffer, "c", lambda: 7)
    tracer.emit("compute", "op", "B", units=3)
    tracer.emit("compute", "op", "E")
    cols = buffer.columns()
    events = buffer.events()
    assert len(cols) == len(events) == 2
    assert cols.name == [e.name for e in events]
    assert cols.args[0] == {"units": 3}


def test_columns_cache_invalidated_by_emit():
    buffer = TraceBuffer()
    tracer = Tracer(buffer, "c", lambda: 0)
    tracer.emit("a", "x")
    assert len(buffer.columns()) == 1
    tracer.emit("a", "y")
    assert len(buffer.columns()) == 2
    assert buffer.columns().name == ["x", "y"]


def test_ring_overwrites_oldest():
    buffer = TraceBuffer(capacity=8)
    clock = iter(range(100))
    tracer = Tracer(buffer, "c", lambda: next(clock))
    for i in range(20):
        tracer.emit("a", f"e{i}")
    assert len(buffer) == 8
    assert buffer.dropped == 12
    names = buffer.columns().name
    assert names == [f"e{i}" for i in range(12, 20)]
    seqs = buffer.columns().seq
    assert seqs == list(range(13, 21))


def test_clear_resets_sequence():
    buffer = TraceBuffer(capacity=4)
    tracer = Tracer(buffer, "c", lambda: 0)
    for _ in range(9):
        tracer.emit("a", "x")
    buffer.clear()
    assert len(buffer) == 0
    assert buffer.dropped == 0
    assert len(buffer.columns()) == 0
    # The satellite fix: a cleared buffer starts a fresh trace, so
    # sequence numbers restart from 1 instead of colliding with history.
    assert buffer.next_seq() == 1
    tracer.emit("a", "y")
    assert buffer.columns().seq == [2]


def test_native_runtime_spans_unique():
    from tests.runtime.conftest import make_pipeline_app

    rt = NativeRuntime()
    rt.deploy(make_pipeline_app(n_messages=20))
    buffer = enable_tracing(rt)
    rt.start()
    rt.wait()
    rt.stop()
    spans = [
        e.args["span"]
        for e in buffer.events()
        if e.category == "middleware" and e.name in ("send", "deposit")
        and e.phase == "E" and "span" in e.args
    ]
    assert spans
    assert len(spans) == len(set(spans))
    graph = SpanGraph.from_trace(buffer)
    data_sends = [e for e in graph.edges.values() if e.op == "send" and e.kind == "data"]
    assert len(data_sends) == 20
    assert all(e.delivered for e in data_sends)
