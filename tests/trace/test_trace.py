"""Tests for the event-trace extension."""

import pytest

from repro.trace import (
    BEGIN,
    END,
    INSTANT,
    TraceBuffer,
    TraceEvent,
    Tracer,
    intervals,
    read_jsonl,
    summarize_durations,
    timeline,
    write_csv,
    write_jsonl,
)
from repro.trace.analysis import busy_fraction


def ev(ts, seq, comp="c", cat="x", name="op", phase=INSTANT, **args):
    return TraceEvent(ts, seq, comp, cat, name, phase, args)


def test_event_validation():
    with pytest.raises(ValueError, match="phase"):
        ev(0, 0, phase="Z")
    with pytest.raises(ValueError, match="negative"):
        ev(-1, 0)


def test_event_ordering_by_time_then_seq():
    events = [ev(20, 1), ev(10, 2), ev(10, 1)]
    assert sorted(events) == [ev(10, 1), ev(10, 2), ev(20, 1)]


def test_event_dict_roundtrip():
    e = ev(5, 1, args_key=3)
    assert TraceEvent.from_dict(e.to_dict()) == e


def test_buffer_drops_oldest_when_full():
    buf = TraceBuffer(capacity=3)
    for i in range(5):
        buf.append(ev(i, i))
    assert len(buf) == 3
    assert buf.dropped == 2
    assert buf.events()[0].timestamp_ns == 2


def test_tracer_emits_with_clock_and_seq():
    buf = TraceBuffer()
    now = [100]
    tracer = Tracer(buf, "comp", lambda: now[0])
    tracer.emit("middleware", "send", BEGIN, iface="out")
    now[0] = 250
    tracer.emit("middleware", "send", END)
    events = buf.events()
    assert events[0].timestamp_ns == 100 and events[1].timestamp_ns == 250
    assert events[0].seq < events[1].seq
    assert events[0].args == {"iface": "out"}


def test_intervals_matching():
    events = [
        ev(0, 1, name="send", phase=BEGIN),
        ev(10, 2, name="send", phase=END),
        ev(20, 3, name="recv", phase=BEGIN),
        ev(50, 4, name="recv", phase=END),
    ]
    ivals = intervals(events)
    assert len(ivals) == 2
    assert ivals[0].duration_ns == 10
    assert ivals[1].duration_ns == 30


def test_intervals_nested_lifo():
    events = [
        ev(0, 1, name="op", phase=BEGIN),
        ev(5, 2, name="op", phase=BEGIN),
        ev(7, 3, name="op", phase=END),   # closes inner
        ev(20, 4, name="op", phase=END),  # closes outer
    ]
    ivals = intervals(events)
    assert sorted(iv.duration_ns for iv in ivals) == [2, 20]


def test_intervals_end_without_begin_raises():
    with pytest.raises(ValueError, match="END without BEGIN"):
        intervals([ev(0, 1, phase=END)])


def test_summarize_durations():
    events = []
    for i, dur in enumerate((10, 20, 30)):
        events.append(ev(100 * i, 2 * i, name="send", phase=BEGIN))
        events.append(ev(100 * i + dur, 2 * i + 1, name="send", phase=END))
    summary = summarize_durations(intervals(events))
    stats = summary[("c", "send")]
    assert stats["count"] == 3
    assert stats["mean_ns"] == 20
    assert stats["min_ns"] == 10 and stats["max_ns"] == 30


def test_timeline_filters_component():
    events = [ev(1, 1, comp="a"), ev(0, 2, comp="b")]
    assert [e.component for e in timeline(events)] == ["b", "a"]
    assert [e.component for e in timeline(events, component="a")] == ["a"]


def test_busy_fraction_unions_overlaps():
    events = [
        ev(0, 1, name="compute", phase=BEGIN),
        ev(60, 2, name="compute", phase=END),
        ev(40, 3, name="send", phase=BEGIN),
        ev(80, 4, name="send", phase=END),
    ]
    frac = busy_fraction(intervals(events), "c", span_ns=100)
    assert frac == pytest.approx(0.8)


def test_jsonl_roundtrip(tmp_path):
    events = [ev(i, i, args_val=i) for i in range(10)]
    path = tmp_path / "trace.jsonl"
    assert write_jsonl(events, path) == 10
    assert read_jsonl(path) == events


def test_csv_export(tmp_path):
    events = [ev(1, 1), ev(2, 2)]
    path = tmp_path / "trace.csv"
    assert write_csv(events, path) == 2
    lines = path.read_text().strip().splitlines()
    assert lines[0].startswith("timestamp_ns")
    assert len(lines) == 3


def test_buffer_capacity_validated():
    with pytest.raises(ValueError):
        TraceBuffer(capacity=0)
