"""Tests for the Gantt renderer and the Pajé / Chrome exports."""

import json

import pytest

from repro.trace import BEGIN, END, TraceEvent, intervals
from repro.trace.analysis import Interval
from repro.trace.export import write_chrome_trace, write_paje
from repro.trace.gantt import render_gantt


def iv(comp, name, start, dur):
    return Interval(component=comp, category="x", name=name, start_ns=start, duration_ns=dur, args={})


def ev(ts, seq, comp, name, phase):
    return TraceEvent(ts, seq, comp, "middleware", name, phase)


# -- gantt ---------------------------------------------------------------------


def test_gantt_lanes_and_glyphs():
    ivals = [iv("a", "send", 0, 50), iv("b", "receive", 50, 50)]
    out = render_gantt(ivals, span_ns=100, width=10)
    lines = out.splitlines()
    lane_a = next(l for l in lines if l.startswith("a"))
    lane_b = next(l for l in lines if l.startswith("b"))
    assert "sssss....." in lane_a.replace(" ", "")[2:]
    assert ".....rrrrr" in lane_b.replace(" ", "")[2:]
    assert "legend" in lines[-1]


def test_gantt_dominant_operation_wins_slot():
    ivals = [iv("a", "send", 0, 90), iv("a", "receive", 90, 10)]
    out = render_gantt(ivals, span_ns=100, width=1)
    lane = [l for l in out.splitlines() if l.startswith("a")][0]
    assert "|s|" in lane


def test_gantt_unknown_operation_glyph():
    out = render_gantt([iv("a", "mystery", 0, 100)], span_ns=100, width=4)
    assert "####" in out


def test_gantt_empty_and_validation():
    assert render_gantt([]) == "(empty trace)"
    with pytest.raises(ValueError):
        render_gantt([], width=0)


def test_gantt_component_filter():
    ivals = [iv("a", "send", 0, 10), iv("b", "send", 0, 10)]
    out = render_gantt(ivals, span_ns=10, width=4, components=["b"])
    assert "a " not in out
    assert any(l.startswith("b") for l in out.splitlines())


def test_gantt_from_real_intervals():
    events = [
        ev(0, 1, "c", "send", BEGIN),
        ev(100, 2, "c", "send", END),
    ]
    out = render_gantt(intervals(events), width=8)
    assert "|ssssssss|" in out.replace(" ", "")


# -- paje ----------------------------------------------------------------------------


def test_paje_export_structure(tmp_path):
    events = [
        ev(0, 1, "comp", "send", BEGIN),
        ev(1_000_000, 2, "comp", "send", END),
    ]
    path = tmp_path / "trace.paje"
    n = write_paje(events, path)
    text = path.read_text()
    assert n == 2  # one state set + one idle return
    assert "%EventDef PajeSetState" in text
    assert '3 0.000000 C_comp CT_Comp 0 "comp"' in text
    assert '4 0.000000000 C_comp ST_Op "send"' in text
    assert '4 0.001000000 C_comp ST_Op "idle"' in text


def test_paje_nested_intervals_return_to_idle_once(tmp_path):
    events = [
        ev(0, 1, "c", "outer", BEGIN),
        ev(10, 2, "c", "inner", BEGIN),
        ev(20, 3, "c", "inner", END),
        ev(30, 4, "c", "outer", END),
    ]
    path = tmp_path / "t.paje"
    write_paje(events, path)
    idles = [l for l in path.read_text().splitlines() if '"idle"' in l]
    assert len(idles) == 1


# -- chrome trace ------------------------------------------------------------------------


def test_chrome_trace_loads_as_json(tmp_path):
    events = [
        ev(0, 1, "compA", "send", BEGIN),
        ev(5_000, 2, "compA", "send", END),
        TraceEvent(7_000, 3, "compB", "lifecycle", "started", "I"),
    ]
    path = tmp_path / "trace.json"
    n = write_chrome_trace(events, path)
    records = json.loads(path.read_text())
    assert n == 3
    phases = [r["ph"] for r in records if r["ph"] != "M"]
    assert phases == ["B", "E", "i"]
    names = {r["args"]["name"] for r in records if r["ph"] == "M"}
    assert names == {"compA", "compB"}
    # timestamps are microseconds
    b = next(r for r in records if r["ph"] == "B")
    e = next(r for r in records if r["ph"] == "E")
    assert e["ts"] - b["ts"] == pytest.approx(5.0)
    assert b["tid"] == e["tid"]


def test_chrome_trace_from_runtime(tmp_path):
    from repro.runtime import SmpSimRuntime
    from repro.trace.tracer import enable_tracing
    from tests.runtime.conftest import make_pipeline_app

    app = make_pipeline_app()
    rt = SmpSimRuntime()
    rt.deploy(app)
    buffer = enable_tracing(rt)
    rt.start()
    rt.wait()
    rt.stop()
    path = tmp_path / "run.json"
    n = write_chrome_trace(buffer.events(), path)
    assert n >= len(buffer)  # slice records plus causal flow records
    records = json.loads(path.read_text())  # valid JSON
    # Every delivered span produces a flow arrow: one "s" at the send END
    # and one "f" at the receive END, joined by the span id.
    starts = {r["id"] for r in records if r.get("ph") == "s"}
    finishes = {r["id"] for r in records if r.get("ph") == "f"}
    assert starts and finishes <= starts
