"""End-to-end tracing over the simulated runtimes."""

import pytest

from repro.runtime import SmpSimRuntime
from repro.trace import intervals, summarize_durations
from repro.trace.tracer import enable_tracing

from tests.runtime.conftest import make_pipeline_app


def traced_run(n_messages=5):
    app = make_pipeline_app(n_messages=n_messages)
    rt = SmpSimRuntime()
    rt.deploy(app)
    buffer = enable_tracing(rt)
    rt.start()
    rt.wait()
    rt.stop()
    return rt, buffer


def test_tracing_captures_sends_and_receives():
    rt, buffer = traced_run()
    ivals = intervals(buffer.events())
    summary = summarize_durations(ivals)
    assert summary[("prod", "send")]["count"] == 6  # 5 data + eos
    assert summary[("cons", "receive")]["count"] == 6


def test_tracing_captures_compute_with_args():
    rt, buffer = traced_run()
    computes = [e for e in buffer.events() if e.category == "compute" and e.phase == "B"]
    assert computes
    assert all("units" in e.args for e in computes)
    assert {e.name for e in computes} == {"huffman_block", "idct_block"}


def test_traced_timestamps_are_simulation_time():
    rt, buffer = traced_run()
    last = max(e.timestamp_ns for e in buffer.events())
    assert last <= rt.makespan_ns


def test_trace_durations_consistent_with_observation():
    """Send durations measured by the trace match the probe's timer."""
    app = make_pipeline_app(n_messages=10, payload_bytes=50_000)
    rt = SmpSimRuntime()
    rt.deploy(app)
    buffer = enable_tracing(rt)
    rt.start()
    rt.wait()
    reports = rt.collect()
    rt.stop()
    traced = summarize_durations(intervals(buffer.events()))[("prod", "send")]
    observed = reports[("prod", "middleware")]["send"]
    assert traced["count"] == observed["count"]
    assert traced["mean_ns"] == pytest.approx(observed["mean_ns"], rel=0.01)


def test_tracing_does_not_change_simulated_time():
    """Tracing is observation infrastructure: zero virtual-time cost."""
    app1 = make_pipeline_app()
    rt1 = SmpSimRuntime()
    rt1.run(app1)
    rt1.stop()

    rt2, _ = traced_run()
    assert rt1.makespan_ns == rt2.makespan_ns


def test_enable_tracing_requires_deploy():
    rt = SmpSimRuntime()
    app = make_pipeline_app()
    rt._register(app)  # containers exist but contexts are missing
    with pytest.raises(RuntimeError, match="deployed"):
        enable_tracing(rt)
