"""Trace analyses: timelines, matched intervals, duration summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.trace.events import BEGIN, END, TraceEvent


@dataclass(frozen=True)
class Interval:
    """A matched begin/end pair."""

    component: str
    category: str
    name: str
    start_ns: int
    duration_ns: int
    args: dict


def timeline(events: Iterable[TraceEvent], component: Optional[str] = None) -> List[TraceEvent]:
    """Events in global time order, optionally filtered to one component."""
    picked = [e for e in events if component is None or e.component == component]
    return sorted(picked)


def intervals(events: Iterable[TraceEvent]) -> List[Interval]:
    """Match BEGIN/END pairs per (component, category, name).

    Nested pairs of the same key match LIFO (inner END closes the most
    recent BEGIN).  Unmatched BEGINs are dropped; an END with no open
    BEGIN raises, as it indicates a corrupted trace.
    """
    stacks: Dict[Tuple[str, str, str], List[TraceEvent]] = {}
    out: List[Interval] = []
    for event in sorted(events):
        key = (event.component, event.category, event.name)
        if event.phase == BEGIN:
            stacks.setdefault(key, []).append(event)
        elif event.phase == END:
            stack = stacks.get(key)
            if not stack:
                raise ValueError(f"END without BEGIN for {key} at {event.timestamp_ns}")
            begin = stack.pop()
            out.append(
                Interval(
                    component=event.component,
                    category=event.category,
                    name=event.name,
                    start_ns=begin.timestamp_ns,
                    duration_ns=event.timestamp_ns - begin.timestamp_ns,
                    args=dict(begin.args),
                )
            )
    out.sort(key=lambda iv: (iv.start_ns, iv.component))
    return out


def summarize_durations(ivals: Iterable[Interval]) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Per (component, name) duration statistics over matched intervals."""
    acc: Dict[Tuple[str, str], List[int]] = {}
    for iv in ivals:
        acc.setdefault((iv.component, iv.name), []).append(iv.duration_ns)
    out: Dict[Tuple[str, str], Dict[str, float]] = {}
    for key, durations in acc.items():
        out[key] = {
            "count": len(durations),
            "total_ns": sum(durations),
            "mean_ns": sum(durations) / len(durations),
            "min_ns": min(durations),
            "max_ns": max(durations),
        }
    return out


def busy_fraction(ivals: Iterable[Interval], component: str, span_ns: int) -> float:
    """Fraction of ``span_ns`` the component spent inside intervals.

    Overlapping intervals (compute containing a send, say) are unioned.
    """
    if span_ns <= 0:
        raise ValueError(f"span must be positive, got {span_ns}")
    spans = sorted(
        (iv.start_ns, iv.start_ns + iv.duration_ns)
        for iv in ivals
        if iv.component == component
    )
    busy = 0
    cur_start: Optional[int] = None
    cur_end = 0
    for start, end in spans:
        if cur_start is None:
            cur_start, cur_end = start, end
        elif start <= cur_end:
            cur_end = max(cur_end, end)
        else:
            busy += cur_end - cur_start
            cur_start, cur_end = start, end
    if cur_start is not None:
        busy += cur_end - cur_start
    return min(1.0, busy / span_ns)
