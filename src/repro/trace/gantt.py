"""ASCII Gantt rendering of traced intervals.

One lane per component, time flowing left to right, each cell showing
which operation dominated that time slot -- a terminal-friendly
equivalent of the timeline views of classic trace tools (Pajé, Vampir).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.trace.analysis import Interval

#: Default glyph per operation name; '#' for anything unknown.
DEFAULT_GLYPHS = {
    "send": "s",
    "receive": "r",
    "deposit": "d",
    "huffman_block": "H",
    "idct_block": "I",
    "reorder_block": "R",
}


def render_gantt(
    ivals: Iterable[Interval],
    span_ns: Optional[int] = None,
    width: int = 80,
    components: Optional[Sequence[str]] = None,
    glyphs: Optional[Dict[str, str]] = None,
) -> str:
    """Render intervals as one text lane per component.

    Each of the ``width`` columns covers ``span_ns / width`` of time;
    the glyph shown is the operation that occupied most of that slot
    ('.' = idle).  Components default to first-appearance order.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    ivals = list(ivals)
    glyph_map = dict(DEFAULT_GLYPHS)
    if glyphs:
        glyph_map.update(glyphs)
    if span_ns is None:
        span_ns = max((iv.start_ns + iv.duration_ns for iv in ivals), default=0)
    if span_ns <= 0:
        return "(empty trace)"
    if components is None:
        seen: List[str] = []
        for iv in ivals:
            if iv.component not in seen:
                seen.append(iv.component)
        components = seen

    slot_ns = span_ns / width
    lanes: Dict[str, List[Dict[str, float]]] = {
        c: [dict() for _ in range(width)] for c in components
    }
    for iv in ivals:
        if iv.component not in lanes:
            continue
        end = iv.start_ns + iv.duration_ns
        first = int(iv.start_ns / slot_ns)
        last = min(int(end / slot_ns), width - 1) if iv.duration_ns else first
        for slot in range(first, min(last, width - 1) + 1):
            slot_start = slot * slot_ns
            slot_end = slot_start + slot_ns
            overlap = min(end, slot_end) - max(iv.start_ns, slot_start)
            if overlap <= 0 and iv.duration_ns > 0:
                continue  # interval only touches the slot boundary
            # zero-duration intervals still mark their slot faintly
            occupancy = max(overlap, 1e-9)
            acc = lanes[iv.component][slot]
            acc[iv.name] = acc.get(iv.name, 0.0) + occupancy

    label_w = max(len(c) for c in components)
    lines = [f"{'':{label_w}}  |{'-' * width}| span={span_ns / 1e6:.3f} ms"]
    for comp in components:
        cells = []
        for acc in lanes[comp]:
            if not acc:
                cells.append(".")
            else:
                name = max(acc, key=acc.get)
                cells.append(glyph_map.get(name, "#"))
        lines.append(f"{comp:{label_w}}  |{''.join(cells)}|")
    legend = ", ".join(f"{g}={n}" for n, g in glyph_map.items())
    lines.append(f"{'':{label_w}}  legend: {legend}, .=idle, #=other")
    return "\n".join(lines)
