"""Trace serialisation: JSONL, CSV and the columnar JSON format."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.trace.events import TraceEvent

PathLike = Union[str, Path]


def write_jsonl(events: Iterable[TraceEvent], path: PathLike) -> int:
    """Write one JSON object per line; returns the event count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_dict(), separators=(",", ":")))
            fh.write("\n")
            n += 1
    return n


def read_jsonl(path: PathLike) -> List[TraceEvent]:
    """Load events written by :func:`write_jsonl`."""
    out: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(TraceEvent.from_dict(json.loads(line)))
    return out


def write_columns(trace, path: PathLike) -> int:
    """Serialise a trace in columnar (struct-of-arrays) JSON.

    ``trace`` is a :class:`~repro.trace.tracer.TraceBuffer` or a
    :class:`~repro.trace.tracer.TraceColumns`.  The on-disk layout keeps
    one JSON array per column, which both compresses and parses far
    better than row-per-line JSONL for large traces, and loads straight
    back into the parallel-array form the analyses consume.  Returns the
    event count.
    """
    dropped = getattr(trace, "dropped", 0)
    if hasattr(trace, "columns"):
        trace = trace.columns()
    doc = {
        "format": "repro-trace-columns",
        "version": 1,
        "dropped": dropped,
        "columns": {
            "timestamp_ns": trace.timestamp_ns,
            "seq": trace.seq,
            "component": trace.component,
            "category": trace.category,
            "name": trace.name,
            "phase": trace.phase,
            "args": trace.args,
        },
    }
    Path(path).write_text(json.dumps(doc, separators=(",", ":")), encoding="utf-8")
    return len(trace)


def read_columns(path: PathLike):
    """Load a columnar trace written by :func:`write_columns` back into a
    :class:`~repro.trace.tracer.TraceColumns`."""
    from repro.trace.tracer import TraceColumns

    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("format") != "repro-trace-columns":
        raise ValueError(f"{path}: not a columnar trace file")
    cols = doc["columns"]
    return TraceColumns(
        cols["timestamp_ns"],
        cols["seq"],
        cols["component"],
        cols["category"],
        cols["name"],
        cols["phase"],
        cols["args"],
    )


def write_csv(events: Iterable[TraceEvent], path: PathLike) -> int:
    """Flat CSV export (args serialised as JSON in the last column)."""
    n = 0
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["timestamp_ns", "seq", "component", "category", "name", "phase", "args"])
        for event in events:
            writer.writerow(
                [
                    event.timestamp_ns,
                    event.seq,
                    event.component,
                    event.category,
                    event.name,
                    event.phase,
                    json.dumps(event.args, separators=(",", ":")),
                ]
            )
            n += 1
    return n
