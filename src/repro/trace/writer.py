"""Trace serialisation: JSONL and CSV."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.trace.events import TraceEvent

PathLike = Union[str, Path]


def write_jsonl(events: Iterable[TraceEvent], path: PathLike) -> int:
    """Write one JSON object per line; returns the event count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_dict(), separators=(",", ":")))
            fh.write("\n")
            n += 1
    return n


def read_jsonl(path: PathLike) -> List[TraceEvent]:
    """Load events written by :func:`write_jsonl`."""
    out: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(TraceEvent.from_dict(json.loads(line)))
    return out


def write_csv(events: Iterable[TraceEvent], path: PathLike) -> int:
    """Flat CSV export (args serialised as JSON in the last column)."""
    n = 0
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["timestamp_ns", "seq", "component", "category", "name", "phase", "args"])
        for event in events:
            writer.writerow(
                [
                    event.timestamp_ns,
                    event.seq,
                    event.component,
                    event.category,
                    event.name,
                    event.phase,
                    json.dumps(event.args, separators=(",", ":")),
                ]
            )
            n += 1
    return n
