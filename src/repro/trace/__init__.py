"""Event-trace support: the paper's announced future work.

Section 6: "The current approach for observing is mainly based on
collecting summarized information about the execution.  However, this
information does not give a detailed view of the application behavior.
For this reason, we plan to implement an event-trace-support for
collecting detailed events."

This package implements that support: per-component
:class:`~repro.trace.tracer.Tracer` objects record timestamped
:class:`~repro.trace.events.TraceEvent` records into bounded ring
buffers; writers serialise them (JSONL / CSV); and
:mod:`repro.trace.analysis` reconstructs per-component timelines,
matched begin/end intervals and summary statistics.
"""

from repro.trace.events import BEGIN, END, INSTANT, TraceEvent
from repro.trace.tracer import (
    TraceBuffer,
    TraceColumns,
    Tracer,
    TracingContext,
    enable_sharded_tracing,
    enable_tracing,
    merge_buffers,
)
from repro.trace.writer import read_columns, read_jsonl, write_columns, write_csv, write_jsonl
from repro.trace.analysis import busy_fraction, intervals, summarize_durations, timeline
from repro.trace.causal import (
    HopLatency,
    ItemLatency,
    SpanEdge,
    SpanGraph,
    hop_summary,
    queue_depth_series,
)
from repro.trace.export import write_chrome_trace, write_paje
from repro.trace.gantt import render_gantt

__all__ = [
    "BEGIN",
    "END",
    "INSTANT",
    "HopLatency",
    "ItemLatency",
    "SpanEdge",
    "SpanGraph",
    "TraceBuffer",
    "TraceColumns",
    "TraceEvent",
    "Tracer",
    "TracingContext",
    "busy_fraction",
    "enable_sharded_tracing",
    "enable_tracing",
    "hop_summary",
    "merge_buffers",
    "intervals",
    "queue_depth_series",
    "read_columns",
    "read_jsonl",
    "render_gantt",
    "summarize_durations",
    "timeline",
    "write_chrome_trace",
    "write_columns",
    "write_csv",
    "write_jsonl",
    "write_paje",
]
