"""Causal span-graph analysis over message-level traces.

Every ``send``/``deposit`` stamps a globally unique span id (plus the
sender's current *cause* -- the span whose reception triggered it) into
the message; the tracing context records both on its middleware END
events.  This module rebuilds the resulting edge stream into:

- a :class:`SpanGraph` -- one :class:`SpanEdge` per message, linked by
  cause, with explicit *dropped* / *duplicated* / *delayed* sets fed by
  the fault injector's span-stamped records (lost causality is explicit,
  never silent);
- per-item (e.g. per-frame) end-to-end **latency attribution**: each hop
  split into compute, middleware send, queue wait and middleware receive
  -- the four segments telescope exactly to the measured end-to-end
  latency;
- **critical-path extraction**: the chain of triggering messages behind
  the item's delivery.  At a fan-in (Reorder joining 18 batches) the
  cause link points at the batch whose arrival completed the frame, so
  the chain *is* the longest path through the join;
- **queue-depth time series** per mailbox: +1 at every send END into a
  mailbox, -1 at every receive END out of it -- the backpressure signal.

Everything consumes the columnar trace view (:meth:`TraceBuffer.columns`)
and never materialises per-event objects, so analysing million-event
traces stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.trace.events import BEGIN, END, TraceEvent

#: Fault kinds whose span never reaches a receiver.
_LOSS_KINDS = ("drop", "overflow")


@dataclass
class SpanEdge:
    """One message: its causal identity plus send/receive timestamps."""

    span: int
    cause: int
    src: str                      # sender component
    iface: str                    # sender-side interface name
    mailbox: str                  # destination mailbox (qualified name)
    op: str = "send"              # "send" or "deposit"
    kind: str = "data"
    tag: str = ""
    size_bytes: int = 0
    send_begin_ns: int = 0
    send_end_ns: int = 0
    recv_component: str = ""
    recv_begin_ns: Optional[int] = None
    recv_end_ns: Optional[int] = None
    receptions: int = 0           # >1 means a duplicated delivery

    @property
    def delivered(self) -> bool:
        """True once at least one receive consumed this span."""
        return self.recv_end_ns is not None


@dataclass
class HopLatency:
    """One hop of an item's causal chain, split into its four segments.

    ``compute_ns`` is the time the sender sat on the triggering message
    before emitting this one; ``queue_ns`` the time the message waited in
    the mailbox after the receiver was busy elsewhere; the two middleware
    segments are the send/receive primitive costs.  The segments of a
    chain telescope: their sum over all hops equals the measured
    end-to-end latency exactly.
    """

    edge: SpanEdge
    compute_ns: int = 0
    send_ns: int = 0
    queue_ns: int = 0
    recv_ns: int = 0

    @property
    def total_ns(self) -> int:
        return self.compute_ns + self.send_ns + self.queue_ns + self.recv_ns


@dataclass
class ItemLatency:
    """End-to-end attribution for one delivered item (e.g. one frame)."""

    item_span: int
    tag: str
    start_ns: int                 # root send BEGIN
    end_ns: int                   # final deposit/send END (delivery)
    hops: List[HopLatency] = field(default_factory=list)

    @property
    def e2e_ns(self) -> int:
        """Measured end-to-end latency (delivery minus chain start)."""
        return self.end_ns - self.start_ns

    @property
    def attributed_ns(self) -> int:
        """Sum of all hop segments; equals :attr:`e2e_ns` on a complete
        chain (the telescoping property the tests assert)."""
        return sum(h.total_ns for h in self.hops)

    def breakdown(self) -> Dict[str, int]:
        """Per-segment totals across the whole chain."""
        return {
            "compute_ns": sum(h.compute_ns for h in self.hops),
            "send_ns": sum(h.send_ns for h in self.hops),
            "queue_ns": sum(h.queue_ns for h in self.hops),
            "recv_ns": sum(h.recv_ns for h in self.hops),
        }


def _columns_of(trace):
    """Accept a TraceBuffer, TraceColumns or an iterable of TraceEvent."""
    columns = getattr(trace, "columns", None)
    if callable(columns):
        return columns()
    if hasattr(trace, "timestamp_ns"):  # already a TraceColumns
        return trace
    events = sorted(trace)
    from repro.trace.tracer import TraceColumns

    return TraceColumns(
        [e.timestamp_ns for e in events],
        [e.seq for e in events],
        [e.component for e in events],
        [e.category for e in events],
        [e.name for e in events],
        [e.phase for e in events],
        [e.args for e in events],
    )


class SpanGraph:
    """The causal message graph reconstructed from one trace."""

    def __init__(self) -> None:
        self.edges: Dict[int, SpanEdge] = {}
        #: cause span -> spans it triggered.
        self.children: Dict[int, List[int]] = {}
        #: span -> fault kind, for spans the injector dropped in transport.
        self.dropped: Dict[int, str] = {}
        #: spans the injector delivered twice.
        self.duplicated: set = set()
        #: spans the injector held back before delivery.
        self.delayed: set = set()
        #: spans consumed by a component that then crashed on them.
        self.crashed: set = set()
        #: replica span -> original span, for messages the recovery
        #: manager retransmitted (each replica's receive edge carries the
        #: original send's span as its cause -- the causal replay link).
        self.replayed: Dict[int, int] = {}
        #: spans discarded by delivery-sequence dedup (injected
        #: duplicates and post-restart re-sends).
        self.deduped: set = set()

    # -- construction -------------------------------------------------------

    @classmethod
    def from_trace(cls, trace) -> "SpanGraph":
        """Build the graph from a TraceBuffer / columns / event iterable."""
        cols = _columns_of(trace)
        graph = cls()
        edges = graph.edges
        begins: Dict[Tuple[str, str, str], List[dict]] = {}
        n = len(cols.timestamp_ns)
        ts_col, comp_col = cols.timestamp_ns, cols.component
        cat_col, name_col, ph_col, args_col = cols.category, cols.name, cols.phase, cols.args
        for i in range(n):
            cat = cat_col[i]
            if cat == "middleware":
                name = name_col[i]
                if name not in ("send", "receive", "deposit"):
                    continue
                args = args_col[i]
                key = (comp_col[i], name, args.get("iface", ""))
                if ph_col[i] == BEGIN:
                    begins.setdefault(key, []).append(
                        {"ts": ts_col[i], "tag": args.get("tag", "")}
                    )
                    continue
                if ph_col[i] != END:
                    continue
                span = args.get("span")
                stack = begins.get(key)
                begin = stack.pop() if stack else {"ts": ts_col[i], "tag": ""}
                if span is None:
                    continue  # untraced delegate (e.g. deadline-expired receive)
                if name == "receive":
                    edge = edges.get(span)
                    if edge is None:
                        # Reception of a span whose send predates the trace
                        # (ring truncation): keep a partial edge.
                        edge = edges[span] = SpanEdge(
                            span=span, cause=args.get("cause", 0),
                            src=args.get("src", ""), iface=key[2],
                            mailbox=args.get("mbox", ""),
                        )
                        graph.children.setdefault(edge.cause, []).append(span)
                    edge.receptions += 1
                    if edge.recv_end_ns is None:
                        edge.recv_component = comp_col[i]
                        edge.recv_begin_ns = begin["ts"]
                        edge.recv_end_ns = ts_col[i]
                else:  # send / deposit
                    edge = SpanEdge(
                        span=span,
                        cause=args.get("cause", 0),
                        src=comp_col[i],
                        iface=key[2],
                        mailbox=args.get("dst", ""),
                        op=name,
                        kind=args.get("kind", "data"),
                        tag=begin["tag"] or args.get("tag", ""),
                        size_bytes=args.get("size", 0),
                        send_begin_ns=begin["ts"],
                        send_end_ns=ts_col[i],
                    )
                    prior = edges.get(span)
                    if prior is not None and prior.receptions:
                        # receive seen before its send (interleaved threads)
                        edge.receptions = prior.receptions
                        edge.recv_component = prior.recv_component
                        edge.recv_begin_ns = prior.recv_begin_ns
                        edge.recv_end_ns = prior.recv_end_ns
                    edges[span] = edge
                    graph.children.setdefault(edge.cause, []).append(span)
            elif cat == "fault":
                span = args_col[i].get("span")
                if not span:
                    continue
                name = name_col[i]
                if name in _LOSS_KINDS:
                    graph.dropped[span] = name
                elif name == "duplicate":
                    graph.duplicated.add(span)
                elif name == "delay":
                    graph.delayed.add(span)
                elif name == "crash":
                    graph.crashed.add(span)
            elif cat == "recovery":
                args = args_col[i]
                name = name_col[i]
                if name == "replay":
                    span, orig = args.get("span"), args.get("orig")
                    if span and orig:
                        graph.replayed[span] = orig
                elif name == "dedup":
                    span = args.get("span")
                    if span:
                        graph.deduped.add(span)
        return graph

    # -- queries ------------------------------------------------------------

    def lost_spans(self) -> List[int]:
        """Spans sent but never received and not explicitly dropped --
        messages still in flight when the trace ended (e.g. left in a
        crashed component's mailbox)."""
        return sorted(
            span
            for span, edge in self.edges.items()
            if edge.op == "send" and not edge.delivered and span not in self.dropped
        )

    def chain(self, span: int) -> List[SpanEdge]:
        """The causal chain ending at ``span``, root first.

        Follows cause links while the previous message was received by
        the next sender (a contiguous chain); stops at a root (cause 0)
        or at a span missing from the trace.
        """
        out: List[SpanEdge] = []
        seen = set()
        edge = self.edges.get(span)
        while edge is not None and edge.span not in seen:
            seen.add(edge.span)
            out.append(edge)
            prev = self.edges.get(edge.cause)
            if prev is None or prev.recv_component != edge.src:
                break
            edge = prev
        out.reverse()
        return out

    def items(self, tag: str = "frame") -> List[int]:
        """Spans of delivered items: deposit edges carrying ``tag``,
        in delivery order."""
        spans = [
            e.span for e in self.edges.values() if e.op == "deposit" and e.tag == tag
        ]
        spans.sort(key=lambda s: self.edges[s].send_end_ns)
        return spans

    def attribute(self, item_span: int) -> ItemLatency:
        """End-to-end latency attribution for one delivered item.

        Walks the item's causal chain and splits every hop into compute /
        middleware-send / queue-wait / middleware-receive.  The segments
        telescope: ``attributed_ns == e2e_ns`` on a contiguous chain.
        """
        chain = self.chain(item_span)
        if not chain:
            raise KeyError(f"span {item_span} not in graph")
        item = ItemLatency(
            item_span=item_span,
            tag=chain[-1].tag,
            start_ns=chain[0].send_begin_ns,
            end_ns=chain[-1].send_end_ns,
        )
        prev: Optional[SpanEdge] = None
        for edge in chain:
            hop = HopLatency(edge=edge)
            if prev is not None and prev.recv_end_ns is not None:
                hop.compute_ns = max(0, edge.send_begin_ns - prev.recv_end_ns)
            hop.send_ns = edge.send_end_ns - edge.send_begin_ns
            if edge.recv_end_ns is not None:
                hop.queue_ns = max(0, edge.recv_begin_ns - edge.send_end_ns)
                hop.recv_ns = edge.recv_end_ns - max(edge.recv_begin_ns, edge.send_end_ns)
            item.hops.append(hop)
            prev = edge
        return item

    def attribute_items(self, tag: str = "frame") -> List[ItemLatency]:
        """Latency attribution for every delivered item carrying ``tag``."""
        return [self.attribute(span) for span in self.items(tag)]

    def critical_path(self, tag: str = "frame") -> Optional[ItemLatency]:
        """The slowest delivered item's full attribution -- the critical
        path of the run."""
        items = self.attribute_items(tag)
        if not items:
            return None
        return max(items, key=lambda it: it.e2e_ns)


def hop_summary(items: Iterable[ItemLatency]) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Aggregate hop segments over many items, keyed by (component, iface).

    The per-hop means answer *which hop dominates*: compare ``total_ns``
    across keys; within a hop compare queue wait vs middleware vs compute.
    """
    acc: Dict[Tuple[str, str], Dict[str, float]] = {}
    for item in items:
        for hop in item.hops:
            key = (hop.edge.src, hop.edge.iface)
            slot = acc.setdefault(
                key,
                {"count": 0, "compute_ns": 0, "send_ns": 0, "queue_ns": 0,
                 "recv_ns": 0, "total_ns": 0, "max_total_ns": 0},
            )
            slot["count"] += 1
            slot["compute_ns"] += hop.compute_ns
            slot["send_ns"] += hop.send_ns
            slot["queue_ns"] += hop.queue_ns
            slot["recv_ns"] += hop.recv_ns
            slot["total_ns"] += hop.total_ns
            slot["max_total_ns"] = max(slot["max_total_ns"], hop.total_ns)
    for slot in acc.values():
        n = slot["count"]
        for seg in ("compute_ns", "send_ns", "queue_ns", "recv_ns", "total_ns"):
            slot[f"mean_{seg}"] = slot[seg] / n
    return acc


def queue_depth_series(trace) -> Dict[str, List[Tuple[int, int]]]:
    """Per-mailbox queue-depth time series from the edge stream.

    Depth rises at every send/deposit END into the mailbox and falls at
    every receive END out of it: ``{mailbox: [(t_ns, depth), ...]}`` in
    chronological order.  A mailbox nobody drains (e.g. the display sink)
    shows monotone growth -- that *is* the backpressure signal.
    """
    cols = _columns_of(trace)
    out: Dict[str, List[Tuple[int, int]]] = {}
    depth: Dict[str, int] = {}
    n = len(cols.timestamp_ns)
    for i in range(n):
        if cols.category[i] != "middleware" or cols.phase[i] != END:
            continue
        args = cols.args[i]
        name = cols.name[i]
        if name in ("send", "deposit"):
            mailbox = args.get("dst", "")
            delta = 1
        elif name == "receive":
            mailbox = args.get("mbox", "")
            delta = -1
        else:
            continue
        if not mailbox or "span" not in args:
            continue
        d = depth.get(mailbox, 0) + delta
        depth[mailbox] = d
        out.setdefault(mailbox, []).append((cols.timestamp_ns[i], d))
    return out
