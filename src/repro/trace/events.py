"""Trace event records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

BEGIN = "B"
INSTANT = "I"
END = "E"

_PHASES = (BEGIN, INSTANT, END)


@dataclass(frozen=True, order=True)
class TraceEvent:
    """One timestamped event.

    Ordering is by timestamp then sequence, so merged multi-component
    traces sort into a coherent global timeline.
    """

    timestamp_ns: int
    seq: int
    component: str = field(compare=False)
    category: str = field(compare=False)  # e.g. "middleware", "lifecycle"
    name: str = field(compare=False)      # e.g. "send", "receive", "compute"
    phase: str = field(compare=False, default=INSTANT)
    args: Dict[str, Any] = field(compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.phase not in _PHASES:
            raise ValueError(f"unknown phase {self.phase!r}; expected one of {_PHASES}")
        if self.timestamp_ns < 0:
            raise ValueError(f"negative timestamp {self.timestamp_ns}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict form."""
        return {
            "ts": self.timestamp_ns,
            "seq": self.seq,
            "comp": self.component,
            "cat": self.category,
            "name": self.name,
            "ph": self.phase,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TraceEvent":
        """Inverse of ``to_dict``."""
        return cls(
            timestamp_ns=d["ts"],
            seq=d["seq"],
            component=d["comp"],
            category=d["cat"],
            name=d["name"],
            phase=d["ph"],
            args=dict(d.get("args", {})),
        )
