"""Interoperable trace exports: Pajé and Chrome trace-event format.

- **Pajé** is the self-defined trace format of the Grenoble/MESCAL
  tradition the paper comes from; the export here emits the standard
  event-definition header plus PajeSetState state changes, loadable by
  Pajé/ViTE-class viewers.
- **Chrome trace-event JSON** loads into ``chrome://tracing`` / Perfetto:
  each component becomes a thread, BEGIN/END become ``B``/``E`` events.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.trace.events import BEGIN, END, INSTANT, TraceEvent

PathLike = Union[str, Path]

_PAJE_HEADER = """\
%EventDef PajeDefineContainerType 1
%  Alias string
%  ContainerType string
%  Name string
%EndEventDef
%EventDef PajeDefineStateType 2
%  Alias string
%  ContainerType string
%  Name string
%EndEventDef
%EventDef PajeCreateContainer 3
%  Time date
%  Alias string
%  Type string
%  Container string
%  Name string
%EndEventDef
%EventDef PajeSetState 4
%  Time date
%  Container string
%  Type string
%  Value string
%EndEventDef
"""


def write_paje(events: Iterable[TraceEvent], path: PathLike) -> int:
    """Export BEGIN/END pairs as Pajé state changes.

    Containers are components; the state value is the operation name
    while inside an interval and ``idle`` outside.  Returns the number
    of PajeSetState records written.
    """
    events = sorted(events)
    components: List[str] = []
    for e in events:
        if e.component not in components:
            components.append(e.component)

    lines = [_PAJE_HEADER]
    lines.append('1 CT_Comp "0" "Component"')
    lines.append('2 ST_Op CT_Comp "Operation"')
    for comp in components:
        lines.append(f'3 0.000000 C_{comp} CT_Comp 0 "{comp}"')

    n = 0
    depth = {c: 0 for c in components}
    for e in events:
        t = e.timestamp_ns / 1e9
        if e.phase == BEGIN:
            depth[e.component] += 1
            lines.append(f'4 {t:.9f} C_{e.component} ST_Op "{e.name}"')
            n += 1
        elif e.phase == END:
            depth[e.component] = max(0, depth[e.component] - 1)
            if depth[e.component] == 0:
                lines.append(f'4 {t:.9f} C_{e.component} ST_Op "idle"')
                n += 1
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return n


def write_chrome_trace(events: Iterable[TraceEvent], path: PathLike) -> int:
    """Export to the Chrome trace-event JSON array format.

    Load the result in ``chrome://tracing`` or https://ui.perfetto.dev.
    Span-stamped middleware events additionally emit **flow events**
    (``ph: s``/``f``), so every send draws a causal arrow to its receive
    across component tracks.  Returns the number of records written.
    """
    records = []
    tids = {}
    for e in sorted(events):
        tid = tids.setdefault(e.component, len(tids) + 1)
        if e.phase == BEGIN:
            ph = "B"
        elif e.phase == END:
            ph = "E"
        else:
            ph = "i"
        record = {
            "name": e.name,
            "cat": e.category,
            "ph": ph,
            "ts": e.timestamp_ns / 1_000,  # microseconds
            "pid": 1,
            "tid": tid,
        }
        if e.args and ph != "E":
            record["args"] = e.args
        if ph == "i":
            record["s"] = "t"
        records.append(record)
        if ph == "E" and e.category == "middleware" and "span" in e.args:
            span = e.args["span"]
            flow = {
                "name": "msg",
                "cat": "causal",
                "ts": record["ts"],
                "pid": 1,
                "tid": tid,
                "id": span,
            }
            if e.name in ("send", "deposit"):
                flow["ph"] = "s"
                records.append(flow)
            elif e.name == "receive":
                # Bind to the enclosing slice's end so the arrow lands on
                # the receive interval itself.
                flow["ph"] = "f"
                flow["bp"] = "e"
                records.append(flow)
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": comp},
        }
        for comp, tid in tids.items()
    ]
    Path(path).write_text(json.dumps(meta + records), encoding="utf-8")
    return len(records)
