"""Tracers, ring buffers and the tracing context wrapper."""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Generator, Iterable, List, Optional

from repro.trace.events import BEGIN, END, INSTANT, TraceEvent


class TraceBuffer:
    """A bounded ring buffer of events shared by several tracers.

    Embedded targets cannot keep unbounded traces; when full, the oldest
    events are dropped and counted, so analyses can report truncation
    instead of silently lying.

    The buffer stores whatever the tracers hand it -- in the hot path
    that is a plain tuple, materialised into a :class:`TraceEvent` (with
    its validation) only when :meth:`events` is called.
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.dropped = 0
        self._seq = 0

    def append(self, event: TraceEvent) -> None:
        """Add an event, dropping the oldest when full."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def next_seq(self) -> int:
        """Next global sequence number."""
        self._seq += 1
        return self._seq

    def events(self) -> List[TraceEvent]:
        """All buffered events (oldest first), materialising any raw
        tuples emitted through the allocation-light fast path."""
        return [
            e if type(e) is TraceEvent else TraceEvent(*e) for e in self._events
        ]

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        """Drop all events and reset the dropped counter."""
        self._events.clear()
        self.dropped = 0


class Tracer:
    """Per-component event emitter."""

    __slots__ = ("buffer", "component", "clock")

    def __init__(self, buffer: TraceBuffer, component: str, clock) -> None:
        self.buffer = buffer
        self.component = component
        self.clock = clock  # zero-arg callable -> ns

    def emit(
        self,
        category: str,
        name: str,
        phase: str = INSTANT,
        **args: Any,
    ) -> None:
        """Record one event stamped with the clock and sequence.

        Allocation-light: the event is buffered as a plain tuple -- no
        dataclass construction, no validation -- and becomes a
        :class:`TraceEvent` only if the buffer is read back.  On a
        simulated run with tracing enabled this is the single hottest
        observation call."""
        buffer = self.buffer
        events = buffer._events
        if len(events) == buffer.capacity:
            buffer.dropped += 1
        buffer._seq += 1
        events.append(
            (self.clock(), buffer._seq, self.component, category, name, phase, args)
        )


class TracingContext:
    """Wraps a runtime context, tracing sends/receives/computes.

    Installed by :func:`enable_tracing` between ``deploy`` and ``start``;
    behaviour code is -- as always -- untouched.
    """

    def __init__(self, delegate, tracer: Tracer) -> None:
        self._delegate = delegate
        self._tracer = tracer

    # Everything not traced is forwarded untouched.
    def __getattr__(self, item):
        return getattr(self._delegate, item)

    def send(self, required_name: str, payload, kind: str = "data", tag: str = "", size_bytes: int = -1) -> Generator:
        """Traced send: BEGIN/END events around the delegate call."""
        self._tracer.emit("middleware", "send", BEGIN, iface=required_name, kind=kind, tag=tag)
        try:
            yield from self._delegate.send(required_name, payload, kind=kind, tag=tag, size_bytes=size_bytes)
        finally:
            self._tracer.emit("middleware", "send", END, iface=required_name)

    def receive(self, provided_name: str, timeout_ns: Optional[int] = None) -> Generator:
        """Traced receive: BEGIN/END events around the delegate call."""
        self._tracer.emit("middleware", "receive", BEGIN, iface=provided_name)
        try:
            message = yield from self._delegate.receive(provided_name, timeout_ns=timeout_ns)
        finally:
            self._tracer.emit("middleware", "receive", END, iface=provided_name)
        return message

    def deposit(self, provided_name: str, payload, kind: str = "data", tag: str = "") -> Generator:
        """Traced deposit: BEGIN/END events around the delegate call."""
        self._tracer.emit("middleware", "deposit", BEGIN, iface=provided_name)
        try:
            yield from self._delegate.deposit(provided_name, payload, kind=kind, tag=tag)
        finally:
            self._tracer.emit("middleware", "deposit", END, iface=provided_name)

    def compute(self, opclass: str, units: float) -> Generator:
        """Declare computational work (see ComponentContext.compute)."""
        self._tracer.emit("compute", opclass, BEGIN, units=units)
        try:
            yield from self._delegate.compute(opclass, units)
        finally:
            self._tracer.emit("compute", opclass, END)


def enable_tracing(runtime, buffer: Optional[TraceBuffer] = None) -> TraceBuffer:
    """Install tracing contexts on every deployed component.

    Call after ``runtime.deploy(app)`` and before ``runtime.start()``.
    Returns the buffer collecting the events.
    """
    buffer = buffer or TraceBuffer()
    for cont in runtime.containers.values():
        if cont.context is None:
            raise RuntimeError("enable_tracing requires a deployed application")
        tracer = Tracer(buffer, cont.component.name, cont.context.now_ns)
        cont.context = TracingContext(cont.context, tracer)
        cont.extra["tracer"] = tracer
    return buffer
