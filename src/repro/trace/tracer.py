"""Tracers, the columnar ring buffer and the tracing context wrapper.

The buffer is a two-layer store:

- **Write path** (hot): :meth:`Tracer.emit` appends one plain row tuple
  ``(ts, seq, component, category, name, phase, args)`` into a bounded
  ring of rows -- one allocation, one list operation, no dataclass, no
  validation.
- **Read path** (columnar): :meth:`TraceBuffer.columns` transposes the
  rows once into cached parallel arrays (a :class:`TraceColumns`), which
  is what the causal analysis and the exporters consume -- big traces
  stay flat, with zero per-event object builds.  :meth:`events` remains
  as the compatibility view materialising :class:`TraceEvent` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterator, List, Optional, Tuple

from repro.trace.events import BEGIN, END, INSTANT, TraceEvent

#: Row layout (index -> field) of the buffer's raw storage.
ROW_FIELDS = ("timestamp_ns", "seq", "component", "category", "name", "phase", "args")


@dataclass
class TraceColumns:
    """Parallel-array (struct-of-arrays) view over one trace.

    Every attribute is a list with one entry per event, all the same
    length and in global (timestamp, seq) order.  Built once per buffer
    generation and cached; treat as read-only.
    """

    timestamp_ns: List[int]
    seq: List[int]
    component: List[str]
    category: List[str]
    name: List[str]
    phase: List[str]
    args: List[Dict[str, Any]]

    def __len__(self) -> int:
        return len(self.timestamp_ns)


class TraceBuffer:
    """A bounded ring buffer of events shared by several tracers.

    Embedded targets cannot keep unbounded traces; when full, the oldest
    events are dropped and counted, so analyses can report truncation
    instead of silently lying.
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rows: List[tuple] = []
        self._head = 0  # index of the oldest row once the ring has wrapped
        self.dropped = 0
        self._seq = 0
        self._columns: Optional[TraceColumns] = None

    def append(self, event) -> None:
        """Add an event (a :class:`TraceEvent` or a raw row tuple),
        dropping the oldest when full."""
        if type(event) is not tuple:
            event = (
                event.timestamp_ns,
                event.seq,
                event.component,
                event.category,
                event.name,
                event.phase,
                event.args,
            )
        self._columns = None
        rows = self._rows
        if len(rows) < self.capacity:
            rows.append(event)
        else:
            head = self._head
            rows[head] = event
            self._head = (head + 1) % self.capacity
            self.dropped += 1

    def next_seq(self) -> int:
        """Next global sequence number."""
        self._seq += 1
        return self._seq

    def rows(self) -> List[tuple]:
        """All buffered raw rows, oldest first (see :data:`ROW_FIELDS`).

        Sim traces come out pre-sorted (virtual time is monotone); native
        multi-thread traces are sorted defensively by (timestamp, seq).
        """
        rows = self._rows
        head = self._head
        if head:
            rows = rows[head:] + rows[:head]
        for i in range(1, len(rows)):
            if rows[i - 1][:2] > rows[i][:2]:
                rows = sorted(rows, key=lambda r: (r[0], r[1]))
                break
        return rows

    def columns(self) -> TraceColumns:
        """The columnar (parallel arrays) view; cached until the next
        write.  One C-level transpose, no per-event objects."""
        if self._columns is None:
            rows = self.rows()
            if rows:
                ts, seq, comp, cat, name, phase, args = map(list, zip(*rows))
            else:
                ts, seq, comp, cat, name, phase, args = [], [], [], [], [], [], []
            self._columns = TraceColumns(ts, seq, comp, cat, name, phase, args)
        return self._columns

    def events(self) -> List[TraceEvent]:
        """All buffered events (oldest first) as validated
        :class:`TraceEvent` records -- the compatibility view."""
        return [TraceEvent(*row) for row in self.rows()]

    def __len__(self) -> int:
        return len(self._rows)

    def clear(self) -> None:
        """Drop all events, reset the dropped counter *and* the sequence
        counter -- a cleared buffer starts a fresh trace, so reusing it
        cannot produce colliding sequence numbers in merged traces."""
        self._rows.clear()
        self._head = 0
        self.dropped = 0
        self._seq = 0
        self._columns = None


class Tracer:
    """Per-component event emitter."""

    __slots__ = ("buffer", "component", "clock")

    def __init__(self, buffer: TraceBuffer, component: str, clock) -> None:
        self.buffer = buffer
        self.component = component
        self.clock = clock  # zero-arg callable -> ns

    def emit(
        self,
        category: str,
        name: str,
        phase: str = INSTANT,
        **args: Any,
    ) -> None:
        """Record one event stamped with the clock and sequence.

        Allocation-light: the event is buffered as a plain row tuple --
        no dataclass construction, no validation -- and becomes columnar
        or :class:`TraceEvent` form only when the buffer is read back.
        On a simulated run with tracing enabled this is the single
        hottest observation call."""
        buffer = self.buffer
        buffer._seq += 1
        buffer._columns = None
        row = (self.clock(), buffer._seq, self.component, category, name, phase, args)
        rows = buffer._rows
        if len(rows) < buffer.capacity:
            rows.append(row)
        else:
            head = buffer._head
            rows[head] = row
            buffer._head = (head + 1) % buffer.capacity
            buffer.dropped += 1


class TracingContext:
    """Wraps a runtime context, tracing sends/receives/computes.

    Installed by :func:`enable_tracing` between ``deploy`` and ``start``;
    behaviour code is -- as always -- untouched.  END events of the
    middleware operations carry the causal identity of the message
    (``span``/``cause``), its destination mailbox and size, which is what
    :mod:`repro.trace.causal` reconstructs chains and queue depths from.
    """

    def __init__(self, delegate, tracer: Tracer) -> None:
        self._delegate = delegate
        self._tracer = tracer

    # Everything not traced is forwarded untouched.
    def __getattr__(self, item):
        return getattr(self._delegate, item)

    def _dst_of(self, required_name: str) -> str:
        req = self._delegate.component.get_required(required_name)
        return req.target.qualified_name if req.target is not None else ""

    def send(self, required_name: str, payload, kind: str = "data", tag: str = "", size_bytes: int = -1) -> Generator:
        """Traced send: BEGIN/END events around the delegate call."""
        delegate = self._delegate
        self._tracer.emit("middleware", "send", BEGIN, iface=required_name, kind=kind, tag=tag)
        before = delegate.last_message
        try:
            yield from delegate.send(required_name, payload, kind=kind, tag=tag, size_bytes=size_bytes)
        finally:
            m = delegate.last_message
            if m is not None and m is not before:
                self._tracer.emit(
                    "middleware", "send", END, iface=required_name,
                    span=m.span, cause=m.cause, dst=self._dst_of(required_name),
                    size=m.size_bytes, kind=m.kind,
                )
            else:
                self._tracer.emit("middleware", "send", END, iface=required_name)

    def receive(self, provided_name: str, timeout_ns: Optional[int] = None) -> Generator:
        """Traced receive: BEGIN/END events around the delegate call."""
        delegate = self._delegate
        self._tracer.emit("middleware", "receive", BEGIN, iface=provided_name)
        message = None
        try:
            message = yield from delegate.receive(provided_name, timeout_ns=timeout_ns)
        finally:
            if message is not None:
                self._tracer.emit(
                    "middleware", "receive", END, iface=provided_name,
                    span=message.span, cause=message.cause, src=message.src,
                    mbox=f"{delegate.component.name}.{provided_name}", kind=message.kind,
                )
            else:
                self._tracer.emit("middleware", "receive", END, iface=provided_name)
        return message

    def deposit(self, provided_name: str, payload, kind: str = "data", tag: str = "") -> Generator:
        """Traced deposit: BEGIN/END events around the delegate call."""
        delegate = self._delegate
        self._tracer.emit("middleware", "deposit", BEGIN, iface=provided_name, kind=kind, tag=tag)
        before = delegate.last_message
        try:
            yield from delegate.deposit(provided_name, payload, kind=kind, tag=tag)
        finally:
            m = delegate.last_message
            if m is not None and m is not before:
                self._tracer.emit(
                    "middleware", "deposit", END, iface=provided_name,
                    span=m.span, cause=m.cause,
                    dst=f"{delegate.component.name}.{provided_name}",
                    size=m.size_bytes, tag=tag,
                )
            else:
                self._tracer.emit("middleware", "deposit", END, iface=provided_name)

    def try_receive(self, provided_name: str):
        """Traced non-blocking receive.  A *successful* poll emits the
        same BEGIN/END pair (zero duration, ``poll=True``) as a blocking
        receive, so polling consumers still produce the -1 edge the
        queue-depth series needs.  Empty polls move no message and stay
        untraced -- a polling loop must not flood the ring buffer."""
        delegate = self._delegate
        message = delegate.try_receive(provided_name)
        if message is not None:
            self._tracer.emit("middleware", "receive", BEGIN, iface=provided_name, poll=True)
            self._tracer.emit(
                "middleware", "receive", END, iface=provided_name,
                span=message.span, cause=message.cause, src=message.src,
                mbox=f"{delegate.component.name}.{provided_name}", kind=message.kind,
                poll=True,
            )
        return message

    def compute(self, opclass: str, units: float) -> Generator:
        """Declare computational work (see ComponentContext.compute)."""
        self._tracer.emit("compute", opclass, BEGIN, units=units)
        try:
            yield from self._delegate.compute(opclass, units)
        finally:
            self._tracer.emit("compute", opclass, END)


def enable_tracing(runtime, buffer: Optional[TraceBuffer] = None) -> TraceBuffer:
    """Install tracing contexts on every deployed component.

    Call after ``runtime.deploy(app)`` and before ``runtime.start()``.
    Returns the buffer collecting the events.
    """
    buffer = buffer or TraceBuffer()
    for cont in runtime.containers.values():
        if cont.context is None:
            raise RuntimeError("enable_tracing requires a deployed application")
        tracer = Tracer(buffer, cont.component.name, cont.context.now_ns)
        cont.context = TracingContext(cont.context, tracer)
        cont.extra["tracer"] = tracer
    return buffer


def enable_sharded_tracing(runtime) -> List[TraceBuffer]:
    """Install tracing on a sharded runtime: one buffer per shard.

    A shared buffer would interleave its sequence numbers in sweep
    execution order -- different for every shard count.  Per-shard
    buffers keep each shard's trace self-consistent; combine them with
    :func:`merge_buffers` afterwards.  Span/cause ids inside the events
    already come from per-shard ranges, so the merged trace has no
    collisions.  Returns the buffer list, indexed by shard.
    """
    buffers = [TraceBuffer() for _ in range(runtime.n_shards)]
    for cont in runtime.containers.values():
        if cont.context is None:
            raise RuntimeError("enable_sharded_tracing requires a deployed application")
        buffer = buffers[cont.extra["shard"]]
        tracer = Tracer(buffer, cont.component.name, cont.context.now_ns)
        cont.context = TracingContext(cont.context, tracer)
        cont.extra["tracer"] = tracer
    return buffers


def merge_buffers(
    buffers: List[TraceBuffer],
    clock_offsets_ns: Optional[List[int]] = None,
) -> TraceBuffer:
    """Columnar k-way merge of per-shard trace buffers into one trace.

    Rows are ordered by ``(aligned timestamp, shard index, shard-local
    seq)`` and re-sequenced globally, so the merged trace satisfies the
    same ``(timestamp, seq)`` contract as a single-kernel trace and
    every downstream analysis (span graphs, exporters, gantt) works
    unchanged.  ``clock_offsets_ns`` aligns shard clocks when they do
    not share an epoch (one additive offset per buffer, default 0 --
    simulation shards synchronize to a common virtual time, native
    shards may not).  Dropped-event counts are carried over.
    """
    if clock_offsets_ns is None:
        offsets = [0] * len(buffers)
    else:
        offsets = list(clock_offsets_ns)
        if len(offsets) != len(buffers):
            raise ValueError(
                f"{len(buffers)} buffers but {len(offsets)} clock offsets"
            )
    tagged = []
    dropped = 0
    for shard, buf in enumerate(buffers):
        dropped += buf.dropped
        off = offsets[shard]
        for row in buf.rows():
            tagged.append((row[0] + off, shard, row[1], row))
    tagged.sort(key=lambda entry: entry[:3])
    merged = TraceBuffer(capacity=max(1, sum(b.capacity for b in buffers)))
    for ts, _shard, _seq, row in tagged:
        merged.append((ts, merged.next_seq()) + row[2:])
    merged.dropped += dropped
    return merged
