"""EMBera reproduction: component-based observation of MPSoC.

Reproduction of C. Prada-Rojas et al., "Towards a Component-based
Observation of MPSoC" (INRIA RR-6905 / ICPP 2009).

The package is organised as:

- :mod:`repro.core` -- the EMBera component model and observation layer
  (the paper's contribution).
- :mod:`repro.sim` -- deterministic discrete-event simulation kernel.
- :mod:`repro.hw` -- hardware platform models (16-core NUMA SMP, STi7200).
- :mod:`repro.oslinux` / :mod:`repro.os21` -- operating-system substrates.
- :mod:`repro.embx` -- EMBX-like shared-memory middleware.
- :mod:`repro.runtime` -- native (threads) and simulated runtimes.
- :mod:`repro.mjpeg` -- Motion-JPEG codec and the componentized decoder.
- :mod:`repro.trace` -- event-trace extension (paper's future work).
- :mod:`repro.metrics` -- counters, timers and report tables.
- :mod:`repro.baselines` -- KPTrace-like low-level tracer baseline.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
