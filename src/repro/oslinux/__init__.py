"""Linux-like operating-system substrate for the simulated SMP platform.

Models the slice of Linux 2.6 the paper's EMBera implementation relies on:
POSIX-thread creation/join with stack-size attributes, a time-sharing SMP
scheduler, ``gettimeofday``, and per-process heap accounting -- the
observation functions of paper section 4.2 are all answerable from here.
"""

from repro.oslinux.system import DEFAULT_STACK_BYTES, LinuxProcess, LinuxSystem, PThread

__all__ = ["DEFAULT_STACK_BYTES", "LinuxProcess", "LinuxSystem", "PThread"]
