"""Linux-like OS: processes, POSIX-style threads, gettimeofday.

The paper measured a default pthread stack of 8 392 kB on its platform
(section 4.4); that value is the default here so the memory-observation
numbers of Table 1 fall out of the same accounting path.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, Optional

from repro.hw.platform import Platform
from repro.sim.executor import ExecEngine, FairPolicy, RoundRobinPolicy, SchedThread
from repro.sim.kernel import Kernel
from repro.sim.process import Command, WaitEvent

#: Default pthread stack size observed by the paper (8 392 kB).
DEFAULT_STACK_BYTES = 8392 * 1024


class PThread:
    """A POSIX-thread handle: scheduling state plus stack attributes."""

    __slots__ = ("tid", "name", "stack_bytes", "sched", "process", "_stack_handle")

    def __init__(
        self,
        tid: int,
        name: str,
        stack_bytes: int,
        sched: SchedThread,
        process: "LinuxProcess",
        stack_handle: int,
    ) -> None:
        self.tid = tid
        self.name = name
        self.stack_bytes = stack_bytes
        self.sched = sched
        self.process = process
        self._stack_handle = stack_handle

    # pthread_attr_getstacksize analogue (paper's memory observation).
    def attr_getstacksize(self) -> int:
        """The configured stack size (pthread attribute semantics)."""
        return self.stack_bytes

    @property
    def alive(self) -> bool:
        """True while still executing."""
        return self.sched.alive

    def cpu_time_ns(self) -> int:
        """Accumulated CPU time of the underlying thread."""
        return self.sched.cpu_time_ns

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PThread {self.tid} {self.name!r}>"


class LinuxProcess:
    """A user process: an address space (heap accounting) plus threads."""

    def __init__(self, system: "LinuxSystem", pid: int, name: str, home_node: int = 0) -> None:
        self.system = system
        self.pid = pid
        self.name = name
        self.home_node = home_node
        self.threads: Dict[int, PThread] = {}
        self._heap: Dict[int, tuple] = {}
        self._next_ptr = 1
        self.heap_bytes = 0
        self.heap_peak = 0

    # -- memory -------------------------------------------------------------

    def malloc(self, nbytes: int, label: str = "heap", node: Optional[int] = None) -> int:
        """Allocate from the region of ``node`` (default: the home node)."""
        region = self.system.node_region(self.home_node if node is None else node)
        handle = region.alloc(nbytes, label=f"{self.name}:{label}", time_ns=self.system.kernel.now)
        ptr = self._next_ptr
        self._next_ptr += 1
        self._heap[ptr] = (handle, region, nbytes)
        self.heap_bytes += nbytes
        self.heap_peak = max(self.heap_peak, self.heap_bytes)
        return ptr

    def mfree(self, ptr: int) -> None:
        """Release a ``malloc`` allocation."""
        handle, region, nbytes = self._heap.pop(ptr)
        region.free(handle, time_ns=self.system.kernel.now)
        self.heap_bytes -= nbytes

    # -- threads --------------------------------------------------------------

    def pthread_create(
        self,
        body: Generator[Command, Any, Any],
        name: str = "thread",
        stack_bytes: int = DEFAULT_STACK_BYTES,
        priority: int = 0,
        affinity: Optional[Iterable[int]] = None,
    ) -> PThread:
        """Spawn a thread; its stack is charged to the home node's memory."""
        region = self.system.node_region(self.home_node)
        stack_handle = region.alloc(
            stack_bytes, label=f"{self.name}:{name}:stack", time_ns=self.system.kernel.now
        )
        sched = self.system.engine.spawn(body, name=name, priority=priority, affinity=affinity)
        tid = self.system._next_tid()
        thread = PThread(tid, name, stack_bytes, sched, self, stack_handle)
        self.threads[tid] = thread

        def _release_stack(_value: Any) -> None:
            region.free(stack_handle, time_ns=self.system.kernel.now)

        sched.done.on_trigger(_release_stack)
        return thread

    @staticmethod
    def pthread_join(thread: PThread) -> Generator[Command, Any, Any]:
        """``yield from proc.pthread_join(t)`` -- wait for thread exit."""
        if thread.sched.done.triggered:
            return thread.sched.result
        result = yield WaitEvent(thread.sched.done)
        return result


class LinuxSystem:
    """The machine-wide OS instance over a simulated platform."""

    def __init__(
        self,
        kernel: Kernel,
        platform: Platform,
        quantum_ns: int = 4_000_000,
        scheduler: str = "rr",
        cores: Optional[Iterable[int]] = None,
    ) -> None:
        """``scheduler``: ``"rr"`` (round-robin time sharing, default) or
        ``"fair"`` (CFS-flavoured weighted fair scheduling).

        ``cores`` restricts the instance to a subset of the platform's
        cores, identified by their *global* core indices -- a simulation
        shard hosts one such instance per partition while thread
        affinities keep meaning platform-wide core numbers."""
        if scheduler == "rr":
            policy = RoundRobinPolicy(quantum_ns)
        elif scheduler == "fair":
            policy = FairPolicy(quantum_ns)
        else:
            raise ValueError(f"unknown scheduler {scheduler!r}; expected 'rr' or 'fair'")
        self.kernel = kernel
        self.platform = platform
        if cores is None:
            self.core_indices = list(range(platform.n_cores))
            self.engine = ExecEngine(kernel, platform.cores, policy)
        else:
            self.core_indices = sorted(cores)
            if not self.core_indices:
                raise ValueError("a system needs at least one core")
            for idx in self.core_indices:
                if not 0 <= idx < platform.n_cores:
                    raise ValueError(
                        f"core index {idx} out of range for {platform.name!r} "
                        f"({platform.n_cores} cores)"
                    )
            self.engine = ExecEngine(
                kernel,
                [platform.cores[i] for i in self.core_indices],
                policy,
                core_indices=self.core_indices,
            )
        self.processes: Dict[int, LinuxProcess] = {}
        self._pid = 0
        self._tid = 0

    def _next_tid(self) -> int:
        self._tid += 1
        return self._tid

    def spawn_process(self, name: str, home_node: int = 0) -> LinuxProcess:
        """Create a user process (address-space accounting)."""
        self._pid += 1
        proc = LinuxProcess(self, self._pid, name, home_node=home_node)
        self.processes[self._pid] = proc
        return proc

    def node_region(self, node: int):
        """The memory region backing a NUMA node."""
        return self.platform.region(f"node{node}")

    # -- time ----------------------------------------------------------------

    def gettimeofday_us(self) -> int:
        """Microsecond wall clock (the paper's timestamp source on Linux)."""
        return self.kernel.now // 1_000

    def now_ns(self) -> int:
        """Current platform time in nanoseconds."""
        return self.kernel.now

    def shutdown(self) -> None:
        """Allow scheduler loops to exit once all threads have finished."""
        self.engine.shutdown()
