"""OS21-like RTOS: tasks, partitions, per-CPU clocks.

Fidelity notes mirrored from the paper (section 5):

- OS21 is "a lightweight, real-time multitasking operating system";
  scheduling is priority-preemptive (:class:`~repro.sim.executor.PriorityPolicy`).
- Deployment loads "one binary code per CPU", so every task is pinned to
  its CPU at creation -- there is no migration.
- ``task_time`` returns the time a task has spent *running* (CPU time),
  which is why Table 3's IDCT figure (95 s) is far below the pipeline
  makespan: the accelerators idle while the ST40 crunches.
- ``time_now`` "gives the local time on each CPU": each CPU's clock has a
  small constant offset, so cross-CPU timestamp arithmetic is deliberately
  untrustworthy, exactly as on the real part.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.hw.memory import MemoryRegion
from repro.hw.platform import Platform
from repro.sim.executor import ExecEngine, PriorityPolicy, SchedThread
from repro.sim.kernel import Kernel
from repro.sim.process import Command, WaitEvent

#: Default OS21 task stack+descriptor footprint used by the EMBera port.
#: Table 3: "60 kB for the task data and component structure".
DEFAULT_TASK_BYTES = 60 * 1024


class Partition:
    """An OS21 memory partition: named slab allocation inside a region."""

    def __init__(self, system: "OS21System", name: str, region: MemoryRegion) -> None:
        self.system = system
        self.name = name
        self.region = region
        self._live: Dict[int, int] = {}
        self._next = 1

    def alloc(self, nbytes: int, label: str = "") -> int:
        """Allocate from the partition; returns a pointer handle."""
        handle = self.region.alloc(
            nbytes, label=f"{self.name}:{label}" if label else self.name,
            time_ns=self.system.kernel.now,
        )
        ptr = self._next
        self._next += 1
        self._live[ptr] = handle
        return ptr

    def free(self, ptr: int) -> None:
        """Release a partition allocation."""
        handle = self._live.pop(ptr)
        self.region.free(handle, time_ns=self.system.kernel.now)

    def used_bytes(self) -> int:
        """Bytes currently allocated in the backing region."""
        return self.region.used_bytes


class OS21Task:
    """An OS21 task pinned to one CPU."""

    __slots__ = ("name", "cpu", "priority", "task_bytes", "sched", "_mem_handle", "_mem_region")

    def __init__(
        self,
        name: str,
        cpu: int,
        priority: int,
        task_bytes: int,
        sched: SchedThread,
        mem_handle: Optional[int],
        mem_region: Optional[MemoryRegion],
    ) -> None:
        self.name = name
        self.cpu = cpu
        self.priority = priority
        self.task_bytes = task_bytes
        self.sched = sched
        self._mem_handle = mem_handle
        self._mem_region = mem_region

    @property
    def alive(self) -> bool:
        """True while still executing."""
        return self.sched.alive

    def __repr__(self) -> str:  # pragma: no cover
        return f"<OS21Task {self.name!r} cpu={self.cpu} prio={self.priority}>"


class OS21System:
    """One OS21 instance per CPU, modelled as a shared engine with pinning."""

    def __init__(self, kernel: Kernel, platform: Platform, quantum_ns: int = 1_000_000) -> None:
        self.kernel = kernel
        self.platform = platform
        self.engine = ExecEngine(kernel, platform.cores, PriorityPolicy(quantum_ns))
        self.tasks: Dict[str, OS21Task] = {}
        # Unsynchronised per-CPU clocks: constant boot-time offsets (ns).
        self.clock_offsets_ns = [1_000 * (7 * i % 13) for i in range(platform.n_cores)]
        self.partitions: Dict[str, Partition] = {}

    # -- memory -----------------------------------------------------------------

    def create_partition(self, name: str, region_name: str) -> Partition:
        """Create a named partition over a memory region."""
        if name in self.partitions:
            raise ValueError(f"partition {name!r} already exists")
        part = Partition(self, name, self.platform.region(region_name))
        self.partitions[name] = part
        return part

    def local_region_of_cpu(self, cpu: int) -> MemoryRegion:
        """The memory a task's descriptor/stack lives in: ST231s use their
        local SRAM; the ST40 (and any general-purpose CPU) uses SDRAM."""
        name = f"st231_{cpu - 1}_local"
        if name in self.platform.regions:
            return self.platform.regions[name]
        return self.platform.region("sdram")

    # -- tasks --------------------------------------------------------------------

    def task_create(
        self,
        body: Generator[Command, Any, Any],
        name: str,
        cpu: int,
        priority: int = 5,
        task_bytes: int = DEFAULT_TASK_BYTES,
        charge_memory: bool = True,
    ) -> OS21Task:
        """Create and start a task pinned to ``cpu``."""
        if not 0 <= cpu < self.platform.n_cores:
            raise ValueError(f"no CPU {cpu} on {self.platform.name}")
        if name in self.tasks:
            raise ValueError(f"task name {name!r} already in use")
        mem_handle = mem_region = None
        if charge_memory:
            mem_region = self.local_region_of_cpu(cpu)
            mem_handle = mem_region.alloc(task_bytes, label=f"{name}:task", time_ns=self.kernel.now)
        sched = self.engine.spawn(body, name=name, priority=priority, affinity=[cpu])
        task = OS21Task(name, cpu, priority, task_bytes, sched, mem_handle, mem_region)
        self.tasks[name] = task
        if charge_memory:

            def _release(_value: Any) -> None:
                mem_region.free(mem_handle, time_ns=self.kernel.now)

            sched.done.on_trigger(_release)
        return task

    @staticmethod
    def task_join(task: OS21Task) -> Generator[Command, Any, Any]:
        """``yield from sys.task_join(t)`` -- wait for task termination."""
        if task.sched.done.triggered:
            return task.sched.result
        result = yield WaitEvent(task.sched.done)
        return result

    # -- time -----------------------------------------------------------------------

    def task_time_us(self, task: OS21Task) -> int:
        """OS21 ``task_time``: microseconds of CPU time consumed by the task."""
        return task.sched.cpu_time_ns // 1_000

    def time_now_us(self, cpu: int) -> int:
        """OS21 ``time_now``: the *local* clock of ``cpu`` in microseconds."""
        return (self.kernel.now + self.clock_offsets_ns[cpu]) // 1_000

    def shutdown(self) -> None:
        """Let scheduler loops exit once all tasks finish."""
        self.engine.shutdown()
