"""OS21-like RTOS substrate for the simulated STi7200 platform.

Models the OS21 API surface the paper's EMBera port uses: task creation
with per-CPU deployment (one binary per CPU), priority-preemptive
scheduling, ``task_time`` (per-task CPU time), ``time_now`` (per-CPU local
clocks), and memory partitions.
"""

from repro.os21.system import OS21System, OS21Task, Partition

__all__ = ["OS21System", "OS21Task", "Partition"]
