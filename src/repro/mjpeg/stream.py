"""Synthetic Motion-JPEG streams.

The paper's inputs are "two different input files containing 578 and 3000
JPEG images respectively.  The dimensions of each single image are the
same in both cases."  Those files are not available, so we synthesise
moving-texture frames (gradient + drifting sinusoid + seeded noise),
encode them with our baseline encoder, and package the result as an
in-memory stream.  Per-frame decode work (Huffman symbols, blocks,
IDCTs) therefore matches a real stream of the same geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.mjpeg.encoder import EncodedFrame, encode_image

#: Default frame geometry: 96x96 -> 144 blocks -> 18 batches of 8 blocks.
DEFAULT_HEIGHT = 96
DEFAULT_WIDTH = 96


def synthetic_frame(
    index: int,
    height: int = DEFAULT_HEIGHT,
    width: int = DEFAULT_WIDTH,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """One uint8 frame of drifting structured texture."""
    y = np.arange(height).reshape(-1, 1)
    x = np.arange(width).reshape(1, -1)
    phase = index * 0.31
    img = (
        96.0
        + 40.0 * np.sin(2 * np.pi * (x / 24.0) + phase)
        + 30.0 * np.cos(2 * np.pi * (y / 32.0) - phase / 2)
        + 20.0 * ((x + y + 3 * index) % 64) / 64.0
    )
    if rng is not None:
        img = img + rng.normal(0.0, 4.0, size=(height, width))
    return np.clip(img, 0, 255).astype(np.uint8)


@dataclass
class FrameRecord:
    """One stream entry: the encoded frame plus its index."""

    index: int
    frame: EncodedFrame

    @property
    def n_bits(self) -> int:
        """Entropy-coded payload length in bits."""
        return self.frame.n_bits

    @property
    def n_blocks(self) -> int:
        """Number of 8x8 blocks in the frame."""
        return self.frame.n_blocks


class MJPEGStream:
    """An in-memory sequence of independently encoded frames."""

    def __init__(self, records: List[FrameRecord], height: int, width: int, quality: int) -> None:
        if not records:
            raise ValueError("a stream needs at least one frame")
        self.records = records
        self.height = height
        self.width = width
        self.quality = quality

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[FrameRecord]:
        return iter(self.records)

    def __getitem__(self, i: int) -> FrameRecord:
        return self.records[i]

    @property
    def n_blocks_per_frame(self) -> int:
        """Blocks per frame (constant across the stream)."""
        return self.records[0].n_blocks

    def total_payload_bytes(self) -> int:
        """Sum of all encoded payload sizes."""
        return sum(len(r.frame.payload) for r in self.records)

    def drop_payloads(self) -> None:
        """Free the bit payloads, keeping only stored coefficients --
        for large cost-model-only runs."""
        for r in self.records:
            r.frame.payload = b""


def generate_stream(
    n_images: int,
    height: int = DEFAULT_HEIGHT,
    width: int = DEFAULT_WIDTH,
    quality: int = 75,
    seed: int = 0,
    noise: bool = True,
) -> MJPEGStream:
    """Generate and encode ``n_images`` synthetic frames."""
    if n_images <= 0:
        raise ValueError(f"n_images must be positive, got {n_images}")
    rng = np.random.default_rng(seed) if noise else None
    records = []
    for i in range(n_images):
        frame = encode_image(synthetic_frame(i, height, width, rng), quality=quality)
        records.append(FrameRecord(index=i, frame=frame))
    return MJPEGStream(records, height, width, quality)
