"""Color support: YCbCr conversion and 4:2:0 chroma subsampling.

JFIF/BT.601 full-range conventions, fully vectorised.  Together with the
chroma quantization/Huffman tables this upgrades the codec from the
grayscale baseline the case study needs to a complete color MJPEG path.
"""

from __future__ import annotations

import numpy as np

# BT.601 full-range (JFIF) matrices.
_RGB_TO_YCC = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_YCC_TO_RGB = np.array(
    [
        [1.0, 0.0, 1.402],
        [1.0, -0.344136, -0.714136],
        [1.0, 1.772, 0.0],
    ]
)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """(H, W, 3) uint8 RGB -> (H, W, 3) float64 YCbCr (full range,
    chroma centred on 128)."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3), got {rgb.shape}")
    ycc = rgb.astype(np.float64) @ _RGB_TO_YCC.T
    ycc[..., 1:] += 128.0
    return ycc


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """(H, W, 3) float YCbCr -> (H, W, 3) uint8 RGB (clamped)."""
    ycc = np.asarray(ycc, dtype=np.float64).copy()
    if ycc.ndim != 3 or ycc.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3), got {ycc.shape}")
    ycc[..., 1:] -= 128.0
    rgb = ycc @ _YCC_TO_RGB.T
    return np.clip(np.round(rgb), 0, 255).astype(np.uint8)


def subsample_420(plane: np.ndarray) -> np.ndarray:
    """(H, W) -> (H/2, W/2) by 2x2 averaging (requires even dims)."""
    plane = np.asarray(plane, dtype=np.float64)
    h, w = plane.shape
    if h % 2 or w % 2:
        raise ValueError(f"4:2:0 needs even dimensions, got {plane.shape}")
    return plane.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))


def upsample_420(plane: np.ndarray, height: int, width: int) -> np.ndarray:
    """(H/2, W/2) -> (H, W) by sample replication."""
    plane = np.asarray(plane)
    h2, w2 = plane.shape
    if (height, width) != (h2 * 2, w2 * 2):
        raise ValueError(
            f"cannot upsample {plane.shape} to {(height, width)}: expected exact 2x"
        )
    return np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)
