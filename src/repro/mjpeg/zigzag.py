"""Zigzag coefficient ordering (JPEG figure 5 scan pattern).

The "pixel reordering" step the paper assigns to the Fetch component.
Both directions are pure fancy-indexing and vectorise over any leading
batch dimensions.
"""

from __future__ import annotations

import numpy as np


def _build_zigzag_order() -> np.ndarray:
    """Indices such that ``flat_block[order] == zigzag_sequence``."""
    order = np.empty(64, dtype=np.int64)
    row = col = 0
    for i in range(64):
        order[i] = row * 8 + col
        if (row + col) % 2 == 0:  # moving up-right
            if col == 7:
                row += 1
            elif row == 0:
                col += 1
            else:
                row -= 1
                col += 1
        else:  # moving down-left
            if row == 7:
                col += 1
            elif col == 0:
                row += 1
            else:
                row += 1
                col -= 1
    return order


#: ``ZIGZAG_ORDER[i]`` is the raster index of the i-th zigzag coefficient.
ZIGZAG_ORDER = _build_zigzag_order()

#: ``INVERSE_ZIGZAG[raster_index] = zigzag_position``.
INVERSE_ZIGZAG = np.argsort(ZIGZAG_ORDER)


def zigzag(blocks: np.ndarray) -> np.ndarray:
    """(..., 8, 8) raster blocks -> (..., 64) zigzag sequences."""
    blocks = np.asarray(blocks)
    if blocks.shape[-2:] != (8, 8):
        raise ValueError(f"expected trailing (8, 8), got {blocks.shape}")
    flat = blocks.reshape(*blocks.shape[:-2], 64)
    return flat[..., ZIGZAG_ORDER]


def dezigzag(seqs: np.ndarray) -> np.ndarray:
    """(..., 64) zigzag sequences -> (..., 8, 8) raster blocks."""
    seqs = np.asarray(seqs)
    if seqs.shape[-1] != 64:
        raise ValueError(f"expected trailing 64, got {seqs.shape}")
    flat = seqs[..., INVERSE_ZIGZAG]
    return flat.reshape(*seqs.shape[:-1], 8, 8)
