"""The componentized MJPEG decoder (paper sections 3.2, 4.3 and 5.3).

SMP assembly (Figure 3)::

    Fetch --fetchIdct{1..3}--> IDCT_{1..3} --idctReorder--> Reorder --> display

STi7200 assembly (Figure 7)::

    Fetch-Reorder --fetchIdct{1,2}--> IDCT_{1,2} --idctReorder--> Fetch-Reorder

Interface names follow Figure 5: each IDCT provides ``_fetchIdctN`` and
requires ``idctReorder``.  The Reorder side exposes two provided
interfaces -- the shared ``idctReorder`` input and the ``display`` output
mailbox drained by the display controller -- which is exactly the
two-provided-interface footprint Table 1 reports for Reorder (and the two
distributed objects Table 3 reports for Fetch-Reorder).

Dispatch protocol: every image is partitioned into
:data:`BATCHES_PER_IMAGE` block batches sent round-robin over the IDCT
components.  The *first* image of a stream primes the entropy state
(tables, DC predictors) inside Fetch and is not dispatched, so a stream
of N images produces ``18 * (N - 1)`` data sends from Fetch -- matching
Table 2 exactly (10 386 for 578 images, 53 982 for 3 000).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

import numpy as np

from repro.core.application import Application
from repro.core.component import Component
from repro.core.messages import CONTROL
from repro.mjpeg.decoder import (
    assemble_image,
    coefficients_from_qzz,
    decode_frame_coefficients,
    idct_stage,
    split_blocks,
)
from repro.mjpeg.stream import MJPEGStream

#: Batches per image; with 96x96 frames (144 blocks) each batch is 8 blocks.
BATCHES_PER_IMAGE = 18

#: Message tags.
TAG_BATCH = "batch"
TAG_PIXELS = "pixels"
TAG_FRAME = "frame"
TAG_EOS = "eos"


def frames_digest(frames: Dict[int, np.ndarray]) -> str:
    """Order-independent sha256 over a decoded frame set.

    The canonical equality check for decoder output: the chaos campaign
    compares faulted runs against fault-free references with it, and the
    sharded-simulation CI gate diffs ``repro run --shards N`` against the
    single-shard run.  Frames hash in index order regardless of delivery
    order, so any runtime producing the same pixels gets the same digest.
    """
    import hashlib

    digest = hashlib.sha256()
    for index in sorted(frames):
        digest.update(index.to_bytes(4, "little"))
        digest.update(frames[index].tobytes())
    return digest.hexdigest()


def _fetch_stage(record, quality: int, use_stored_coefficients: bool) -> np.ndarray:
    """Fetch-stage decode of one frame: real bit walk or stored-coef fast
    path.  Both produce identical coefficients (tested) and are charged
    identically, so large simulated runs can skip the Python-level walk."""
    frame = record.frame
    if use_stored_coefficients:
        return coefficients_from_qzz(frame.qcoefs_zz, quality)
    return decode_frame_coefficients(frame.payload, frame.n_blocks, quality)


class FetchComponent(Component):
    """File management + Huffman decoding + pixel reordering."""

    def __init__(
        self,
        name: str,
        stream: MJPEGStream,
        n_idct: int = 3,
        batches_per_image: int = BATCHES_PER_IMAGE,
        use_stored_coefficients: bool = False,
    ) -> None:
        super().__init__(name)
        if n_idct < 1:
            raise ValueError(f"need at least one IDCT, got {n_idct}")
        self.stream = stream
        self.n_idct = n_idct
        self.batches_per_image = batches_per_image
        self.use_stored_coefficients = use_stored_coefficients
        # Resumable progress (checkpoint contract): the next record to
        # dispatch and how many batches of the current frame went out.
        # Reset at behaviour start unless a restore primed them, so a
        # recovery-less restart keeps the historical fresh-run semantics.
        self._cursor = 0
        self._sent_in_frame = 0
        self._restored = False
        for i in range(1, n_idct + 1):
            self.add_required(f"fetchIdct{i}")

    def idct_targets(self) -> list:
        """Currently connected IDCT interfaces, in index order.

        Re-evaluated per frame so dynamically added IDCT components
        (runtime reconfiguration) start receiving work immediately.
        """
        names = [
            r.name
            for r in self.required.values()
            if r.name.startswith("fetchIdct") and r.connected
        ]
        return sorted(names, key=lambda n: int(n[len("fetchIdct"):]))

    def snapshot(self) -> Optional[dict]:
        """Consistent only at frame boundaries: mid-frame the dispatched
        batches are not yet covered by the cursor."""
        if self._sent_in_frame:
            return None
        return {"cursor": self._cursor}

    def restore(self, state: dict) -> None:
        """Resume dispatching from the checkpointed record."""
        self._cursor = state["cursor"]
        self._sent_in_frame = 0
        self._restored = True

    def behavior(self, ctx) -> Generator:
        """The component's execution flow (generator over ctx)."""
        if not self._restored:
            self._cursor = 0
            self._sent_in_frame = 0
        self._restored = False
        quality = self.stream.quality
        for record in self.stream:
            if record.index < self._cursor:
                continue  # dispatched before a checkpointed restart
            coefs = _fetch_stage(record, quality, self.use_stored_coefficients)
            yield from ctx.compute("huffman_block", record.n_blocks)
            if record.index == 0:
                self._cursor = 1
                continue  # the first image primes the entropy state
            targets = self.idct_targets()
            batches = split_blocks(coefs.astype(np.float32), self.batches_per_image)
            for b, batch in enumerate(batches):
                if b < self._sent_in_frame:
                    continue  # sent before a crash; receivers dedup re-sends
                payload = {"frame": record.index, "batch": b, "coefs": batch}
                yield from ctx.send(targets[b % len(targets)], payload, tag=TAG_BATCH)
                self._sent_in_frame = b + 1
            self._sent_in_frame = 0
            self._cursor = record.index + 1
        for target in self.idct_targets():
            yield from ctx.send(target, None, kind=CONTROL, tag=TAG_EOS)


class IdctComponent(Component):
    """The Inverse Discrete Cosine Transform stage."""

    def __init__(self, name: str, index: int) -> None:
        super().__init__(name)
        self.index = index
        self.input_name = f"_fetchIdct{index}"
        self._processed = 0
        #: True while a received batch is mid-transform: its effects are
        #: not yet covered by the counters, so no consistent snapshot.
        self._busy = False
        self._restored = False
        self.add_provided(self.input_name)
        self.add_required("idctReorder")

    def snapshot(self) -> Optional[dict]:
        """Consistent at the receive boundary (``_busy`` clear)."""
        if self._busy:
            return None
        return {"processed": self._processed}

    def restore(self, state: dict) -> None:
        """Resume the processed counter from the checkpoint."""
        self._processed = state["processed"]
        self._restored = True

    def behavior(self, ctx) -> Generator:
        """The component's execution flow (generator over ctx)."""
        if not self._restored:
            self._processed = 0
        self._restored = False
        self._busy = False
        while True:
            msg = yield from ctx.receive(self.input_name)
            self._busy = True
            if msg.kind == CONTROL and msg.tag == TAG_EOS:
                yield from ctx.send("idctReorder", None, kind=CONTROL, tag=TAG_EOS)
                return self._processed
            batch = msg.payload
            pixels = idct_stage(batch["coefs"])
            yield from ctx.compute("idct_block", pixels.shape[0])
            payload = {"frame": batch["frame"], "batch": batch["batch"], "pixels": pixels}
            yield from ctx.send("idctReorder", payload, tag=TAG_PIXELS)
            self._processed += 1
            self._busy = False


class ReorderComponent(Component):
    """Image reassembly + delivery to the display mailbox."""

    def __init__(
        self,
        name: str,
        height: int,
        width: int,
        n_upstream: Optional[int] = 3,
        batches_per_image: int = BATCHES_PER_IMAGE,
        keep_frames: bool = False,
        drop_incomplete: bool = False,
        frame_sink=None,
        quiescence_timeout_ns: Optional[int] = None,
    ) -> None:
        super().__init__(name)
        self.height = height
        self.width = width
        #: Optional per-receive deadline (virtual ns).  When an upstream
        #: is halted or degraded its end-of-stream marker never arrives;
        #: with a quiescence deadline the reassembly loop treats that
        #: silence as end-of-stream-under-loss instead of blocking the
        #: application forever.  ``None`` keeps the strict EOS-counting
        #: behaviour.  Fleet campaign cells always set this.
        self.quiescence_timeout_ns = quiescence_timeout_ns
        #: None means "count the upstreams live" -- required when IDCT
        #: components are added by dynamic reconfiguration.
        self.n_upstream = n_upstream
        self.batches_per_image = batches_per_image
        self.keep_frames = keep_frames
        #: Lossy-transport mode: frames still incomplete at end-of-stream
        #: are discarded (and logged) instead of failing the component.
        #: Fault-injection campaigns set this so dropped batches cost the
        #: affected frame, not the whole pipeline.
        self.drop_incomplete = drop_incomplete
        #: Optional ``(index, image) -> None`` callback fired on every
        #: frame completion, *including* re-completions after a restore --
        #: sinks must be idempotent by index (the durable campaign's
        #: :class:`~repro.recovery.durable.FrameStore` overwrites with
        #: byte-identical content).
        self.frame_sink = frame_sink
        self.frames: Dict[int, np.ndarray] = {}
        #: Indices of frames fully reassembled and delivered to display.
        #: Also the duplicate filter: a re-delivered batch of a finished
        #: frame must not resurrect it as a phantom pending frame.
        self.completed_indices: set = set()
        # Resumable reassembly state (checkpoint contract); reset at
        # behaviour start unless a restore primed it.
        self._pending: Dict[int, Dict[int, np.ndarray]] = {}
        self._eos_seen = 0
        self._completed = 0
        self._restored = False
        self.add_provided("idctReorder")
        self.add_provided("display")

    def _upstream_count(self) -> int:
        if self.n_upstream is not None:
            return self.n_upstream
        return len(self.get_provided("idctReorder").connected_from)

    def snapshot(self) -> Optional[dict]:
        """Consistent at the receive boundary (the only point the
        recovery manager probes a receive-only component)."""
        return {
            "pending": self._pending,
            "eos_seen": self._eos_seen,
            "completed": self._completed,
            "completed_indices": self.completed_indices,
        }

    def restore(self, state: dict) -> None:
        """Reinstall reassembly progress.  ``frames`` (delivered output)
        is deliberately not rolled back: re-completed frames overwrite
        their index with identical content."""
        self._pending = state["pending"]
        self._eos_seen = state["eos_seen"]
        self._completed = state["completed"]
        self.completed_indices = state["completed_indices"]
        self._restored = True

    def behavior(self, ctx) -> Generator:
        """The component's execution flow (generator over ctx)."""
        n_blocks = (self.height // 8) * (self.width // 8)
        if not self._restored:
            self._pending = {}
            self._eos_seen = 0
            self._completed = 0
        self._restored = False
        while self._eos_seen < self._upstream_count():
            if self.quiescence_timeout_ns is not None:
                from repro.core.errors import DeadlineError

                try:
                    msg = yield from ctx.receive(
                        "idctReorder", timeout_ns=self.quiescence_timeout_ns
                    )
                except DeadlineError:
                    # Upstream silence past the deadline: a halted or
                    # degraded sender whose EOS will never come.  Finish
                    # with what was reassembled (lossy-transport mode).
                    ctx.log(
                        f"quiescent for {self.quiescence_timeout_ns}ns with "
                        f"{self._eos_seen}/{self._upstream_count()} EOS; closing stream"
                    )
                    break
            else:
                msg = yield from ctx.receive("idctReorder")
            if msg.kind == CONTROL and msg.tag == TAG_EOS:
                self._eos_seen += 1
                continue
            item = msg.payload
            index = item["frame"]
            if index in self.completed_indices:
                continue  # duplicated batch of an already-delivered frame
            frame_batches = self._pending.setdefault(index, {})
            frame_batches[item["batch"]] = item["pixels"]
            if len(frame_batches) == self.batches_per_image:
                batches = [frame_batches[i] for i in range(self.batches_per_image)]
                image = assemble_image(batches, self.height, self.width)
                yield from ctx.compute("reorder_block", n_blocks)
                yield from ctx.deposit("display", image, tag=TAG_FRAME)
                if self.frame_sink is not None:
                    self.frame_sink(index, image)
                if self.keep_frames:
                    self.frames[index] = image
                del self._pending[index]
                self.completed_indices.add(index)
                self._completed += 1
        if self._pending:
            if not self.drop_incomplete:
                raise RuntimeError(
                    f"reorder finished with {len(self._pending)} incomplete frame(s): "
                    f"{sorted(self._pending)[:5]}"
                )
            ctx.log(f"dropped {len(self._pending)} incomplete frame(s): {sorted(self._pending)}")
            self._pending.clear()
        return self._completed


class FetchReorderComponent(Component):
    """The merged I/O component of the STi7200 deployment (section 5.3):
    Fetch and Reorder functionality in a single component on the
    general-purpose ST40."""

    def __init__(
        self,
        name: str,
        stream: MJPEGStream,
        n_idct: int = 2,
        batches_per_image: int = BATCHES_PER_IMAGE,
        use_stored_coefficients: bool = False,
        keep_frames: bool = False,
    ) -> None:
        super().__init__(name)
        self.stream = stream
        self.n_idct = n_idct
        self.batches_per_image = batches_per_image
        self.use_stored_coefficients = use_stored_coefficients
        self.keep_frames = keep_frames
        self.frames: Dict[int, np.ndarray] = {}
        # Resumable progress, gated exactly like FetchComponent: the
        # frame boundary (nothing of the current frame dispatched) is the
        # one consistent snapshot point of the merged send/collect loop.
        self._cursor = 0
        self._sent_in_frame = 0
        self._completed = 0
        self._restored = False
        for i in range(1, n_idct + 1):
            self.add_required(f"fetchIdct{i}")
        self.add_provided("idctReorder")
        self.add_provided("display")

    def snapshot(self) -> Optional[dict]:
        """Consistent only between frames (see class doc)."""
        if self._sent_in_frame:
            return None
        return {"cursor": self._cursor, "completed": self._completed}

    def restore(self, state: dict) -> None:
        """Resume the dispatch/collect loop from the checkpointed frame."""
        self._cursor = state["cursor"]
        self._completed = state["completed"]
        self._sent_in_frame = 0
        self._restored = True

    def behavior(self, ctx) -> Generator:
        """The component's execution flow (generator over ctx)."""
        if not self._restored:
            self._cursor = 0
            self._sent_in_frame = 0
            self._completed = 0
        self._restored = False
        stream = self.stream
        quality = stream.quality
        n_blocks = stream.n_blocks_per_frame
        for record in stream:
            if record.index < self._cursor:
                continue  # handled before a checkpointed restart
            coefs = _fetch_stage(record, quality, self.use_stored_coefficients)
            yield from ctx.compute("huffman_block", record.n_blocks)
            if record.index == 0:
                self._cursor = 1
                continue
            batches = split_blocks(coefs.astype(np.float32), self.batches_per_image)
            for b, batch in enumerate(batches):
                if b < self._sent_in_frame:
                    continue  # sent before a crash; the IDCTs dedup re-sends
                target = f"fetchIdct{(b % self.n_idct) + 1}"
                payload = {"frame": record.index, "batch": b, "coefs": batch}
                yield from ctx.send(target, payload, tag=TAG_BATCH)
                self._sent_in_frame = b + 1
            # Reorder half: collect this frame's batches back.
            got: Dict[int, np.ndarray] = {}
            while len(got) < self.batches_per_image:
                msg = yield from ctx.receive("idctReorder")
                item = msg.payload
                got[item["batch"]] = item["pixels"]
            image = assemble_image(
                [got[i] for i in range(self.batches_per_image)], stream.height, stream.width
            )
            yield from ctx.compute("reorder_block", n_blocks)
            yield from ctx.deposit("display", image, tag=TAG_FRAME)
            if self.keep_frames:
                self.frames[record.index] = image
            self._completed += 1
            self._sent_in_frame = 0
            self._cursor = record.index + 1
        for i in range(1, self.n_idct + 1):
            yield from ctx.send(f"fetchIdct{i}", None, kind=CONTROL, tag=TAG_EOS)
        # Drain the IDCTs' end-of-stream acknowledgements.
        eos_seen = 0
        while eos_seen < self.n_idct:
            msg = yield from ctx.receive("idctReorder")
            if msg.kind == CONTROL and msg.tag == TAG_EOS:
                eos_seen += 1
        return self._completed


def build_smp_assembly(
    stream: MJPEGStream,
    n_idct: int = 3,
    use_stored_coefficients: bool = False,
    keep_frames: bool = False,
    with_observer: bool = True,
    drop_incomplete: bool = False,
    frame_sink=None,
    dynamic_upstream: bool = False,
    quiescence_timeout_ns: Optional[int] = None,
) -> Application:
    """The Figure 3 application: Fetch + n IDCT + Reorder.

    ``dynamic_upstream=True`` makes the Reorder stage count its live
    upstream connections per iteration instead of assuming all ``n_idct``
    IDCTs stay connected -- required when a supervision policy may detach
    a degraded IDCT mid-stream.  ``quiescence_timeout_ns`` additionally
    bounds how long Reorder waits for silent upstreams (see
    :class:`ReorderComponent`).
    """
    app = Application("mjpeg-smp")
    fetch = app.add(
        FetchComponent(
            "Fetch", stream, n_idct=n_idct, use_stored_coefficients=use_stored_coefficients
        )
    )
    idcts = [app.add(IdctComponent(f"IDCT_{i}", i)) for i in range(1, n_idct + 1)]
    reorder = app.add(
        ReorderComponent(
            "Reorder",
            stream.height,
            stream.width,
            n_upstream=None if dynamic_upstream else n_idct,
            keep_frames=keep_frames,
            drop_incomplete=drop_incomplete,
            frame_sink=frame_sink,
            quiescence_timeout_ns=quiescence_timeout_ns,
        )
    )
    for i, idct in enumerate(idcts, start=1):
        app.connect(fetch, f"fetchIdct{i}", idct, f"_fetchIdct{i}")
        app.connect(idct, "idctReorder", reorder, "idctReorder")
    if with_observer:
        app.attach_observer(targets=[fetch, *idcts, reorder])
    return app


def build_sti7200_assembly(
    stream: MJPEGStream,
    n_idct: int = 2,
    use_stored_coefficients: bool = False,
    keep_frames: bool = False,
    with_observer: bool = True,
) -> Application:
    """The Figure 7 application: Fetch-Reorder on the ST40 (cpu 0) and
    one IDCT per ST231 accelerator."""
    app = Application("mjpeg-sti7200")
    fr = app.add(
        FetchReorderComponent(
            "Fetch-Reorder",
            stream,
            n_idct=n_idct,
            use_stored_coefficients=use_stored_coefficients,
            keep_frames=keep_frames,
        )
    ).place(cpu=0)
    idcts = []
    for i in range(1, n_idct + 1):
        idct = app.add(IdctComponent(f"IDCT_{i}", i)).place(cpu=i)
        idcts.append(idct)
        app.connect(fr, f"fetchIdct{i}", idct, f"_fetchIdct{i}")
        app.connect(idct, "idctReorder", fr, "idctReorder")
    if with_observer:
        app.attach_observer(targets=[fr, *idcts])
    return app
