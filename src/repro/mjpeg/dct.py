"""8x8 type-II/III DCT, vectorised over batches of blocks.

The transform is expressed as two matrix products with the orthonormal
DCT-II basis matrix ``C`` (``X = C B C^T``), evaluated with ``einsum``
over arbitrary batch dimensions -- the numpy-vectorisation discipline of
the hpc-parallel guides: no Python loop touches a pixel.

A scaled AAN-style variant (:func:`idct_blocks_scaled`) demonstrates the
classic embedded-decoder optimisation of folding the descaling constants
into the dequantization table.
"""

from __future__ import annotations

import numpy as np


def _dct_matrix() -> np.ndarray:
    k = np.arange(8).reshape(8, 1)
    n = np.arange(8).reshape(1, 8)
    c = np.cos((2 * n + 1) * k * np.pi / 16)
    c[0, :] *= np.sqrt(1 / 8)
    c[1:, :] *= np.sqrt(2 / 8)
    return c


#: Orthonormal 8-point DCT-II basis matrix.
DCT_MATRIX = _dct_matrix()


def fdct_blocks(blocks: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT of (..., 8, 8) pixel blocks (float64 out)."""
    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.shape[-2:] != (8, 8):
        raise ValueError(f"expected trailing (8, 8), got {blocks.shape}")
    c = DCT_MATRIX
    return np.einsum("ij,...jk,lk->...il", c, blocks, c, optimize=True)


def idct_blocks(coefs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of (..., 8, 8) coefficient blocks (float64 out)."""
    coefs = np.asarray(coefs, dtype=np.float64)
    if coefs.shape[-2:] != (8, 8):
        raise ValueError(f"expected trailing (8, 8), got {coefs.shape}")
    c = DCT_MATRIX
    return np.einsum("ji,...jk,kl->...il", c, coefs, c, optimize=True)


def idct_blocks_scaled(qcoefs: np.ndarray, quant: np.ndarray) -> np.ndarray:
    """Dequantize + inverse DCT with the descale folded into the table.

    Mathematically identical to ``idct_blocks(qcoefs * quant)`` but does
    the dequantization multiply once against a precomputed float table --
    the memory-traffic-saving trick embedded IDCT kernels use.
    """
    folded = np.asarray(quant, dtype=np.float64)
    return idct_blocks(np.asarray(qcoefs, dtype=np.float64) * folded)


def pixels_from_idct(samples: np.ndarray) -> np.ndarray:
    """Undo the JPEG level shift and clamp to uint8."""
    return np.clip(np.round(samples) + 128, 0, 255).astype(np.uint8)
