"""Motion-JPEG codec and the componentized decoder of the paper.

The decode pipeline is a real baseline-JPEG path, split exactly as the
paper splits it across components (section 3.2):

- **Fetch**: file management, Huffman decoding and pixel (zigzag)
  reordering -> dequantized coefficient blocks (:mod:`repro.mjpeg.huffman`,
  :mod:`repro.mjpeg.zigzag`, :mod:`repro.mjpeg.quant`).
- **IDCT**: the Inverse Discrete Cosine Transform (:mod:`repro.mjpeg.dct`).
- **Reorder**: block reassembly into images and delivery to the display
  (:mod:`repro.mjpeg.decoder`).

:mod:`repro.mjpeg.stream` generates synthetic encoded MJPEG streams (the
paper's 578/3000-image input files are not available);
:mod:`repro.mjpeg.components` wraps the stages as EMBera components for
both the SMP (Fetch + 3 IDCT + Reorder) and STi7200 (Fetch-Reorder +
2 IDCT) assemblies.
"""

from repro.mjpeg.dct import fdct_blocks, idct_blocks
from repro.mjpeg.decoder import assemble_image, decode_frame_coefficients, decode_image, split_blocks
from repro.mjpeg.encoder import encode_image
from repro.mjpeg.huffman import HuffmanTable, STD_AC_LUMA, STD_DC_LUMA
from repro.mjpeg.quant import quant_table
from repro.mjpeg.stream import FrameRecord, MJPEGStream, generate_stream, synthetic_frame
from repro.mjpeg.zigzag import ZIGZAG_ORDER, dezigzag, zigzag

__all__ = [
    "FrameRecord",
    "HuffmanTable",
    "MJPEGStream",
    "STD_AC_LUMA",
    "STD_DC_LUMA",
    "ZIGZAG_ORDER",
    "assemble_image",
    "decode_frame_coefficients",
    "decode_image",
    "dezigzag",
    "encode_image",
    "fdct_blocks",
    "generate_stream",
    "idct_blocks",
    "quant_table",
    "split_blocks",
    "synthetic_frame",
    "zigzag",
]
