"""Baseline JPEG-style decoder, split along the paper's component cuts.

- :func:`decode_frame_coefficients` -- the **Fetch** stage: Huffman
  decode, inverse zigzag reorder, dequantize.
- :func:`idct_stage` -- the **IDCT** stage: inverse DCT + level shift.
- :func:`assemble_image` -- the **Reorder** stage: raster reassembly.
- :func:`decode_image` -- the whole pipeline (reference path for tests).
"""

from __future__ import annotations

import numpy as np

from repro.mjpeg.bitio import BitReader
from repro.mjpeg.dct import idct_blocks, pixels_from_idct
from repro.mjpeg.huffman import EOB, STD_AC_LUMA, STD_DC_LUMA, ZRL, decode_magnitude
from repro.mjpeg.quant import dequantize, quant_table
from repro.mjpeg.zigzag import dezigzag


class DecodeError(Exception):
    """Raised on a malformed entropy-coded segment."""


def decode_frame_bits(payload: bytes, n_blocks: int) -> np.ndarray:
    """Entropy-decode ``n_blocks`` zigzag blocks -> (n_blocks, 64) int32."""
    reader = BitReader(payload)
    return decode_plane(reader, n_blocks)


def decode_plane(
    reader: BitReader,
    n_blocks: int,
    dc_table=STD_DC_LUMA,
    ac_table=STD_AC_LUMA,
) -> np.ndarray:
    """Decode one plane's blocks from the current reader position."""
    out = np.zeros((n_blocks, 64), dtype=np.int32)
    prev_dc = 0
    for b in range(n_blocks):
        prev_dc = _decode_block(reader, out[b], prev_dc, dc_table, ac_table)
    return out


def _decode_block(
    reader: BitReader,
    zz: np.ndarray,
    prev_dc: int,
    dc_table=STD_DC_LUMA,
    ac_table=STD_AC_LUMA,
) -> int:
    try:
        category = dc_table.decode(reader)
        diff = decode_magnitude(reader, category)
        dc = prev_dc + diff
        zz[0] = dc
        k = 1
        while k < 64:
            symbol = ac_table.decode(reader)
            if symbol == EOB:
                break
            if symbol == ZRL:
                k += 16
                continue
            run = symbol >> 4
            size = symbol & 0x0F
            k += run
            if k >= 64:
                raise DecodeError(f"AC run overflows block (k={k})")
            zz[k] = decode_magnitude(reader, size)
            k += 1
        return dc
    except EOFError as eof:
        raise DecodeError("entropy segment truncated") from eof


def decode_frame_coefficients(
    payload: bytes, n_blocks: int, quality: int
) -> np.ndarray:
    """The Fetch stage: Huffman + dezigzag + dequantize -> (n, 8, 8)."""
    zz = decode_frame_bits(payload, n_blocks)
    return dequantize(dezigzag(zz), quant_table(quality))


def coefficients_from_qzz(qcoefs_zz: np.ndarray, quality: int) -> np.ndarray:
    """Fetch-stage fast path from stored quantized zigzag coefficients.

    Produces bit-identical output to :func:`decode_frame_coefficients`
    on the frame's own payload (verified by tests); used when the Python
    bit walk would dominate a large simulated run.
    """
    return dequantize(dezigzag(np.asarray(qcoefs_zz, dtype=np.int32)), quant_table(quality))


def idct_stage(coefs: np.ndarray) -> np.ndarray:
    """The IDCT stage: coefficients -> uint8 pixel blocks."""
    return pixels_from_idct(idct_blocks(coefs))


def split_blocks(blocks: np.ndarray, n_batches: int) -> list:
    """Partition (n, 8, 8) blocks into ``n_batches`` contiguous batches.

    Every batch is non-empty and sizes differ by at most one; this is the
    Fetch component's message partitioning.
    """
    blocks = np.asarray(blocks)
    n = blocks.shape[0]
    if n_batches <= 0 or n_batches > n:
        raise ValueError(f"cannot split {n} blocks into {n_batches} batches")
    bounds = np.linspace(0, n, n_batches + 1).round().astype(int)
    return [blocks[bounds[i] : bounds[i + 1]] for i in range(n_batches)]


def assemble_image(batches: list, height: int, width: int) -> np.ndarray:
    """The Reorder stage: ordered pixel-block batches -> (H, W) image."""
    from repro.mjpeg.encoder import blocks_to_image

    blocks = np.concatenate([np.asarray(b) for b in batches], axis=0)
    return blocks_to_image(blocks, height, width)


def decode_image(payload: bytes, height: int, width: int, quality: int) -> np.ndarray:
    """Full reference decode: Fetch -> IDCT -> Reorder in one call."""
    n_blocks = (height // 8) * (width // 8)
    coefs = decode_frame_coefficients(payload, n_blocks, quality)
    pixels = idct_stage(coefs)
    return assemble_image([pixels], height, width)


def decode_color_image(frame) -> np.ndarray:
    """Decode an :class:`~repro.mjpeg.encoder.EncodedColorFrame` back to
    (H, W, 3) uint8 RGB: planar entropy decode (luma then chroma tables),
    dequantize, IDCT, 4:2:0 upsample, colour conversion."""
    from repro.mjpeg.color import upsample_420, ycbcr_to_rgb
    from repro.mjpeg.huffman import STD_AC_CHROMA, STD_AC_LUMA, STD_DC_CHROMA, STD_DC_LUMA

    h, w = frame.height, frame.width
    reader = BitReader(frame.payload)
    luma_q = quant_table(frame.quality, chroma=False)
    chroma_q = quant_table(frame.quality, chroma=True)
    planes = []
    for (name, n_blocks, _offset), (ph, pw) in zip(
        frame.plane_index, ((h, w), (h // 2, w // 2), (h // 2, w // 2))
    ):
        dc_t, ac_t = (STD_DC_LUMA, STD_AC_LUMA) if name == "Y" else (STD_DC_CHROMA, STD_AC_CHROMA)
        table = luma_q if name == "Y" else chroma_q
        zz = decode_plane(reader, n_blocks, dc_t, ac_t)
        samples = idct_blocks(dequantize(dezigzag(zz), table)) + 128.0
        blocks = np.clip(samples, 0.0, 255.0)
        plane = _float_blocks_to_plane(blocks, ph, pw)
        planes.append(plane)
    y_plane, cb, cr = planes
    ycc = np.stack(
        [y_plane, upsample_420(cb, h, w), upsample_420(cr, h, w)], axis=-1
    )
    return ycbcr_to_rgb(ycc)


def _float_blocks_to_plane(blocks: np.ndarray, height: int, width: int) -> np.ndarray:
    """blocks_to_image for float planes (no uint8 constraint)."""
    n = (height // 8) * (width // 8)
    if blocks.shape != (n, 8, 8):
        raise ValueError(f"expected {(n, 8, 8)}, got {blocks.shape}")
    return (
        blocks.reshape(height // 8, width // 8, 8, 8).swapaxes(1, 2).reshape(height, width)
    )
