"""Baseline JPEG-style decoder, split along the paper's component cuts.

- :func:`decode_frame_coefficients` -- the **Fetch** stage: Huffman
  decode, inverse zigzag reorder, dequantize.
- :func:`idct_stage` -- the **IDCT** stage: inverse DCT + level shift.
- :func:`assemble_image` -- the **Reorder** stage: raster reassembly.
- :func:`decode_image` -- the whole pipeline (reference path for tests).
"""

from __future__ import annotations

import numpy as np

from repro.mjpeg.bitio import BitReader
from repro.mjpeg.dct import idct_blocks, pixels_from_idct
from repro.mjpeg.huffman import EOB, STD_AC_LUMA, STD_DC_LUMA, ZRL, decode_magnitude
from repro.mjpeg.quant import dequantize, quant_table
from repro.mjpeg.zigzag import dezigzag


class DecodeError(Exception):
    """Raised on a malformed entropy-coded segment."""


def decode_frame_bits(payload: bytes, n_blocks: int) -> np.ndarray:
    """Entropy-decode ``n_blocks`` zigzag blocks -> (n_blocks, 64) int32."""
    reader = BitReader(payload)
    return decode_plane(reader, n_blocks)


#: Magnitude masks / EXTEND thresholds indexed by category (<= 16).
_EMASK = [(1 << i) - 1 for i in range(17)]
_HALF = [0] + [1 << (i - 1) for i in range(1, 17)]
_WMASK = _EMASK  # window-register masks; refill only needs indices < 16


def decode_plane(
    reader: BitReader,
    n_blocks: int,
    dc_table=STD_DC_LUMA,
    ac_table=STD_AC_LUMA,
) -> np.ndarray:
    """Decode one plane's blocks from the current reader position.

    The hot path of the Fetch stage, inlined into one loop of small-int
    ops.  The payload is reinterpreted as big-endian 32-bit words (one
    vectorised ``np.frombuffer``, 1-padded past the end so the EOF window
    convention falls out for free); a <= 48-bit window register is
    refilled one word at a time, and the packed LUTs
    (:attr:`HuffmanTable.lut_dc` / :attr:`~HuffmanTable.lut_ac`) resolve
    code length, run and magnitude size in a single list index.  The
    magnitude bits are extracted straight from the 16-bit window when the
    whole symbol fits (the common case), so no wide-integer arithmetic
    survives in the loop.  Decoded coefficients are gathered sparsely and
    scattered into the output array in one numpy assignment.  Bit-exact
    with :func:`decode_plane_reference` (the pre-LUT per-bit walk), which
    the property tests enforce.
    """
    dc_lut = dc_table.lut_dc
    ac_lut = ac_table.lut_ac
    data = reader._data
    total_bits = reader._nbytes * 8
    start = reader.bits_read
    # Word padding: 0xFF bytes so windows past EOF read as 1-bits (the
    # JPEG convention) and two spare words so refills never bounds-check.
    pad = (-reader._nbytes) % 4
    words = np.frombuffer(data + b"\xff" * (pad + 8), dtype=">u4").tolist()
    w = start >> 5
    wbits = 32 - (start & 31)
    wreg = words[w] & ((1 << wbits) - 1)
    w += 1
    avail = total_bits - start  # real (non-padding) bits left

    idxs: list = []
    vals: list = []
    idx_append = idxs.append
    val_append = vals.append
    wmask = _WMASK
    emask = _EMASK
    half = _HALF
    prev_dc = 0
    base = 0
    try:
        for _ in range(n_blocks):
            # -- DC symbol + EXTEND ------------------------------------
            if wbits < 16:
                wreg = ((wreg & wmask[wbits]) << 32) | words[w]
                w += 1
                wbits += 32
            window = (wreg >> (wbits - 16)) & 0xFFFF
            entry = dc_lut[window]
            if entry <= 0:
                if avail < 16:
                    raise EOFError("bit stream exhausted")
                raise DecodeError("invalid DC Huffman code")
            need = entry >> 16
            if need > avail:
                raise EOFError("bit stream exhausted")
            avail -= need
            category = entry & 0xFF
            if category:
                if need <= 16:
                    mag = (window >> (16 - need)) & emask[category]
                    wbits -= need
                else:
                    if wbits < need:
                        wreg = ((wreg & ((1 << wbits) - 1)) << 32) | words[w]
                        w += 1
                        wbits += 32
                    wbits -= need
                    mag = (wreg >> wbits) & emask[category]
                if mag < half[category]:
                    mag -= emask[category]
                prev_dc += mag
            else:
                wbits -= need
            if prev_dc:
                idx_append(base)
                val_append(prev_dc)

            # -- AC symbols --------------------------------------------
            k = 1
            while k < 64:
                if wbits < 16:
                    wreg = ((wreg & wmask[wbits]) << 32) | words[w]
                    w += 1
                    wbits += 32
                window = (wreg >> (wbits - 16)) & 0xFFFF
                entry = ac_lut[window]
                if entry > 0:
                    need = entry >> 16
                    if need > avail:
                        raise EOFError("bit stream exhausted")
                    avail -= need
                    k += (entry >> 8) & 0xFF
                    if k >= 64:
                        raise DecodeError(f"AC run overflows block (k={k})")
                    size = entry & 0xFF
                    if size:
                        if need <= 16:
                            mag = (window >> (16 - need)) & emask[size]
                            wbits -= need
                        else:
                            if wbits < need:
                                wreg = ((wreg & ((1 << wbits) - 1)) << 32) | words[w]
                                w += 1
                                wbits += 32
                            wbits -= need
                            mag = (wreg >> wbits) & emask[size]
                        if mag < half[size]:
                            mag -= emask[size]
                        idx_append(base + k)
                        val_append(mag)
                    else:
                        wbits -= need
                    k += 1
                elif entry < 0:  # EOB; entry is -code_length
                    if -entry > avail:
                        raise EOFError("bit stream exhausted")
                    avail += entry
                    wbits += entry
                    break
                else:
                    if avail < 16:
                        raise EOFError("bit stream exhausted")
                    raise DecodeError("invalid AC Huffman code")
            base += 64
    except EOFError as eof:
        reader._seek_bit(total_bits - avail)
        raise DecodeError("entropy segment truncated") from eof
    except DecodeError:
        reader._seek_bit(total_bits - avail)
        raise
    reader._seek_bit(total_bits - avail)
    out = np.zeros(n_blocks * 64, dtype=np.int32)
    if idxs:
        out[np.asarray(idxs, dtype=np.intp)] = vals
    return out.reshape(n_blocks, 64)


def decode_plane_reference(
    reader: BitReader,
    n_blocks: int,
    dc_table=STD_DC_LUMA,
    ac_table=STD_AC_LUMA,
) -> np.ndarray:
    """The pre-LUT decode path: per-symbol F.16 MINCODE/MAXCODE walk.

    Kept as the bit-exactness oracle for :func:`decode_plane` and as the
    ``repro bench`` entropy-decode baseline.
    """
    out = np.zeros((n_blocks, 64), dtype=np.int32)
    prev_dc = 0
    for b in range(n_blocks):
        prev_dc = _decode_block(reader, out[b], prev_dc, dc_table, ac_table)
    return out


def _decode_block(
    reader: BitReader,
    zz: np.ndarray,
    prev_dc: int,
    dc_table=STD_DC_LUMA,
    ac_table=STD_AC_LUMA,
) -> int:
    try:
        category = dc_table.decode_walk(reader)
        diff = decode_magnitude(reader, category)
        dc = prev_dc + diff
        zz[0] = dc
        k = 1
        while k < 64:
            symbol = ac_table.decode_walk(reader)
            if symbol == EOB:
                break
            if symbol == ZRL:
                k += 16
                continue
            run = symbol >> 4
            size = symbol & 0x0F
            k += run
            if k >= 64:
                raise DecodeError(f"AC run overflows block (k={k})")
            zz[k] = decode_magnitude(reader, size)
            k += 1
        return dc
    except EOFError as eof:
        raise DecodeError("entropy segment truncated") from eof


def decode_frame_coefficients(
    payload: bytes, n_blocks: int, quality: int
) -> np.ndarray:
    """The Fetch stage: Huffman + dezigzag + dequantize -> (n, 8, 8)."""
    zz = decode_frame_bits(payload, n_blocks)
    return dequantize(dezigzag(zz), quant_table(quality))


def coefficients_from_qzz(qcoefs_zz: np.ndarray, quality: int) -> np.ndarray:
    """Fetch-stage fast path from stored quantized zigzag coefficients.

    Produces bit-identical output to :func:`decode_frame_coefficients`
    on the frame's own payload (verified by tests); used when the Python
    bit walk would dominate a large simulated run.
    """
    return dequantize(dezigzag(np.asarray(qcoefs_zz, dtype=np.int32)), quant_table(quality))


def idct_stage(coefs: np.ndarray) -> np.ndarray:
    """The IDCT stage: coefficients -> uint8 pixel blocks."""
    return pixels_from_idct(idct_blocks(coefs))


def split_blocks(blocks: np.ndarray, n_batches: int) -> list:
    """Partition (n, 8, 8) blocks into ``n_batches`` contiguous batches.

    Every batch is non-empty and sizes differ by at most one; this is the
    Fetch component's message partitioning.
    """
    blocks = np.asarray(blocks)
    n = blocks.shape[0]
    if n_batches <= 0 or n_batches > n:
        raise ValueError(f"cannot split {n} blocks into {n_batches} batches")
    bounds = np.linspace(0, n, n_batches + 1).round().astype(int)
    return [blocks[bounds[i] : bounds[i + 1]] for i in range(n_batches)]


def assemble_image(batches: list, height: int, width: int) -> np.ndarray:
    """The Reorder stage: ordered pixel-block batches -> (H, W) image."""
    from repro.mjpeg.encoder import blocks_to_image

    blocks = np.concatenate([np.asarray(b) for b in batches], axis=0)
    return blocks_to_image(blocks, height, width)


def decode_image(payload: bytes, height: int, width: int, quality: int) -> np.ndarray:
    """Full reference decode: Fetch -> IDCT -> Reorder in one call."""
    n_blocks = (height // 8) * (width // 8)
    coefs = decode_frame_coefficients(payload, n_blocks, quality)
    pixels = idct_stage(coefs)
    return assemble_image([pixels], height, width)


def decode_color_image(frame) -> np.ndarray:
    """Decode an :class:`~repro.mjpeg.encoder.EncodedColorFrame` back to
    (H, W, 3) uint8 RGB: planar entropy decode (luma then chroma tables),
    dequantize, IDCT, 4:2:0 upsample, colour conversion."""
    from repro.mjpeg.color import upsample_420, ycbcr_to_rgb
    from repro.mjpeg.huffman import STD_AC_CHROMA, STD_AC_LUMA, STD_DC_CHROMA, STD_DC_LUMA

    h, w = frame.height, frame.width
    reader = BitReader(frame.payload)
    luma_q = quant_table(frame.quality, chroma=False)
    chroma_q = quant_table(frame.quality, chroma=True)
    planes = []
    for (name, n_blocks, _offset), (ph, pw) in zip(
        frame.plane_index, ((h, w), (h // 2, w // 2), (h // 2, w // 2))
    ):
        dc_t, ac_t = (STD_DC_LUMA, STD_AC_LUMA) if name == "Y" else (STD_DC_CHROMA, STD_AC_CHROMA)
        table = luma_q if name == "Y" else chroma_q
        zz = decode_plane(reader, n_blocks, dc_t, ac_t)
        samples = idct_blocks(dequantize(dezigzag(zz), table)) + 128.0
        blocks = np.clip(samples, 0.0, 255.0)
        plane = _float_blocks_to_plane(blocks, ph, pw)
        planes.append(plane)
    y_plane, cb, cr = planes
    ycc = np.stack(
        [y_plane, upsample_420(cb, h, w), upsample_420(cr, h, w)], axis=-1
    )
    return ycbcr_to_rgb(ycc)


def _float_blocks_to_plane(blocks: np.ndarray, height: int, width: int) -> np.ndarray:
    """blocks_to_image for float planes (no uint8 constraint)."""
    n = (height // 8) * (width // 8)
    if blocks.shape != (n, 8, 8):
        raise ValueError(f"expected {(n, 8, 8)}, got {blocks.shape}")
    return (
        blocks.reshape(height // 8, width // 8, 8, 8).swapaxes(1, 2).reshape(height, width)
    )
