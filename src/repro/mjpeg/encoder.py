"""Baseline JPEG-style encoder for synthetic MJPEG streams.

Grayscale, 8x8 blocks, Annex K luminance tables, DC differential +
run-length AC coding -- a real entropy-coded segment, so the Fetch
component's Huffman decode exercises a genuine bitstream.  The container
is our own (no JFIF markers): each frame record carries its bit payload
plus geometry, which is all the decoder needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.mjpeg.bitio import BitWriter
from repro.mjpeg.color import rgb_to_ycbcr, subsample_420
from repro.mjpeg.dct import fdct_blocks
from repro.mjpeg.huffman import (
    EOB,
    STD_AC_CHROMA,
    STD_AC_LUMA,
    STD_DC_CHROMA,
    STD_DC_LUMA,
    ZRL,
    encode_magnitude,
    magnitude_category,
)
from repro.mjpeg.quant import quant_table, quantize
from repro.mjpeg.zigzag import zigzag


def image_to_blocks(image: np.ndarray) -> np.ndarray:
    """(H, W) -> (H//8 * W//8, 8, 8), raster block order."""
    image = np.asarray(image)
    h, w = image.shape
    if h % 8 or w % 8:
        raise ValueError(f"image dimensions must be multiples of 8, got {image.shape}")
    return (
        image.reshape(h // 8, 8, w // 8, 8).swapaxes(1, 2).reshape(-1, 8, 8)
    )


def blocks_to_image(blocks: np.ndarray, height: int, width: int) -> np.ndarray:
    """Inverse of :func:`image_to_blocks`."""
    blocks = np.asarray(blocks)
    if height % 8 or width % 8:
        raise ValueError(f"dimensions must be multiples of 8: {(height, width)}")
    n = (height // 8) * (width // 8)
    if blocks.shape != (n, 8, 8):
        raise ValueError(f"expected {(n, 8, 8)}, got {blocks.shape}")
    return (
        blocks.reshape(height // 8, width // 8, 8, 8).swapaxes(1, 2).reshape(height, width)
    )


@dataclass
class EncodedFrame:
    """One encoded image: bit payload + everything needed to decode it."""

    payload: bytes
    n_bits: int
    height: int
    width: int
    quality: int
    n_blocks: int
    #: Quantized zigzag coefficients (n_blocks, 64) -- retained so the
    #: cost-model-only decode path can skip the Python-level bit walk.
    qcoefs_zz: np.ndarray


def encode_image(image: np.ndarray, quality: int = 75) -> EncodedFrame:
    """Encode a grayscale uint8 image into an entropy-coded segment."""
    image = np.asarray(image)
    if image.dtype != np.uint8:
        raise ValueError(f"expected uint8 image, got {image.dtype}")
    h, w = image.shape
    blocks = image_to_blocks(image).astype(np.float64) - 128.0
    table = quant_table(quality)
    qblocks = quantize(fdct_blocks(blocks), table)
    qzz = zigzag(qblocks)  # (n_blocks, 64), int32

    writer = BitWriter()
    encode_plane(writer, qzz)
    writer.align()  # 1-pad the tail byte here, not in getvalue()
    payload = writer.getvalue()
    return EncodedFrame(
        payload=payload,
        n_bits=writer.bits_written,
        height=h,
        width=w,
        quality=quality,
        n_blocks=qzz.shape[0],
        qcoefs_zz=qzz.astype(np.int16),
    )


def encode_plane(
    writer: BitWriter,
    qzz: np.ndarray,
    dc_table=STD_DC_LUMA,
    ac_table=STD_AC_LUMA,
) -> None:
    """Encode one plane's (n, 64) quantized zigzag blocks with its own DC
    predictor chain and Huffman tables.

    The zigzag/RLE scan is vectorised: one ``np.nonzero`` over the whole
    plane yields every (block, position, value) AC triple, DC diffs come
    from one vectorised subtraction, and the Python loop only walks the
    nonzero coefficients (not all 64 slots per block).  Bitstream output
    is identical to the per-block scalar scan.
    """
    qzz = np.asarray(qzz)
    n_blocks = qzz.shape[0]
    if n_blocks == 0:
        return
    dcs = qzz[:, 0].astype(np.int64)
    diffs = np.empty(n_blocks, dtype=np.int64)
    diffs[0] = dcs[0]
    if n_blocks > 1:
        np.subtract(dcs[1:], dcs[:-1], out=diffs[1:])
    rows, cols = np.nonzero(qzz[:, 1:])
    cols = cols + 1
    bounds = np.searchsorted(rows, np.arange(n_blocks + 1)).tolist()
    cols_l = cols.tolist()
    vals_l = qzz[rows, cols].tolist()
    diffs_l = diffs.tolist()

    dc_enc = dc_table.encode_map
    ac_enc = ac_table.encode_map
    zrl_code, zrl_len = ac_enc[ZRL]
    eob_code, eob_len = ac_enc[EOB]
    w_write = writer.write
    for b in range(n_blocks):
        diff = diffs_l[b]
        category = diff.bit_length() if diff >= 0 else (-diff).bit_length()
        code, length = dc_enc[category]
        w_write(code, length)
        if category:
            w_write(diff + (1 << category) - 1 if diff < 0 else diff, category)
        prev_k = 0
        for i in range(bounds[b], bounds[b + 1]):
            k = cols_l[i]
            value = vals_l[i]
            run = k - prev_k - 1
            while run > 15:
                w_write(zrl_code, zrl_len)
                run -= 16
            category = value.bit_length() if value >= 0 else (-value).bit_length()
            code, length = ac_enc[(run << 4) | category]
            w_write(code, length)
            w_write(value + (1 << category) - 1 if value < 0 else value, category)
            prev_k = k
        if prev_k < 63:
            w_write(eob_code, eob_len)


def _encode_block(
    writer: BitWriter,
    zz: np.ndarray,
    prev_dc: int,
    dc_table=STD_DC_LUMA,
    ac_table=STD_AC_LUMA,
) -> int:
    """Scalar single-block reference encode; returns the block's DC value
    for the next diff.  ``encode_plane`` is the vectorised equivalent."""
    dc = int(zz[0])
    diff = dc - prev_dc
    category = magnitude_category(diff)
    dc_table.encode(writer, category)
    encode_magnitude(writer, diff, category)

    run = 0
    last_nonzero = int(np.max(np.nonzero(zz[1:])[0])) + 1 if np.any(zz[1:]) else 0
    for k in range(1, last_nonzero + 1):
        value = int(zz[k])
        if value == 0:
            run += 1
            continue
        while run > 15:
            ac_table.encode(writer, ZRL)
            run -= 16
        category = magnitude_category(value)
        ac_table.encode(writer, (run << 4) | category)
        encode_magnitude(writer, value, category)
        run = 0
    if last_nonzero < 63:
        ac_table.encode(writer, EOB)
    return dc


@dataclass
class EncodedColorFrame:
    """One encoded 4:2:0 color image: three planar entropy segments."""

    payload: bytes
    n_bits: int
    height: int
    width: int
    quality: int
    #: (plane, n_blocks, bit_offset) in Y, Cb, Cr order.  bit_offset is
    #: the starting bit of the plane's segment inside ``payload``.
    plane_index: tuple


def _plane_to_qzz(plane: np.ndarray, table: np.ndarray) -> np.ndarray:
    blocks = image_to_blocks_float(plane) - 128.0
    return zigzag(quantize(fdct_blocks(blocks), table))


def image_to_blocks_float(plane: np.ndarray) -> np.ndarray:
    """(H, W) float plane -> (n, 8, 8) blocks (same layout as
    :func:`image_to_blocks` but without the uint8 requirement)."""
    plane = np.asarray(plane, dtype=np.float64)
    h, w = plane.shape
    if h % 8 or w % 8:
        raise ValueError(f"plane dimensions must be multiples of 8, got {plane.shape}")
    return plane.reshape(h // 8, 8, w // 8, 8).swapaxes(1, 2).reshape(-1, 8, 8)


def encode_color_image(rgb: np.ndarray, quality: int = 75) -> EncodedColorFrame:
    """Encode an (H, W, 3) uint8 RGB image as planar 4:2:0 YCbCr.

    Dimensions must be multiples of 16 (so the subsampled chroma planes
    still align to 8x8 blocks).  Planes are entropy-coded back to back
    (Y with the luminance tables, Cb/Cr with the chrominance tables),
    each with its own DC predictor -- the planar analogue of a baseline
    JFIF scan.
    """
    rgb = np.asarray(rgb)
    if rgb.dtype != np.uint8:
        raise ValueError(f"expected uint8 RGB image, got {rgb.dtype}")
    h, w = rgb.shape[:2]
    if h % 16 or w % 16:
        raise ValueError(f"color images need dimensions divisible by 16, got {(h, w)}")
    ycc = rgb_to_ycbcr(rgb)
    y_plane = ycc[..., 0]
    cb = subsample_420(ycc[..., 1])
    cr = subsample_420(ycc[..., 2])

    luma_q = quant_table(quality, chroma=False)
    chroma_q = quant_table(quality, chroma=True)
    writer = BitWriter()
    index = []
    for plane, table, dc_t, ac_t in (
        (y_plane, luma_q, STD_DC_LUMA, STD_AC_LUMA),
        (cb, chroma_q, STD_DC_CHROMA, STD_AC_CHROMA),
        (cr, chroma_q, STD_DC_CHROMA, STD_AC_CHROMA),
    ):
        qzz = _plane_to_qzz(plane, table)
        index.append((qzz.shape[0], writer.bits_written))
        encode_plane(writer, qzz, dc_t, ac_t)
    writer.align()  # 1-pad the tail byte here, not in getvalue()
    payload = writer.getvalue()
    return EncodedColorFrame(
        payload=payload,
        n_bits=writer.bits_written,
        height=h,
        width=w,
        quality=quality,
        plane_index=(
            ("Y", index[0][0], index[0][1]),
            ("Cb", index[1][0], index[1][1]),
            ("Cr", index[2][0], index[2][1]),
        ),
    )
