"""Canonical Huffman coding as specified by JPEG (ITU-T T.81).

Tables are defined by the standard's ``(BITS, HUFFVAL)`` pair: BITS[l] is
the number of codes of length ``l+1``; HUFFVAL lists the symbol for each
code in canonical order.

Decoding is a single flat-table lookup: a lazily built 2^16-entry LUT
maps the next 16 bits of the stream (1-padded past EOF) directly to a
packed ``(code_length << 8) | symbol`` entry, so each symbol costs one
``peek16`` + one list index + one ``skip``.  The MINCODE/MAXCODE/VALPTR
walk of figure F.16 is retained as :meth:`HuffmanTable.decode_walk` --
the bit-exact reference the LUT is property-tested against, and the
pre-LUT baseline the ``repro bench`` entropy microbench compares to.

The shipped tables are the Annex K "typical" luminance tables; since the
encoder and decoder share them, correctness is self-contained.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.mjpeg.bitio import BitReader, BitWriter

# Annex K, table K.3 -- DC luminance.
DC_LUMA_BITS = [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0]
DC_LUMA_VALS = list(range(12))

# Annex K, table K.5 -- AC luminance.
AC_LUMA_BITS = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D]
AC_LUMA_VALS = [
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
    0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
    0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
    0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
    0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16,
    0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
    0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
    0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
    0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
    0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
    0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
    0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
    0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
    0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4,
    0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
    0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA,
    0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
]

# Annex K, table K.4 -- DC chrominance.
DC_CHROMA_BITS = [0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0]
DC_CHROMA_VALS = list(range(12))

# Annex K, table K.6 -- AC chrominance.
AC_CHROMA_BITS = [0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77]
AC_CHROMA_VALS = [
    0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21,
    0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
    0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
    0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33, 0x52, 0xF0,
    0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34,
    0xE1, 0x25, 0xF1, 0x17, 0x18, 0x19, 0x1A, 0x26,
    0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38,
    0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
    0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
    0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
    0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78,
    0x79, 0x7A, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
    0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96,
    0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5,
    0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4,
    0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3,
    0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2,
    0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA,
    0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9,
    0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
]

#: End-of-block and zero-run-length AC symbols.
EOB = 0x00
ZRL = 0xF0


class HuffmanTable:
    """A canonical Huffman code built from a (BITS, HUFFVAL) pair."""

    def __init__(self, bits: Sequence[int], values: Sequence[int], name: str = "") -> None:
        if len(bits) != 16:
            raise ValueError(f"BITS must have 16 entries, got {len(bits)}")
        if sum(bits) != len(values):
            raise ValueError(f"sum(BITS)={sum(bits)} but {len(values)} HUFFVAL entries")
        self.name = name
        self.bits = list(bits)
        self.values = list(values)
        # Canonical code assignment (T.81 figure C.2): codes of each
        # length are consecutive, doubling at each length increase.
        self.encode_map: Dict[int, Tuple[int, int]] = {}  # symbol -> (code, length)
        self._mincode = [0] * 17
        self._maxcode = [-1] * 17
        self._valptr = [0] * 17
        code = 0
        k = 0
        for length in range(1, 17):
            n = bits[length - 1]
            self._valptr[length] = k
            self._mincode[length] = code
            for _ in range(n):
                symbol = values[k]
                if symbol in self.encode_map:
                    raise ValueError(f"duplicate symbol {symbol:#x} in table {name!r}")
                self.encode_map[symbol] = (code, length)
                code += 1
                k += 1
            self._maxcode[length] = code - 1 if n else -1
            code <<= 1
            if code > (1 << length) * 2:
                raise ValueError(f"over-subscribed code space in table {name!r}")
        self._lut: Optional[List[int]] = None  # built on first decode
        self._lut_dc: Optional[List[int]] = None
        self._lut_ac: Optional[List[int]] = None

    @property
    def lut(self) -> List[int]:
        """The 2^16-entry decode table: index by the next 16 bits of the
        stream; entry is ``(code_length << 8) | symbol``, 0 = invalid."""
        return self._lut if self._lut is not None else self._build_lut()

    @property
    def lut_dc(self) -> List[int]:
        """2^16-entry table specialised for DC decode: the symbol *is* the
        magnitude category, so each entry packs the total consumption up
        front as ``((code_length + category) << 16) | category`` (0 =
        invalid).  ``decode_plane`` reads code and magnitude in one step."""
        if self._lut_dc is None:
            base = self.lut
            out = [0] * (1 << 16)
            for window, entry in enumerate(base):
                if entry:
                    length = entry >> 8
                    category = entry & 0xFF
                    out[window] = ((length + category) << 16) | category
            self._lut_dc = out
        return self._lut_dc

    @property
    def lut_ac(self) -> List[int]:
        """2^16-entry table specialised for AC decode.  Entries are
        ``((code_length + size) << 16) | (run << 8) | size`` for ordinary
        run/size symbols (ZRL included: run=15, size=0), ``-code_length``
        for EOB, and 0 for an invalid window."""
        if self._lut_ac is None:
            base = self.lut
            out = [0] * (1 << 16)
            for window, entry in enumerate(base):
                if entry:
                    length = entry >> 8
                    symbol = entry & 0xFF
                    if symbol == EOB:
                        out[window] = -length
                    else:
                        run = symbol >> 4
                        size = symbol & 0x0F
                        out[window] = ((length + size) << 16) | (run << 8) | size
            self._lut_ac = out
        return self._lut_ac

    def _build_lut(self) -> List[int]:
        # Canonical codes in (length asc, code asc) order cover contiguous
        # LUT intervals starting at 0: each code of length L owns the
        # 2^(16-L) windows sharing its prefix.  Build with np.repeat and
        # convert to a plain list for O(1) unboxed scalar indexing.
        import numpy as np

        packed: List[int] = []
        widths: List[int] = []
        for length in range(1, 17):
            n = self.bits[length - 1]
            k = self._valptr[length]
            for i in range(n):
                packed.append((length << 8) | self.values[k + i])
                widths.append(1 << (16 - length))
        if packed:
            lut = np.repeat(
                np.asarray(packed, dtype=np.int32), np.asarray(widths, dtype=np.int64)
            )
        else:
            lut = np.zeros(0, dtype=np.int32)
        if lut.shape[0] < 1 << 16:
            lut = np.concatenate([lut, np.zeros((1 << 16) - lut.shape[0], dtype=np.int32)])
        self._lut = lut.tolist()
        return self._lut

    def encode(self, writer: BitWriter, symbol: int) -> int:
        """Write a symbol's code; returns the number of bits emitted."""
        try:
            code, length = self.encode_map[symbol]
        except KeyError:
            raise ValueError(f"symbol {symbol:#x} not in table {self.name!r}") from None
        writer.write(code, length)
        return length

    def decode(self, reader: BitReader) -> int:
        """Read one symbol via the flat 16-bit LUT.

        Bit-exact with :meth:`decode_walk`, including error behaviour:
        EOFError when the stream ends mid-code, ValueError on a window
        that matches no code."""
        lut = self._lut
        if lut is None:
            lut = self._build_lut()
        entry = lut[reader.peek16()]
        if entry:
            reader.skip(entry >> 8)  # EOFError when the code overruns the data
            return entry & 0xFF
        if reader.bits_remaining() >= 16:
            raise ValueError(f"invalid Huffman code in table {self.name!r}")
        # Fewer than 16 real bits and none of their prefixes is a code:
        # the walk would run out of bits before resolving.
        raise EOFError("bit stream exhausted")

    def decode_walk(self, reader: BitReader) -> int:
        """Read one symbol (T.81 figure F.16 MINCODE/MAXCODE walk).

        The pre-LUT reference path: O(code length) per symbol.  Kept for
        property-testing the LUT and as the benchmark baseline."""
        code = reader.read_bit()
        length = 1
        while code > self._maxcode[length] or self.bits[length - 1] == 0:
            if length >= 16:
                raise ValueError(f"invalid Huffman code in table {self.name!r}")
            code = (code << 1) | reader.read_bit()
            length += 1
        return self.values[self._valptr[length] + (code - self._mincode[length])]


#: The standard tables, shared by encoder and decoder.
STD_DC_LUMA = HuffmanTable(DC_LUMA_BITS, DC_LUMA_VALS, name="dc_luma")
STD_AC_LUMA = HuffmanTable(AC_LUMA_BITS, AC_LUMA_VALS, name="ac_luma")
STD_DC_CHROMA = HuffmanTable(DC_CHROMA_BITS, DC_CHROMA_VALS, name="dc_chroma")
STD_AC_CHROMA = HuffmanTable(AC_CHROMA_BITS, AC_CHROMA_VALS, name="ac_chroma")


def magnitude_category(value: int) -> int:
    """JPEG SSSS category: number of bits to represent |value|."""
    return int(abs(value)).bit_length()


def encode_magnitude(writer: BitWriter, value: int, category: int) -> None:
    """Write the additional bits for ``value`` in the given category."""
    if category == 0:
        return
    if value < 0:
        value = value + (1 << category) - 1
    writer.write(value, category)


def decode_magnitude(reader: BitReader, category: int) -> int:
    """Inverse of :func:`encode_magnitude` (T.81 EXTEND procedure)."""
    if category == 0:
        return 0
    value = reader.read(category)
    if value < (1 << (category - 1)):
        value -= (1 << category) - 1
    return value
