"""Canonical Huffman coding as specified by JPEG (ITU-T T.81).

Tables are defined by the standard's ``(BITS, HUFFVAL)`` pair: BITS[l] is
the number of codes of length ``l+1``; HUFFVAL lists the symbol for each
code in canonical order.  Decoding uses the MINCODE/MAXCODE/VALPTR walk
of figure F.16 -- O(code length) per symbol with no tree allocation.

The shipped tables are the Annex K "typical" luminance tables; since the
encoder and decoder share them, correctness is self-contained.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.mjpeg.bitio import BitReader, BitWriter

# Annex K, table K.3 -- DC luminance.
DC_LUMA_BITS = [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0]
DC_LUMA_VALS = list(range(12))

# Annex K, table K.5 -- AC luminance.
AC_LUMA_BITS = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D]
AC_LUMA_VALS = [
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
    0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
    0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
    0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
    0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16,
    0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
    0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
    0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
    0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
    0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
    0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
    0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
    0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
    0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4,
    0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
    0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA,
    0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
]

# Annex K, table K.4 -- DC chrominance.
DC_CHROMA_BITS = [0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0]
DC_CHROMA_VALS = list(range(12))

# Annex K, table K.6 -- AC chrominance.
AC_CHROMA_BITS = [0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77]
AC_CHROMA_VALS = [
    0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21,
    0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
    0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
    0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33, 0x52, 0xF0,
    0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34,
    0xE1, 0x25, 0xF1, 0x17, 0x18, 0x19, 0x1A, 0x26,
    0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38,
    0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
    0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
    0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
    0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78,
    0x79, 0x7A, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
    0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96,
    0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5,
    0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4,
    0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3,
    0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2,
    0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA,
    0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9,
    0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
]

#: End-of-block and zero-run-length AC symbols.
EOB = 0x00
ZRL = 0xF0


class HuffmanTable:
    """A canonical Huffman code built from a (BITS, HUFFVAL) pair."""

    def __init__(self, bits: Sequence[int], values: Sequence[int], name: str = "") -> None:
        if len(bits) != 16:
            raise ValueError(f"BITS must have 16 entries, got {len(bits)}")
        if sum(bits) != len(values):
            raise ValueError(f"sum(BITS)={sum(bits)} but {len(values)} HUFFVAL entries")
        self.name = name
        self.bits = list(bits)
        self.values = list(values)
        # Canonical code assignment (T.81 figure C.2): codes of each
        # length are consecutive, doubling at each length increase.
        self.encode_map: Dict[int, Tuple[int, int]] = {}  # symbol -> (code, length)
        self._mincode = [0] * 17
        self._maxcode = [-1] * 17
        self._valptr = [0] * 17
        code = 0
        k = 0
        for length in range(1, 17):
            n = bits[length - 1]
            self._valptr[length] = k
            self._mincode[length] = code
            for _ in range(n):
                symbol = values[k]
                if symbol in self.encode_map:
                    raise ValueError(f"duplicate symbol {symbol:#x} in table {name!r}")
                self.encode_map[symbol] = (code, length)
                code += 1
                k += 1
            self._maxcode[length] = code - 1 if n else -1
            code <<= 1
            if code > (1 << length) * 2:
                raise ValueError(f"over-subscribed code space in table {name!r}")

    def encode(self, writer: BitWriter, symbol: int) -> int:
        """Write a symbol's code; returns the number of bits emitted."""
        try:
            code, length = self.encode_map[symbol]
        except KeyError:
            raise ValueError(f"symbol {symbol:#x} not in table {self.name!r}") from None
        writer.write(code, length)
        return length

    def decode(self, reader: BitReader) -> int:
        """Read one symbol (T.81 figure F.16 MINCODE/MAXCODE walk)."""
        code = reader.read_bit()
        length = 1
        while code > self._maxcode[length] or self.bits[length - 1] == 0:
            if length >= 16:
                raise ValueError(f"invalid Huffman code in table {self.name!r}")
            code = (code << 1) | reader.read_bit()
            length += 1
        return self.values[self._valptr[length] + (code - self._mincode[length])]


#: The standard tables, shared by encoder and decoder.
STD_DC_LUMA = HuffmanTable(DC_LUMA_BITS, DC_LUMA_VALS, name="dc_luma")
STD_AC_LUMA = HuffmanTable(AC_LUMA_BITS, AC_LUMA_VALS, name="ac_luma")
STD_DC_CHROMA = HuffmanTable(DC_CHROMA_BITS, DC_CHROMA_VALS, name="dc_chroma")
STD_AC_CHROMA = HuffmanTable(AC_CHROMA_BITS, AC_CHROMA_VALS, name="ac_chroma")


def magnitude_category(value: int) -> int:
    """JPEG SSSS category: number of bits to represent |value|."""
    return int(abs(value)).bit_length()


def encode_magnitude(writer: BitWriter, value: int, category: int) -> None:
    """Write the additional bits for ``value`` in the given category."""
    if category == 0:
        return
    if value < 0:
        value = value + (1 << category) - 1
    writer.write(value, category)


def decode_magnitude(reader: BitReader, category: int) -> int:
    """Inverse of :func:`encode_magnitude` (T.81 EXTEND procedure)."""
    if category == 0:
        return 0
    value = reader.read(category)
    if value < (1 << (category - 1)):
        value -= (1 << category) - 1
    return value
