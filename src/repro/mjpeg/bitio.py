"""Bit-level I/O for the entropy-coded segment.

The reader keeps a 64-bit-bounded accumulator refilled bytewise with
``int.from_bytes``, so multi-bit reads, 16-bit peeks (for LUT Huffman
decode) and skips are O(1) integer ops instead of per-bit Python loops.
"""

from __future__ import annotations


class BitWriter:
    """MSB-first bit accumulator.

    ``write`` accepts values of any width (Python ints are unbounded);
    the accumulator is flushed to bytes as it fills.
    """

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0
        self.bits_written = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` of ``value``, MSB first."""
        if nbits < 0:
            raise ValueError(f"nbits out of range: {nbits}")
        if nbits == 0:
            return
        if value < 0 or value >= (1 << nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        self.bits_written += nbits
        nbits_left = self._nbits
        if nbits_left >= 8:
            acc = self._acc
            out = self._out
            while nbits_left >= 8:
                nbits_left -= 8
                out.append((acc >> nbits_left) & 0xFF)
            self._nbits = nbits_left
            self._acc = acc & ((1 << nbits_left) - 1)

    def align(self) -> None:
        """Pad to the next byte boundary with 1-bits (the JPEG stuffing
        convention).  The pad bits are not counted in ``bits_written``.
        No-op when already aligned."""
        if self._nbits:
            pad = 8 - self._nbits
            self._out.append(((self._acc << pad) | ((1 << pad) - 1)) & 0xFF)
            self._acc = 0
            self._nbits = 0

    def getvalue(self) -> bytes:
        """Finish the stream, padding the final byte with 1-bits (JPEG
        convention) -- the padding is not counted in ``bits_written``.
        Non-destructive: further writes continue from the unpadded state."""
        out = bytearray(self._out)
        if self._nbits:
            pad = 8 - self._nbits
            out.append(((self._acc << pad) | ((1 << pad) - 1)) & 0xFF)
        return bytes(out)


class BitReader:
    """MSB-first bit consumer over a bytes object."""

    __slots__ = ("_data", "_nbytes", "_bytepos", "_acc", "_accbits")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._nbytes = len(data)
        self._bytepos = 0  # index of the next byte to load into the accumulator
        self._acc = 0      # low _accbits bits hold unread data, MSB first
        self._accbits = 0

    @property
    def bits_read(self) -> int:
        """Number of bits consumed so far."""
        return self._bytepos * 8 - self._accbits

    @property
    def exhausted(self) -> bool:
        """True when no bits remain."""
        return self._accbits == 0 and self._bytepos >= self._nbytes

    def bits_remaining(self) -> int:
        """Number of unread bits left in the stream."""
        return self._accbits + (self._nbytes - self._bytepos) * 8

    def _refill(self) -> None:
        """Top the accumulator up towards 64 bits (bounded so arithmetic
        stays on machine-word ints)."""
        pos = self._bytepos
        take = (64 - self._accbits) >> 3
        avail = self._nbytes - pos
        if take > avail:
            take = avail
        if take > 0:
            self._acc = (self._acc << (take * 8)) | int.from_bytes(
                self._data[pos : pos + take], "big"
            )
            self._accbits += take * 8
            self._bytepos = pos + take

    def read_bit(self) -> int:
        """Read a single bit (EOFError past the end)."""
        accbits = self._accbits
        if not accbits:
            self._refill()
            accbits = self._accbits
            if not accbits:
                raise EOFError("bit stream exhausted")
        accbits -= 1
        self._accbits = accbits
        bit = self._acc >> accbits
        self._acc &= (1 << accbits) - 1
        return bit

    def read(self, nbits: int) -> int:
        """Read ``nbits`` MSB-first; returns the unsigned value."""
        if nbits < 0:
            raise ValueError(f"negative nbits: {nbits}")
        accbits = self._accbits
        if nbits > accbits:
            self._refill()
            accbits = self._accbits
            if nbits > accbits:
                return self._read_slow(nbits)
        accbits -= nbits
        self._accbits = accbits
        value = self._acc >> accbits
        self._acc &= (1 << accbits) - 1
        return value

    def _read_slow(self, nbits: int) -> int:
        """Reads wider than one accumulator refill (or hitting EOF)."""
        value = 0
        remaining = nbits
        while remaining:
            if self._accbits == 0:
                self._refill()
                if self._accbits == 0:
                    raise EOFError("bit stream exhausted")
            take = remaining if remaining < self._accbits else self._accbits
            self._accbits -= take
            value = (value << take) | (self._acc >> self._accbits)
            self._acc &= (1 << self._accbits) - 1
            remaining -= take
        return value

    def peek16(self) -> int:
        """The next 16 bits without consuming them, 1-padded past the end
        of the stream (JPEG convention) -- the LUT-decode window."""
        accbits = self._accbits
        if accbits < 16:
            self._refill()
            accbits = self._accbits
            if accbits < 16:
                pad = 16 - accbits
                return (self._acc << pad) | ((1 << pad) - 1)
        return self._acc >> (accbits - 16)

    def skip(self, nbits: int) -> None:
        """Consume ``nbits`` already inspected via :meth:`peek16`
        (EOFError if the stream is shorter)."""
        accbits = self._accbits
        if nbits > accbits:
            self._refill()
            accbits = self._accbits
            if nbits > accbits:
                raise EOFError("bit stream exhausted")
        accbits -= nbits
        self._accbits = accbits
        self._acc &= (1 << accbits) - 1

    # -- inlined-decode support (see repro.mjpeg.decoder.decode_plane) ------

    def _seek_bit(self, bitpos: int) -> None:
        """Reposition the cursor to an absolute bit offset.  Used by the
        inlined decode loop, which tracks consumption on its own and
        writes the final position back here."""
        bytepos = (bitpos + 7) >> 3
        accbits = bytepos * 8 - bitpos
        self._bytepos = bytepos
        self._accbits = accbits
        self._acc = (self._data[bytepos - 1] & ((1 << accbits) - 1)) if accbits else 0
