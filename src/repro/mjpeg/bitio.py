"""Bit-level I/O for the entropy-coded segment."""

from __future__ import annotations


class BitWriter:
    """MSB-first bit accumulator."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0
        self.bits_written = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` of ``value``, MSB first."""
        if nbits < 0 or nbits > 32:
            raise ValueError(f"nbits out of range: {nbits}")
        if nbits == 0:
            return
        if value < 0 or value >= (1 << nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        self.bits_written += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._out.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def getvalue(self) -> bytes:
        """Finish the stream, padding the final byte with 1-bits (JPEG
        convention) -- the padding is not counted in ``bits_written``."""
        out = bytearray(self._out)
        if self._nbits:
            pad = 8 - self._nbits
            out.append(((self._acc << pad) | ((1 << pad) - 1)) & 0xFF)
        return bytes(out)


class BitReader:
    """MSB-first bit consumer over a bytes object."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # absolute bit position
        self._nbits_total = len(data) * 8

    @property
    def bits_read(self) -> int:
        """Number of bits consumed so far."""
        return self._pos

    @property
    def exhausted(self) -> bool:
        """True when no bits remain."""
        return self._pos >= self._nbits_total

    def read_bit(self) -> int:
        """Read a single bit (EOFError past the end)."""
        if self._pos >= self._nbits_total:
            raise EOFError("bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read(self, nbits: int) -> int:
        """Read ``nbits`` MSB-first; returns the unsigned value."""
        if nbits < 0:
            raise ValueError(f"negative nbits: {nbits}")
        value = 0
        for _ in range(nbits):
            value = (value << 1) | self.read_bit()
        return value
