"""Quantization tables (JPEG Annex K) with libjpeg quality scaling."""

from __future__ import annotations

import numpy as np

#: Annex K table K.1 -- luminance quantization, raster order.
STD_LUMA_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int32,
)


#: Annex K table K.2 -- chrominance quantization, raster order.
STD_CHROMA_QUANT = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.int32,
)


def quant_table(quality: int = 75, chroma: bool = False) -> np.ndarray:
    """Annex K table scaled with the libjpeg quality formula.

    quality 50 returns the base table; higher is finer quantization.
    ``chroma=True`` selects the chrominance table (K.2).
    """
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000 // quality
    else:
        scale = 200 - 2 * quality
    base = STD_CHROMA_QUANT if chroma else STD_LUMA_QUANT
    table = (base * scale + 50) // 100
    return np.clip(table, 1, 255).astype(np.int32)


def quantize(coefs: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Round DCT coefficients to quantized integers (..., 8, 8)."""
    return np.round(np.asarray(coefs) / table).astype(np.int32)


def dequantize(qcoefs: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Rescale quantized integers back to coefficient magnitudes."""
    return (np.asarray(qcoefs) * table).astype(np.float64)
