"""The MJPR stream container: MJPEG streams on disk.

The paper's Fetch component "deals with file management" -- this module
gives it files to manage.  The format is deliberately simple and fully
specified here:

```
header:  magic "MJPR" | version u16 | flags u16 | quality u8 | pad u8
         height u16 | width u16 | n_frames u32
frame:   n_blocks u32 | n_bits u32 | payload_len u32 | payload bytes
         [if flags & FLAG_COEFS: qcoefs int16[n_blocks*64] little-endian]
```

All integers little-endian.  Optionally the quantized coefficients are
stored next to each payload so the cost-model-only Fetch path works on
loaded streams without re-running the entropy decoder.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

import numpy as np

from repro.mjpeg.encoder import EncodedFrame
from repro.mjpeg.stream import FrameRecord, MJPEGStream

MAGIC = b"MJPR"
VERSION = 1
FLAG_COEFS = 0x0001

_HEADER = struct.Struct("<4sHHBxHHI")
_FRAME = struct.Struct("<III")

PathLike = Union[str, Path]


class ContainerError(Exception):
    """Malformed or unsupported MJPR data."""


def save_stream(stream: MJPEGStream, path: PathLike, with_coefficients: bool = True) -> int:
    """Write a stream; returns the byte size of the file."""
    flags = FLAG_COEFS if with_coefficients else 0
    chunks = [
        _HEADER.pack(
            MAGIC, VERSION, flags, stream.quality, stream.height, stream.width, len(stream)
        )
    ]
    for record in stream:
        frame = record.frame
        payload = frame.payload
        chunks.append(_FRAME.pack(frame.n_blocks, frame.n_bits, len(payload)))
        chunks.append(payload)
        if with_coefficients:
            coefs = np.ascontiguousarray(frame.qcoefs_zz, dtype="<i2")
            if coefs.shape != (frame.n_blocks, 64):
                raise ContainerError(
                    f"frame {record.index}: coefficient shape {coefs.shape} "
                    f"!= {(frame.n_blocks, 64)}"
                )
            chunks.append(coefs.tobytes())
    data = b"".join(chunks)
    Path(path).write_bytes(data)
    return len(data)


def load_stream(path: PathLike) -> MJPEGStream:
    """Read a stream written by :func:`save_stream`.

    When the file has no stored coefficients they are reconstructed by
    entropy-decoding each payload, so loaded streams always support both
    Fetch paths.
    """
    data = Path(path).read_bytes()
    if len(data) < _HEADER.size:
        raise ContainerError("file shorter than an MJPR header")
    magic, version, flags, quality, height, width, n_frames = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise ContainerError(f"bad magic {magic!r}; not an MJPR file")
    if version != VERSION:
        raise ContainerError(f"unsupported MJPR version {version}")
    offset = _HEADER.size
    records = []
    for index in range(n_frames):
        try:
            n_blocks, n_bits, payload_len = _FRAME.unpack_from(data, offset)
        except struct.error as error:
            raise ContainerError(f"truncated frame header at frame {index}") from error
        offset += _FRAME.size
        end = offset + payload_len
        if end > len(data):
            raise ContainerError(f"truncated payload at frame {index}")
        payload = data[offset:end]
        offset = end
        if flags & FLAG_COEFS:
            nbytes = n_blocks * 64 * 2
            if offset + nbytes > len(data):
                raise ContainerError(f"truncated coefficients at frame {index}")
            coefs = (
                np.frombuffer(data, dtype="<i2", count=n_blocks * 64, offset=offset)
                .reshape(n_blocks, 64)
                .astype(np.int16)
            )
            offset += nbytes
        else:
            from repro.mjpeg.decoder import decode_frame_bits

            coefs = decode_frame_bits(payload, n_blocks).astype(np.int16)
        frame = EncodedFrame(
            payload=payload,
            n_bits=n_bits,
            height=height,
            width=width,
            quality=quality,
            n_blocks=n_blocks,
            qcoefs_zz=coefs,
        )
        records.append(FrameRecord(index=index, frame=frame))
    if offset != len(data):
        raise ContainerError(f"{len(data) - offset} trailing bytes after last frame")
    return MJPEGStream(records, height, width, quality)
