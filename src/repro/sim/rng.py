"""Named, seeded random streams.

Every source of randomness in a simulation draws from a stream obtained by
name from a single :class:`RngRegistry`.  Stream seeds are derived from the
registry seed and a stable hash of the stream name, so adding a new stream
never perturbs existing ones -- a standard reproducibility discipline for
parallel-systems simulators.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stable_name_entropy(name: str) -> int:
    """A 64-bit integer derived only from the stream name (not PYTHONHASHSEED)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory for independent, reproducible ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(_stable_name_entropy(name),))
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are independent of this one's."""
        return RngRegistry(seed=(self.seed * 0x9E3779B97F4A7C15 + salt) % (2**63))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
