"""Generator-based simulation processes.

A process body is a Python generator that yields :class:`Command` objects:

- ``Timeout(ns)``      -- resume after ``ns`` nanoseconds of virtual time.
- ``WaitEvent(event)`` -- resume when ``event`` triggers; the yield
  expression evaluates to the trigger value.

Sub-behaviours compose with plain ``yield from``.  The generator's return
value becomes the process result, exposed through ``proc.done`` (an
:class:`~repro.sim.events.Event` triggered with the result) and
``proc.result``.

Exceptions raised inside a process propagate out of ``Kernel.run()`` by
default (``daemon=False`` processes), which keeps failures loud during
tests; set ``on_error`` to capture instead.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.errors import ProcessKilled, SimulationError
from repro.sim.events import Event
from repro.sim.kernel import Kernel


class Command:
    """Base class for everything a process may yield."""

    __slots__ = ()


class Timeout(Command):
    """Advance virtual time by ``delay_ns`` for the yielding process."""

    __slots__ = ("delay_ns",)

    def __init__(self, delay_ns: int) -> None:
        if delay_ns < 0:
            raise SimulationError(f"negative timeout: {delay_ns}")
        self.delay_ns = int(delay_ns)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.delay_ns})"


class WaitEvent(Command):
    """Block until ``event`` triggers; yield evaluates to its value."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event

    def __repr__(self) -> str:  # pragma: no cover
        return f"WaitEvent({self.event!r})"


ProcessBody = Generator[Command, Any, Any]


class Process:
    """A running generator coupled to the kernel.

    Parameters
    ----------
    kernel:
        The event kernel driving this process.
    body:
        A generator yielding :class:`Command` objects.
    name:
        Debugging label.
    start_delay_ns:
        Virtual-time delay before the first resume.
    on_error:
        Optional handler ``fn(process, exception)``.  When absent, an
        exception inside the body is re-raised out of the kernel loop.
    daemon:
        Daemon processes do not count towards the kernel's deadlock
        detection -- use for service loops (e.g. CPU dispatchers) that
        legitimately idle forever.
    """

    __slots__ = ("kernel", "body", "name", "done", "on_error", "daemon", "_alive", "_pending_handle")

    def __init__(
        self,
        kernel: Kernel,
        body: ProcessBody,
        name: str = "proc",
        start_delay_ns: int = 0,
        on_error: Optional[Callable[["Process", BaseException], None]] = None,
        daemon: bool = False,
    ) -> None:
        if not hasattr(body, "send"):
            raise SimulationError(f"process body must be a generator, got {type(body)!r}")
        self.kernel = kernel
        self.body = body
        self.name = name
        self.done = Event(kernel, name=f"{name}.done")
        self.on_error = on_error
        self.daemon = daemon
        self._alive = True
        self._pending_handle = None
        if not daemon:
            kernel._live_processes += 1
        # Zero-delay starts ride the immediate queue: call_soon is
        # ordering-identical to schedule(0, ...) by the kernel contract
        # but skips the calendar insert entirely.
        if start_delay_ns:
            self._pending_handle = kernel.schedule(start_delay_ns, self._resume, None)
        else:
            self._pending_handle = kernel.call_soon(self._resume, None)

    # -- lifecycle ---------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while still executing."""
        return self._alive

    @property
    def result(self) -> Any:
        """The generator's return value; valid once ``done`` triggered."""
        return self.done.value

    def kill(self) -> None:
        """Throw :class:`ProcessKilled` into the body at the current instant."""
        if not self._alive:
            return
        if self._pending_handle is not None:
            self._pending_handle.cancel()
            self._pending_handle = None
        self._resume(None, exc=ProcessKilled(f"process {self.name!r} killed"))

    # -- engine ------------------------------------------------------------

    def _finish(self, result: Any) -> None:
        self._alive = False
        if not self.daemon:
            self.kernel._live_processes -= 1
        self.done.trigger(result)

    def _fail(self, exc: BaseException) -> None:
        self._alive = False
        if not self.daemon:
            self.kernel._live_processes -= 1
        if isinstance(exc, ProcessKilled):
            # A kill is an expected external termination, not an error.
            self.done.trigger(None)
            return
        if self.on_error is not None:
            self.on_error(self, exc)
            if not self.done.triggered:
                self.done.trigger(None)
        else:
            raise exc

    def _resume(self, value: Any, exc: Optional[BaseException] = None) -> None:
        if not self._alive:
            return
        self._pending_handle = None
        try:
            if exc is not None:
                command = self.body.throw(exc)
            else:
                command = self.body.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except ProcessKilled as killed:
            self._fail(killed)
            return
        except BaseException as error:  # noqa: BLE001 - deliberate funnel
            self._fail(error)
            return
        self._dispatch(command)

    def _dispatch(self, command: Command) -> None:
        if isinstance(command, Timeout):
            # Timeout(0) -- the cooperative-yield idiom -- takes the
            # immediate-queue fast path (same FIFO order, no calendar).
            delay = command.delay_ns
            if delay:
                self._pending_handle = self.kernel.schedule(delay, self._resume, None)
            else:
                self._pending_handle = self.kernel.call_soon(self._resume, None)
        elif isinstance(command, WaitEvent):
            command.event.add_waiter(self._resume)
        else:
            self._resume(
                None,
                exc=SimulationError(
                    f"process {self.name!r} yielded non-command {command!r}; "
                    "did you forget 'yield from'?"
                ),
            )

    def __repr__(self) -> str:  # pragma: no cover
        state = "alive" if self._alive else "done"
        return f"<Process {self.name!r} {state}>"
