"""Inter-shard mailboxes and the deterministic delivery staging area.

The sharded simulator (:mod:`repro.sim.shard`) splits one logical
machine across several :class:`~repro.sim.kernel.Kernel` instances.  A
message crossing (or, in sharded mode, even staying inside) a partition
cannot be ``Channel.put`` directly: channels are kernel-bound, and the
arrival *order* of concurrent sends would depend on which shard happened
to run first.  Instead every delivery is an :class:`Envelope` with a
totally ordered key

    ``(recv_time, send_time, src_component, src_interface, send_seq)``

where ``send_seq`` is the sender context's own per-message counter.  All
key fields are properties of the *logical* send, none of the shard
layout, so sorting envelopes by key reproduces one canonical per-channel
put order for every shard count -- the heart of the shard-invariance
oracle.

Two containers move envelopes:

- :class:`Mailbox` -- the cross-shard handoff: a lock-protected FIFO the
  *sending* shard posts into and the *receiving* shard drains at
  synchronization points.  This is the only structure touched by two
  shards.
- :class:`Staging` -- the receiving shard's private priority queue of
  undelivered envelopes, ordered by key.  Envelopes are released into
  the shard kernel in key order, batch-wise below a conservative time
  horizon (see ``Shard.run_until``), which pins equal-``recv_time``
  deliveries to key order no matter when they arrived.
"""

from __future__ import annotations

import threading
from heapq import heapify, heappop, heappush
from sys import intern as _intern
from typing import Any, Callable, Iterable, List, Optional, Tuple

#: Key fields, in comparison order (see module docstring).
KEY_FIELDS = ("recv_time", "send_time", "src", "src_interface", "seq")


class Envelope:
    """One staged delivery: an ordering key plus the delivery action.

    ``deliver`` is a zero-arg callable executed *on the receiving
    shard's kernel* at ``recv_time`` (typically a bound ``Channel.put``).
    Comparison is by key only -- keys are unique per logical message
    (each sender context numbers its sends), so heaps of envelopes never
    fall back to comparing callables.
    """

    __slots__ = ("recv_time", "send_time", "src", "src_interface", "seq", "deliver")

    def __init__(
        self,
        recv_time: int,
        send_time: int,
        src: str,
        src_interface: str,
        seq: int,
        deliver: Callable[[], None],
    ) -> None:
        if recv_time < send_time:
            raise ValueError(
                f"recv_time {recv_time} precedes send_time {send_time} "
                f"(negative link latency?)"
            )
        self.recv_time = recv_time
        self.send_time = send_time
        # A workload sends many envelopes with the same (src, iface)
        # strings; interning collapses them to one object each, so the
        # heap's tie-break comparisons short-circuit on identity instead
        # of comparing characters (and N staged envelopes hold 2 string
        # references, not 2N strings).
        self.src = _intern(src)
        self.src_interface = _intern(src_interface)
        self.seq = seq
        self.deliver = deliver

    @property
    def key(self) -> Tuple[int, int, str, str, int]:
        """The total-order key (shard-layout independent)."""
        return (self.recv_time, self.send_time, self.src, self.src_interface, self.seq)

    def __lt__(self, other: "Envelope") -> bool:
        return self.key < other.key

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Envelope recv={self.recv_time} send={self.send_time} "
            f"src={self.src}.{self.src_interface}#{self.seq}>"
        )


class Mailbox:
    """Thread-safe FIFO of envelopes posted by other shards.

    The parallel (window-barrier) driver has sender shards posting while
    the receiver runs, so ``post``/``drain`` take a lock; the cooperative
    driver pays the same (uncontended) lock for one code path.  Order of
    the FIFO itself is irrelevant -- envelopes are re-ordered by key in
    the receiver's :class:`Staging`.
    """

    def __init__(self) -> None:
        self._items: List[Envelope] = []
        self._lock = threading.Lock()

    def post(self, envelope: Envelope) -> None:
        """Enqueue an envelope (called from the *sending* shard)."""
        with self._lock:
            self._items.append(envelope)

    def drain(self) -> List[Envelope]:
        """Remove and return all pending envelopes (receiving shard)."""
        with self._lock:
            items, self._items = self._items, []
        return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


def _deliver_group(group: List[Envelope]) -> Callable[[], None]:
    """One kernel callback delivering a whole equal-``recv_time`` group.

    The group is already in key order (popped off the staging heap), so
    delivering inline back-to-back produces exactly the channel-put
    order the per-envelope path produced: each ``deliver`` runs at the
    same kernel ``now`` and any wakeups it triggers ride ``call_soon``
    with sequence numbers *after* the whole group, just as they would
    have landed after the group's individually scheduled events.
    """

    def deliver_batch() -> None:
        for env in group:
            env.deliver()

    return deliver_batch


class Staging:
    """A shard-private min-heap of envelopes ordered by delivery key."""

    def __init__(self) -> None:
        self._heap: List[Envelope] = []
        self.released = 0
        #: Kernel callbacks actually scheduled by :meth:`release_batched`
        #: -- ``released / batches`` is the cross-shard batch factor the
        #: scaling bench reports.
        self.batches = 0

    def push(self, envelope: Envelope) -> None:
        """Stage one envelope for later release."""
        heappush(self._heap, envelope)

    def push_many(self, envelopes: Iterable[Envelope]) -> int:
        """Stage a chunk of envelopes in one O(n) heapify instead of n
        O(log n) sifts -- the mailbox drain path hands over a whole
        window's worth of cross-shard arrivals at once."""
        items = list(envelopes)
        if not items:
            return 0
        heap = self._heap
        if len(items) > len(heap) >> 2:
            heap.extend(items)
            heapify(heap)
        else:
            for env in items:
                heappush(heap, env)
        return len(items)

    def min_recv_time(self) -> Optional[int]:
        """Earliest staged ``recv_time``, or None when empty."""
        return self._heap[0].recv_time if self._heap else None

    def release_below(self, horizon: int, schedule: Callable[[int, Any], Any]) -> int:
        """Release every envelope with ``recv_time < horizon`` into the
        kernel via ``schedule(recv_time, deliver)``, in key order.

        Key-order release below a *conservative* horizon (no
        later-staged envelope can undercut it) is what makes equal-time
        deliveries land in the same canonical order for every shard
        count.  This is the per-envelope reference path; the hot path is
        :meth:`release_batched`, which the equivalence tests hold to
        identical dispatch traces."""
        heap = self._heap
        n = 0
        while heap and heap[0].recv_time < horizon:
            env = heappop(heap)
            schedule(env.recv_time, env.deliver)
            n += 1
        self.released += n
        self.batches += n
        return n

    def release_batched(self, horizon: int, schedule: Callable[[int, Any], Any]) -> int:
        """Batched release: one scheduled callback per *distinct*
        ``recv_time`` below the horizon, delivering that time's whole
        key-ordered group inline.

        Equivalent to :meth:`release_below` by construction: every
        callback is scheduled *now* (so its kernel sequence number
        precedes anything the executing window schedules later, exactly
        like the per-envelope path), and within one timestamp the group
        delivers in key order.  A fan-in workload whose messages share
        timestamps pays one kernel event per timestamp instead of one
        per envelope -- the cross-shard event count drops by the batch
        factor."""
        heap = self._heap
        if not heap or heap[0].recv_time >= horizon:
            return 0
        batch: List[Envelope] = []
        while heap and heap[0].recv_time < horizon:
            batch.append(heappop(heap))
        n = len(batch)
        i = 0
        while i < n:
            env = batch[i]
            t = env.recv_time
            j = i + 1
            while j < n and batch[j].recv_time == t:
                j += 1
            if j - i == 1:
                schedule(t, env.deliver)
            else:
                schedule(t, _deliver_group(batch[i:j]))
            self.batches += 1
            i = j
        self.released += n
        return n

    def __len__(self) -> int:
        return len(self._heap)
