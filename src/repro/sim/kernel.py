"""The discrete-event kernel: a clock plus a heap of timestamped callbacks.

The kernel is intentionally minimal -- processes, events and resources are
layered on top of ``schedule_at`` / ``run``.  Determinism contract: events
with equal timestamps fire in scheduling order (FIFO tie-break via a
monotonically increasing sequence number).

Hot-path design notes
---------------------
The kernel is the inner loop of every simulated run, so it avoids three
sources of interpreter overhead:

- ``pending()`` is O(1): a live-event counter is maintained by
  ``schedule``/``cancel``/``step`` instead of scanning the heap.
- Same-instant wakeups (``call_soon``) bypass the heap entirely through a
  FIFO side queue.  Ordering stays exactly as if they had gone through
  the heap because both queues share one sequence-number domain and the
  dispatcher merges them by ``(time, seq)``.
- ``EventHandle`` objects are pooled.  A handle is recycled only when a
  refcount probe proves no external reference survives, so user-held
  handles (e.g. for a later ``cancel``) are never reused underneath them.

When cancelled entries accumulate in the heap the kernel compacts it
(filter + heapify), keeping ``peek``/``step`` from wading through
tombstones.
"""

from __future__ import annotations

import heapq
import sys
from collections import deque
from typing import Any, Callable, Optional

from repro.sim.errors import DeadlockError, SchedulingError

#: Compaction threshold: rebuild the heap once at least this many cancelled
#: entries linger *and* they make up half the heap.
_COMPACT_MIN = 64

#: Upper bound on pooled EventHandle objects.
_POOL_MAX = 512


class EventHandle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_kernel", "_queued", "_in_heap")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        kernel: Optional["Kernel"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._kernel = kernel
        self._queued = kernel is not None
        self._in_heap = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call repeatedly,
        including after the event has already fired (then a no-op)."""
        if self.cancelled:
            return
        self.cancelled = True
        kernel = self._kernel
        if kernel is not None and self._queued:
            kernel._alive -= 1
            if self._in_heap:
                kernel._n_cancelled += 1
                if (
                    kernel._n_cancelled >= _COMPACT_MIN
                    and kernel._n_cancelled * 2 >= len(kernel._heap)
                ):
                    kernel._compact()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


class Kernel:
    """Discrete-event simulation kernel with integer-nanosecond time.

    Usage::

        k = Kernel()
        k.schedule(1000, print, "fires at t=1000ns")
        k.run()
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._heap: list[EventHandle] = []
        self._imm: deque[EventHandle] = deque()  # same-instant FIFO fast path
        self._live_processes: int = 0  # maintained by Process
        self.events_executed: int = 0
        self._alive: int = 0  # scheduled, not cancelled, not yet fired
        self._n_cancelled: int = 0  # cancelled entries still queued
        self._pool: list[EventHandle] = []

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def schedule(self, delay_ns: int, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SchedulingError(f"negative delay: {delay_ns}")
        return self.schedule_at(self._now + int(delay_ns), callback, *args)

    def schedule_at(self, time_ns: int, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SchedulingError(f"cannot schedule in the past: {time_ns} < {self._now}")
        handle = self._new_handle(int(time_ns), callback, args)
        handle._in_heap = True
        heapq.heappush(self._heap, handle)
        return handle

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant, bypassing
        the heap.  Equivalent to ``schedule(0, ...)`` -- including FIFO
        ordering relative to it -- but O(1) with no sift costs; used by
        the event/channel wakeup fast path."""
        handle = self._new_handle(self._now, callback, args)
        self._imm.append(handle)
        return handle

    def _new_handle(self, time_ns: int, callback: Callable[..., None], args: tuple) -> EventHandle:
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = time_ns
            handle.seq = self._seq
            handle.callback = callback
            handle.args = args
            handle.cancelled = False
            handle._queued = True
            handle._in_heap = False
        else:
            handle = EventHandle(time_ns, self._seq, callback, args, self)
        self._seq += 1
        self._alive += 1
        return handle

    def _discard(self, handle: EventHandle) -> None:
        """Retire a dequeued handle: break refs and pool it when no
        external reference can still reach it (refcount probe)."""
        handle._queued = False
        handle.callback = None  # type: ignore[assignment]
        handle.args = ()
        # Refs here: the caller's binding(s) + getrefcount's argument.
        # <= 3 means nobody outside the kernel holds the handle.
        if len(self._pool) < _POOL_MAX and sys.getrefcount(handle) <= 3:
            self._pool.append(handle)

    def _compact(self) -> None:
        """Drop cancelled tombstones from the heap and re-heapify."""
        heap = self._heap
        live = [h for h in heap if not h.cancelled]
        removed = len(heap) - len(live)
        if not removed:
            return
        for h in heap:
            if h.cancelled:
                h._queued = False
                h.callback = None  # type: ignore[assignment]
                h.args = ()
        self._n_cancelled -= removed
        heapq.heapify(live)
        self._heap = live

    def _prune_heads(self) -> None:
        """Pop cancelled entries off both queue heads."""
        imm = self._imm
        while imm and imm[0].cancelled:
            self._discard(imm.popleft())
        heap = self._heap
        while heap and heap[0].cancelled:
            self._n_cancelled -= 1
            self._discard(heapq.heappop(heap))

    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled callbacks.  O(1)."""
        return self._alive

    def peek(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if the queue is empty."""
        self._prune_heads()
        imm, heap = self._imm, self._heap
        if imm:
            if heap and (heap[0].time, heap[0].seq) < (imm[0].time, imm[0].seq):
                return heap[0].time
            return imm[0].time
        return heap[0].time if heap else None

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when idle."""
        self._prune_heads()
        imm, heap = self._imm, self._heap
        if imm:
            head = imm[0]
            if heap and (heap[0].time, heap[0].seq) < (head.time, head.seq):
                handle = heapq.heappop(heap)
            else:
                handle = imm.popleft()
        elif heap:
            handle = heapq.heappop(heap)
        else:
            return False
        self._now = handle.time
        self.events_executed += 1
        self._alive -= 1
        handle._queued = False
        callback = handle.callback
        args = handle.args
        callback(*args)
        self._discard(handle)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``
        have fired.  Returns the final simulated time.

        Raises :class:`DeadlockError` if the queue drains while registered
        processes are still alive (everybody blocked on events that nobody
        can trigger).
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            nxt = self.peek()
            if nxt is None:
                if self._live_processes > 0:
                    raise DeadlockError(
                        f"no pending events but {self._live_processes} process(es) still alive"
                    )
                break
            if until is not None and nxt > until:
                self._now = until
                break
            self.step()
            executed += 1
        return self._now
