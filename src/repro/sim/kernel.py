"""The discrete-event kernel: a clock plus a calendar queue of callbacks.

The kernel is intentionally minimal -- processes, events and resources are
layered on top of ``schedule_at`` / ``run``.  Determinism contract: events
with equal timestamps fire in scheduling order (FIFO tie-break via a
monotonically increasing sequence number).

Hot-path design notes
---------------------
The kernel is the inner loop of every simulated run.  Earlier revisions
used a binary heap of ``EventHandle`` objects; at 200k+ events the
``O(log n)`` sift with a *Python* ``__lt__`` per comparison dominated the
per-event cost.  The queue is now a **calendar queue** (R. Brown,
"Calendar Queues", CACM 1988): an array of time buckets of width ``w``
spanning one "year", with O(1) insert (one integer divide + list append)
and O(1) amortised dispatch (sweep the current bucket, sort its due
entries once with the C tuple sort).  Entries are plain
``(time, seq, handle)`` tuples, so every comparison the structure ever
makes runs at C speed.

- **Adaptive resize.**  When the live population outgrows (or undershoots)
  the bucket array, the calendar is rebuilt: bucket count tracks the
  population (power of two) and the bucket width is re-derived from the
  median inter-event gap of a timestamp sample, which keeps bucket
  occupancy O(1) for the near-uniform timestamp distributions the
  workloads produce.
- **Far-future spill.**  Events more than a year ahead of the sweep would
  degrade bucket scans, so they wait in a C-speed tuple heap and migrate
  into buckets as the sweep approaches -- pathological timestamps cannot
  degrade the common-case insert.
- **Due-run dispatch.**  The sweep extracts a bucket's due entries into a
  sorted run consumed by index; ``run()`` dispatches straight off that
  run, folding the old ``peek()``-then-``step()`` double head-prune into
  a single selection per event.
- **Timer wheel** (:meth:`Kernel.schedule_timer`): deadline timers that
  are usually cancelled before firing (receive deadlines, watchdogs) park
  in a coarse wheel and are promoted into the calendar only when their
  slot comes due.  A cancelled timer never becomes a calendar tombstone,
  so schedule-then-cancel churn costs two appends and a flag write.
- ``pending()`` is O(1): a live-event counter is maintained by
  ``schedule``/``cancel``/``step`` instead of scanning the structures.
- Same-instant wakeups (``call_soon``) bypass the calendar entirely
  through a FIFO side queue.  Ordering stays exactly as if they had gone
  through the calendar because all queues share one sequence-number
  domain and the dispatcher merges them by ``(time, seq)``.
- ``EventHandle`` objects are pooled.  A handle is recycled only when a
  refcount probe proves no external reference survives, so user-held
  handles (e.g. for a later ``cancel``) are never reused underneath them.

``cancel`` stays lazy (a flag write); cancelled entries are dropped when
the sweep meets them, and a compaction rebuild purges them wholesale once
they are both numerous and the majority of the stored population.
"""

from __future__ import annotations

import sys
from bisect import insort
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.sim.errors import DeadlockError, SchedulingError

#: Compaction threshold: rebuild the calendar once at least this many
#: cancelled entries linger *and* they make up half the stored entries.
_COMPACT_MIN = 64

#: Upper bound on pooled EventHandle objects.
_POOL_MAX = 512

#: Calendar geometry bounds (bucket counts are powers of two).
_MIN_BUCKETS = 32
_MAX_BUCKETS = 1 << 16

#: Dispatch trims the consumed prefix of the due run past this length.
_READY_TRIM = 4096

#: Timer-wheel slots (fixed; the slot width adapts per anchoring).
_WHEEL_SLOTS = 256

_INF = float("inf")

#: Allocation fast path: ``object.__new__`` skips the ``__init__``
#: frame; the hot paths write every slot inline (same as a pool hit).
_new_handle_obj = object.__new__


class EventHandle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_kernel", "_queued", "_in_cal")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        kernel: Optional["Kernel"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._kernel = kernel
        self._queued = kernel is not None
        self._in_cal = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call repeatedly,
        including after the event has already fired (then a no-op)."""
        if self.cancelled:
            return
        self.cancelled = True
        kernel = self._kernel
        if kernel is not None and self._queued:
            kernel._alive -= 1
            if self._in_cal:
                kernel._n_cancelled += 1
                if (
                    kernel._n_cancelled >= _COMPACT_MIN
                    and kernel._n_cancelled * 2 >= kernel._cal_count
                ):
                    kernel._purge()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


class Kernel:
    """Discrete-event simulation kernel with integer-nanosecond time.

    Usage::

        k = Kernel()
        k.schedule(1000, print, "fires at t=1000ns")
        k.run()
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._imm: deque[EventHandle] = deque()  # same-instant FIFO fast path
        self._live_processes: int = 0  # maintained by Process
        self.events_executed: int = 0
        #: Consulted by ``run()`` when the queue drains with processes
        #: still alive: a zero-arg callable returning True when it
        #: injected new work (e.g. drained an inter-shard mailbox), in
        #: which case the loop continues instead of raising
        #: :class:`DeadlockError`.
        self.on_idle: Optional[Callable[[], bool]] = None
        #: Per-shard kernels disable local deadlock detection: an idle
        #: shard with pending cross-shard input is not deadlocked, so the
        #: check belongs to the coordinator (after draining mailboxes).
        self.deadlock_check: bool = True
        self._alive: int = 0  # scheduled, not cancelled, not yet fired
        self._n_cancelled: int = 0  # cancelled entries still stored in the calendar
        self._pool: list[EventHandle] = []
        # -- calendar queue ----------------------------------------------
        self._n_buckets: int = _MIN_BUCKETS
        self._mask: int = _MIN_BUCKETS - 1
        self._width: int = 1024  # ns; re-derived on rebuild
        self._buckets: list[list[tuple]] = [[] for _ in range(_MIN_BUCKETS)]
        self._bucket_count: int = 0  # entries stored in the bucket array
        self._cal_count: int = 0  # entries in buckets + spill + due run
        self._bucket_top: int = self._width  # exclusive bound of the due window
        self._cur: int = 0  # bucket whose window ends at _bucket_top
        self._year: int = _MIN_BUCKETS * self._width
        self._far: list[tuple] = []  # spill heap: > one year ahead of the sweep
        self._far_limit: int = self._bucket_top + self._year
        self._ready: list[tuple] = []  # sorted due run, consumed by index
        self._ready_pos: int = 0
        self._ready_cap: int = 512  # rebuild pressure threshold for the due run
        self._grow_cap: int = _MIN_BUCKETS << 1  # bucket-population rebuild trigger
        self._far_cap: int = _MIN_BUCKETS << 1  # spill-size rebuild trigger
        # -- timer wheel -------------------------------------------------
        self._wheel: list[list[tuple]] = [[] for _ in range(_WHEEL_SLOTS)]
        self._wheel_entries: int = 0  # stored wheel entries (live + cancelled)
        self._wheel_base: int = 0
        self._wheel_tw: int = 1
        self._wheel_pos: int = _WHEEL_SLOTS  # exhausted; re-anchor on next insert
        self._wheel_next = _INF  # lower bound on the next undrained slot start

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay_ns: int, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now.

        This is the hottest entry point in the kernel; the insert body
        of :meth:`_schedule_abs` is inlined here to skip a call frame.
        Keep the two in sync."""
        if delay_ns < 0:
            raise SchedulingError(f"negative delay: {delay_ns}")
        time_ns = self._now + int(delay_ns)
        pool = self._pool
        seq = self._seq
        if pool:
            handle = pool.pop()
        else:
            handle = _new_handle_obj(EventHandle)
            handle._kernel = self
        handle.time = time_ns
        handle.seq = seq
        handle.callback = callback
        handle.args = args
        handle.cancelled = False
        handle._queued = True
        handle._in_cal = True
        self._seq = seq + 1
        self._alive += 1
        self._cal_count += 1
        entry = (time_ns, seq, handle)
        if time_ns < self._bucket_top:
            ready = self._ready
            insort(ready, entry, self._ready_pos)
            if len(ready) - self._ready_pos > self._ready_cap:
                if ready[-1][0] > ready[self._ready_pos][0]:
                    self._rebuild()
                else:
                    self._ready_cap = (len(ready) - self._ready_pos) << 1
        elif time_ns < self._far_limit:
            self._buckets[(time_ns // self._width) & self._mask].append(entry)
            self._bucket_count += 1
            if self._bucket_count > self._grow_cap:
                self._rebuild()
        else:
            far = self._far
            heappush(far, entry)
            if len(far) > self._far_cap:
                self._rebuild()
        return handle

    def schedule_at(self, time_ns: int, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SchedulingError(f"cannot schedule in the past: {time_ns} < {self._now}")
        return self._schedule_abs(int(time_ns), callback, args)

    def _schedule_abs(self, time_ns: int, callback: Callable[..., None], args: tuple) -> EventHandle:
        pool = self._pool
        seq = self._seq
        if pool:
            handle = pool.pop()
        else:
            handle = _new_handle_obj(EventHandle)
            handle._kernel = self
        handle.time = time_ns
        handle.seq = seq
        handle.callback = callback
        handle.args = args
        handle.cancelled = False
        handle._queued = True
        handle._in_cal = True
        self._seq = seq + 1
        self._alive += 1
        self._cal_count += 1
        entry = (time_ns, seq, handle)
        if time_ns < self._bucket_top:
            # Due inside the current sweep window: insert into the sorted
            # run directly (at or after the consumption point -- the entry
            # is never earlier than anything already dispatched).
            ready = self._ready
            insort(ready, entry, self._ready_pos)
            if len(ready) - self._ready_pos > self._ready_cap:
                if ready[-1][0] > ready[self._ready_pos][0]:
                    self._rebuild()  # re-derive a tighter width
                else:
                    # One dense timestamp: inserts append in O(1); just
                    # back the threshold off geometrically.
                    self._ready_cap = (len(ready) - self._ready_pos) << 1
        elif time_ns < self._far_limit:
            self._buckets[(time_ns // self._width) & self._mask].append(entry)
            self._bucket_count += 1
            if self._bucket_count > self._grow_cap:
                self._rebuild()
        else:
            far = self._far
            heappush(far, entry)
            if len(far) > self._far_cap:
                self._rebuild()  # spill pressure: re-anchor the year
        return handle

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant, bypassing
        the calendar.  Equivalent to ``schedule(0, ...)`` -- including
        FIFO ordering relative to it -- but O(1) with no bucket math;
        used by the event/channel wakeup fast path."""
        pool = self._pool
        if pool:
            handle = pool.pop()
        else:
            handle = _new_handle_obj(EventHandle)
            handle._kernel = self
        handle.time = self._now
        handle.seq = self._seq
        handle.callback = callback
        handle.args = args
        handle.cancelled = False
        handle._queued = True
        handle._in_cal = False
        self._seq += 1
        self._alive += 1
        self._imm.append(handle)
        return handle

    def schedule_timer(self, delay_ns: int, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule a **deadline timer**: semantics identical to
        :meth:`schedule` (same ``(time, seq)`` ordering domain), tuned
        for timers that are usually cancelled before firing.

        The handle parks in a coarse timer wheel and is promoted into the
        calendar only when its slot comes due, so the common
        schedule-then-cancel churn of receive deadlines never creates a
        calendar tombstone and never triggers compaction."""
        if delay_ns < 0:
            raise SchedulingError(f"negative delay: {delay_ns}")
        delay_ns = int(delay_ns)
        time_ns = self._now + delay_ns
        if not self._wheel_entries:
            # Empty wheel: re-anchor it around this deadline so the slot
            # width matches the workload's timeout scale (horizon = 2x).
            self._wheel_tw = (delay_ns >> 7) or 1
            self._wheel_base = self._now
            self._wheel_pos = 0
            self._wheel_next = _INF
        idx = (time_ns - self._wheel_base) // self._wheel_tw
        if idx < self._wheel_pos or idx >= _WHEEL_SLOTS:
            # Behind the drained cursor or beyond the horizon: the wheel
            # cannot hold it; fall back to an ordinary calendar insert.
            return self._schedule_abs(time_ns, callback, args)
        handle = self._new_handle(time_ns, callback, args)
        self._wheel[idx].append((time_ns, handle.seq, handle))
        self._wheel_entries += 1
        slot_start = self._wheel_base + idx * self._wheel_tw
        if slot_start < self._wheel_next:
            self._wheel_next = slot_start
        return handle

    def _new_handle(self, time_ns: int, callback: Callable[..., None], args: tuple) -> EventHandle:
        pool = self._pool
        if pool:
            handle = pool.pop()
        else:
            handle = _new_handle_obj(EventHandle)
            handle._kernel = self
        handle.time = time_ns
        handle.seq = self._seq
        handle.callback = callback
        handle.args = args
        handle.cancelled = False
        handle._queued = True
        handle._in_cal = False
        self._seq += 1
        self._alive += 1
        return handle

    def _discard(self, handle: EventHandle) -> None:
        """Retire a dequeued handle: break refs and pool it when no
        external reference can still reach it (refcount probe)."""
        handle._queued = False
        handle.callback = None  # type: ignore[assignment]
        handle.args = ()
        # Refs here: the caller's binding(s) + getrefcount's argument
        # (+ possibly the consumed entry tuple, which is never re-read).
        # <= 3 means nobody outside the kernel holds the handle.
        if len(self._pool) < _POOL_MAX and sys.getrefcount(handle) <= 3:
            self._pool.append(handle)

    # -- calendar machinery ---------------------------------------------------

    def _insert_entry(self, entry: tuple) -> None:
        """Re-file one ``(time, seq, handle)`` entry (timer promotion)."""
        t = entry[0]
        if t < self._bucket_top:
            insort(self._ready, entry, self._ready_pos)
        elif t < self._far_limit:
            self._buckets[(t // self._width) & self._mask].append(entry)
            self._bucket_count += 1
        else:
            heappush(self._far, entry)
        self._cal_count += 1

    def _purge(self) -> None:
        """Tombstone compaction without touching the geometry: filter
        cancelled entries out of the due run, buckets and spill in
        place.  Unlike the old heap (where dead entries cost an
        ``O(log n)`` sift each), a calendar tombstone only costs its
        sweep visit, so compaction exists for memory hygiene and can be
        this cheap: each purge visits ~2x the entries it drops."""
        discard = self._discard
        ready = self._ready
        live_ready: list[tuple] = []
        append = live_ready.append
        for i in range(self._ready_pos, len(ready)):
            e = ready[i]
            if e[2].cancelled:
                discard(e[2])
            else:
                append(e)
        self._ready = live_ready
        self._ready_pos = 0
        # Re-derive the due-run pressure threshold from the compacted
        # population: a purge that dropped most of a bloated run must not
        # leave the old (doubled-up) threshold behind, or the next burst
        # of inserts would defer the rebuild it needs.
        self._ready_cap = max(512, len(live_ready) << 1)
        buckets = self._buckets
        bucket_count = 0
        for i, b in enumerate(buckets):
            if not b:
                continue
            keep = [e for e in b if not e[2].cancelled]
            if len(keep) != len(b):
                for e in b:
                    if e[2].cancelled:
                        discard(e[2])
                buckets[i] = keep
            bucket_count += len(keep)
        self._bucket_count = bucket_count
        far = self._far
        if far:
            keep = [e for e in far if not e[2].cancelled]
            if len(keep) != len(far):
                for e in far:
                    if e[2].cancelled:
                        discard(e[2])
                heapify(keep)
                self._far = far = keep
        self._cal_count = len(live_ready) + bucket_count + len(far)
        self._n_cancelled = 0

    def _rebuild(self) -> None:
        """Collect live entries, drop tombstones, re-derive the bucket
        count and width from the live distribution, redistribute.

        Serves three roles: adaptive resize (population outgrew or
        undershot the bucket array), tombstone compaction, and spill
        re-anchoring (the year no longer covers the live span)."""
        if self._n_cancelled:
            entries = []
            append = entries.append
            discard = self._discard
            ready = self._ready
            for i in range(self._ready_pos, len(ready)):
                e = ready[i]
                if e[2].cancelled:
                    discard(e[2])
                else:
                    append(e)
            for b in self._buckets:
                for e in b:
                    if e[2].cancelled:
                        discard(e[2])
                    else:
                        append(e)
            for e in self._far:
                if e[2].cancelled:
                    discard(e[2])
                else:
                    append(e)
        else:
            entries = self._ready[self._ready_pos:]
            extend = entries.extend
            for b in self._buckets:
                if b:
                    extend(b)
            extend(self._far)
        count = len(entries)
        if count > 1:
            # Bucket width ~ 3x the median inter-event gap of a sample
            # (the median shrugs off one far-future outlier; ties at a
            # single hot timestamp fall through to width 1).
            step = count // 64 or 1
            times = sorted(entries[i][0] for i in range(0, count, step))
            gaps = sorted(times[i + 1] - times[i] for i in range(len(times) - 1))
            width = 3 * gaps[len(gaps) // 2] or 1
            t0 = times[0]
            span_buckets = (times[-1] - t0) // width + 2
        else:
            width = self._width
            t0 = entries[0][0] if entries else self._now
            span_buckets = 1
        # Size one doubling ahead of the live population so a growing
        # queue rebuilds O(log n) times total -- but no wider than the
        # sampled span needs: tie-heavy workloads fit in a few buckets,
        # and allocating count-many empty lists is the dominant rebuild
        # cost.  (The sample min standing in for the true min is safe:
        # a too-high epoch only routes more entries to the due run.)
        n_new = _MIN_BUCKETS
        target = count << 1
        if span_buckets < target:
            target = span_buckets
        while n_new < target and n_new < _MAX_BUCKETS:
            n_new <<= 1
        epoch = t0 // width
        mask = n_new - 1
        top = (epoch + 1) * width
        year = n_new * width
        far_limit = top + year
        buckets: list[list[tuple]] = [[] for _ in range(n_new)]
        far: list[tuple] = []
        due: list[tuple] = []
        bucket_count = 0
        for e in entries:
            t = e[0]
            if t < top:
                due.append(e)
            elif t < far_limit:
                buckets[(t // width) & mask].append(e)
                bucket_count += 1
            else:
                far.append(e)
        due.sort()
        heapify(far)
        self._n_buckets = n_new
        self._mask = mask
        self._width = width
        self._year = year
        self._cur = epoch & mask
        self._bucket_top = top
        self._far_limit = far_limit
        self._buckets = buckets
        self._bucket_count = bucket_count
        self._far = far
        self._ready = due
        self._ready_pos = 0
        self._ready_cap = max(512, len(due) << 1)
        # Pressure triggers back off geometrically past the current
        # population: when the geometry can no longer grow (span-capped
        # or at _MAX_BUCKETS), rebuilds stay O(log n) instead of
        # thrashing once per insert.
        self._grow_cap = max(n_new << 1, bucket_count << 1)
        self._far_cap = max(n_new << 1, len(far) << 1)
        self._cal_count = count
        self._n_cancelled = 0

    def _advance(self) -> bool:
        """Sweep forward until a bucket yields due entries into the run;
        returns False when the calendar is empty."""
        self._ready = []
        self._ready_pos = 0
        live = self._cal_count - self._n_cancelled
        if live * 4 < self._n_buckets and self._n_buckets > _MIN_BUCKETS:
            self._rebuild()
            if self._ready:
                return True
        if not self._bucket_count:
            if not self._far:
                return False
            return self._jump()
        buckets = self._buckets
        far = self._far
        mask = self._mask
        w = self._width
        cur = self._cur
        top = self._bucket_top
        fl = self._far_limit
        for _ in range(self._n_buckets):
            cur = (cur + 1) & mask
            top += w
            fl += w
            while far and far[0][0] < fl:
                e = heappop(far)
                buckets[(e[0] // w) & mask].append(e)
                self._bucket_count += 1
            b = buckets[cur]
            if b:
                due = [e for e in b if e[0] < top]
                if due:
                    if len(due) == len(b):
                        buckets[cur] = []
                    else:
                        buckets[cur] = [e for e in b if e[0] >= top]
                    self._bucket_count -= len(due)
                    due.sort()
                    self._ready = due
                    self._ready_cap = max(512, len(due) << 1)
                    self._cur = cur
                    self._bucket_top = top
                    self._far_limit = fl
                    return True
        self._cur = cur
        self._bucket_top = top
        self._far_limit = fl
        return self._jump()

    def _jump(self) -> bool:
        """A whole year swept empty: reposition the sweep at the global
        minimum directly instead of walking empty years."""
        t_min = None
        if self._bucket_count:
            for b in self._buckets:
                for e in b:
                    if t_min is None or e[0] < t_min:
                        t_min = e[0]
        far = self._far
        if far and (t_min is None or far[0][0] < t_min):
            t_min = far[0][0]
        if t_min is None:
            return False
        w = self._width
        mask = self._mask
        epoch = t_min // w
        cur = epoch & mask
        top = (epoch + 1) * w
        fl = top + self._year
        buckets = self._buckets
        while far and far[0][0] < fl:
            e = heappop(far)
            buckets[(e[0] // w) & mask].append(e)
            self._bucket_count += 1
        b = buckets[cur]
        due = [e for e in b if e[0] < top]
        if len(due) == len(b):
            buckets[cur] = []
        else:
            buckets[cur] = [e for e in b if e[0] >= top]
        self._bucket_count -= len(due)
        due.sort()
        self._ready = due
        self._ready_pos = 0
        self._ready_cap = max(512, len(due) << 1)
        self._cur = cur
        self._bucket_top = top
        self._far_limit = fl
        return True

    def _promote_timers(self, t) -> None:
        """Drain every wheel slot whose window starts at or before ``t``
        into the calendar (``t=None`` drains the whole wheel).  Cancelled
        timers are dropped here for free."""
        wheel = self._wheel
        tw = self._wheel_tw
        base = self._wheel_base
        pos = self._wheel_pos
        while pos < _WHEEL_SLOTS and self._wheel_entries:
            if t is not None and base + pos * tw > t:
                break
            slot = wheel[pos]
            if slot:
                self._wheel_entries -= len(slot)
                for e in slot:
                    h = e[2]
                    if h.cancelled:
                        self._discard(h)
                    else:
                        h._in_cal = True
                        self._insert_entry(e)
                wheel[pos] = []
            pos += 1
        self._wheel_pos = pos
        if pos < _WHEEL_SLOTS and self._wheel_entries:
            self._wheel_next = base + pos * tw
        else:
            self._wheel_next = _INF

    def _select(self):
        """Prune cancelled heads, promote due timers, and return
        ``(time, src)`` for the next event: ``src`` is 0 for the
        immediate queue, 1 for the calendar run, None when idle."""
        imm = self._imm
        while True:
            while imm and imm[0].cancelled:
                self._discard(imm.popleft())
            # -- calendar head (prune tombstones, refill the due run) ----
            # Guarded by the O(1) entry count: an imm-only workload (the
            # channel wakeup pattern) never touches the sweep machinery.
            e = None
            if self._cal_count:
                ready = self._ready
                pos = self._ready_pos
                while True:
                    if pos < len(ready):
                        e = ready[pos]
                        h = e[2]
                        if h.cancelled:
                            pos += 1
                            self._n_cancelled -= 1
                            self._cal_count -= 1
                            self._discard(h)
                            continue
                        if pos >= _READY_TRIM:
                            del ready[:pos]
                            pos = 0
                        self._ready_pos = pos
                        break
                    self._ready_pos = pos
                    if not self._advance():
                        e = None
                        break
                    ready = self._ready
                    pos = self._ready_pos
            # -- merge with the immediate queue by (time, seq) -----------
            if imm:
                h = imm[0]
                if e is not None and (e[0] < h.time or (e[0] == h.time and e[1] < h.seq)):
                    t, src = e[0], 1
                else:
                    t, src = h.time, 0
            elif e is not None:
                t, src = e[0], 1
            else:
                if self._wheel_entries:
                    self._promote_timers(None)
                    continue
                return None, None
            if self._wheel_entries and self._wheel_next <= t:
                self._promote_timers(t)
                continue
            return t, src

    # -- dispatch -------------------------------------------------------------

    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled callbacks.  O(1)."""
        return self._alive

    def peek(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if the queue is empty."""
        return self._select()[0]

    def idle_advance(self, time_ns: int) -> None:
        """Move the idle clock forward to ``time_ns`` without dispatching.

        The sharded coordinator's gap hop: a shard whose next activity is
        a staged envelope at ``time_ns`` has nothing to execute in
        ``(now, time_ns)``, so the clock jumps there directly.  Refuses
        to travel backwards -- that would re-open a past the shard
        already published lookahead promises about."""
        time_ns = int(time_ns)
        if time_ns < self._now:
            raise SchedulingError(
                f"cannot idle-advance backwards: {time_ns} < {self._now}"
            )
        self._now = time_ns

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when idle."""
        t, src = self._select()
        if src is None:
            return False
        if src:
            pos = self._ready_pos
            handle = self._ready[pos][2]
            self._ready_pos = pos + 1
            self._cal_count -= 1
        else:
            handle = self._imm.popleft()
        self._now = t
        self.events_executed += 1
        self._alive -= 1
        handle._queued = False
        callback = handle.callback
        args = handle.args
        callback(*args)
        self._discard(handle)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``
        have fired.  Returns the final simulated time.

        Raises :class:`DeadlockError` if the queue drains while registered
        processes are still alive (everybody blocked on events that nobody
        can trigger).
        """
        executed = 0
        imm = self._imm
        select = self._select
        discard = self._discard
        while True:
            if max_events is not None and executed >= max_events:
                break
            t, src = select()
            if src is None:
                if self.on_idle is not None and self.on_idle():
                    continue  # the hook injected new work (mailbox drain)
                if self._live_processes > 0 and self.deadlock_check:
                    raise DeadlockError(
                        f"no pending events but {self._live_processes} process(es) still alive"
                    )
                break
            if until is not None and t > until:
                self._now = until
                break
            if src:
                pos = self._ready_pos
                handle = self._ready[pos][2]
                self._ready_pos = pos + 1
                self._cal_count -= 1
            else:
                handle = imm.popleft()
            self._now = t
            self.events_executed += 1
            self._alive -= 1
            handle._queued = False
            callback = handle.callback
            args = handle.args
            callback(*args)
            discard(handle)
            executed += 1
        return self._now
