"""The discrete-event kernel: a clock plus a heap of timestamped callbacks.

The kernel is intentionally minimal -- processes, events and resources are
layered on top of ``schedule_at`` / ``run``.  Determinism contract: events
with equal timestamps fire in scheduling order (FIFO tie-break via a
monotonically increasing sequence number).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.errors import DeadlockError, SchedulingError


class EventHandle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


class Kernel:
    """Discrete-event simulation kernel with integer-nanosecond time.

    Usage::

        k = Kernel()
        k.schedule(1000, print, "fires at t=1000ns")
        k.run()
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._heap: list[EventHandle] = []
        self._live_processes: int = 0  # maintained by Process
        self.events_executed: int = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def schedule(self, delay_ns: int, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SchedulingError(f"negative delay: {delay_ns}")
        return self.schedule_at(self._now + int(delay_ns), callback, *args)

    def schedule_at(self, time_ns: int, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SchedulingError(f"cannot schedule in the past: {time_ns} < {self._now}")
        handle = EventHandle(int(time_ns), self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled callbacks."""
        return sum(1 for h in self._heap if not h.cancelled)

    def peek(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when idle."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            self.events_executed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``
        have fired.  Returns the final simulated time.

        Raises :class:`DeadlockError` if the queue drains while registered
        processes are still alive (everybody blocked on events that nobody
        can trigger).
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            nxt = self.peek()
            if nxt is None:
                if self._live_processes > 0:
                    raise DeadlockError(
                        f"no pending events but {self._live_processes} process(es) still alive"
                    )
                break
            if until is not None and nxt > until:
                self._now = until
                break
            self.step()
            executed += 1
        return self._now
