"""Exception hierarchy for the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised when ``run()`` is asked to make progress but no event is
    pending while processes are still alive (i.e. everybody is blocked)."""


class ProcessKilled(SimulationError):
    """Injected into a process generator when it is killed externally."""


class SchedulingError(SimulationError):
    """Raised on invalid scheduling requests (negative delays, re-running
    a finished kernel, triggering an already-triggered event, ...)."""
