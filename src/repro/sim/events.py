"""One-shot triggerable events, the basic blocking primitive.

A process blocks on an :class:`Event` by yielding
:class:`~repro.sim.process.WaitEvent`.  ``trigger(value)`` resumes every
waiter at the current simulation instant (in wait order) and records the
value, which becomes the result of the ``yield``.  Waiters that subscribe
after the trigger resume immediately.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.sim.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class Event:
    """A one-shot level-triggered event carrying an optional value."""

    __slots__ = ("kernel", "name", "_triggered", "_value", "_waiters", "_callbacks")

    def __init__(self, kernel: "Kernel", name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._triggered = False
        self._value: Any = None
        self._waiters: List[Callable[[Any], None]] = []
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has fired."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The trigger value (error before the event fires)."""
        if not self._triggered:
            raise SchedulingError(f"event {self.name!r} read before trigger")
        return self._value

    def on_trigger(self, callback: Callable[[Any], None]) -> None:
        """Register a plain callback (no process involved).  Fires at
        trigger time, or immediately (synchronously) if already triggered."""
        if self._triggered:
            callback(self._value)
        else:
            self._callbacks.append(callback)

    def add_waiter(self, resume: Callable[[Any], None]) -> None:
        """Internal: used by Process when interpreting WaitEvent."""
        if self._triggered:
            # Resume at the current instant but asynchronously, so the
            # waiting process does not re-enter while another is running.
            # call_soon keeps schedule(0, ...) FIFO semantics while
            # skipping the calendar (kernel fast path).
            self.kernel.call_soon(resume, self._value)
        else:
            self._waiters.append(resume)

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters at the current instant."""
        if self._triggered:
            raise SchedulingError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        callbacks, self._callbacks = self._callbacks, []
        call_soon = self.kernel.call_soon
        for resume in waiters:
            call_soon(resume, value)
        for cb in callbacks:
            cb(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"triggered={self._value!r}" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"
