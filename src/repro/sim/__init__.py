"""Deterministic discrete-event simulation kernel.

The kernel (:class:`~repro.sim.kernel.Kernel`) keeps integer-nanosecond
virtual time and a calendar-queue event scheduler (O(1) schedule and
dispatch; see the design notes in :mod:`repro.sim.kernel`).  Concurrency
is expressed with
generator-based *processes* (:class:`~repro.sim.process.Process`) that yield
:class:`~repro.sim.process.Command` objects -- ``Timeout`` to advance time,
``WaitEvent`` to block on a one-shot :class:`~repro.sim.events.Event`.

Synchronisation primitives built on top of events live in
:mod:`repro.sim.resources` (semaphores, mutexes, FIFO channels).
All randomness flows through :mod:`repro.sim.rng` seeded streams so every
simulation run is bit-for-bit reproducible.
"""

from repro.sim.clock import MICROSECOND, MILLISECOND, NANOSECOND, SECOND, ns_to_s, ns_to_us, s_to_ns, us_to_ns
from repro.sim.errors import SimulationError, DeadlockError, ProcessKilled
from repro.sim.events import Event
from repro.sim.kernel import Kernel
from repro.sim.mailbox import Envelope, Mailbox, Staging
from repro.sim.process import Command, Process, Timeout, WaitEvent
from repro.sim.resources import Channel, Mutex, Semaphore
from repro.sim.rng import RngRegistry
from repro.sim.shard import (
    Shard,
    ShardedSimulation,
    merge_shard_results,
    partition_graph,
    round_robin_partition,
    shard_core_blocks,
    shard_span_source,
    span_shard,
)

__all__ = [
    "Channel",
    "Command",
    "DeadlockError",
    "Envelope",
    "Event",
    "Kernel",
    "Mailbox",
    "Shard",
    "ShardedSimulation",
    "Staging",
    "merge_shard_results",
    "partition_graph",
    "round_robin_partition",
    "shard_core_blocks",
    "shard_span_source",
    "span_shard",
    "MICROSECOND",
    "MILLISECOND",
    "Mutex",
    "NANOSECOND",
    "Process",
    "ProcessKilled",
    "RngRegistry",
    "SECOND",
    "Semaphore",
    "SimulationError",
    "Timeout",
    "WaitEvent",
    "ns_to_s",
    "ns_to_us",
    "s_to_ns",
    "us_to_ns",
]
