"""Sharded conservative parallel discrete-event simulation.

One logical machine is partitioned into N *shards*, each owning a
private :class:`~repro.sim.kernel.Kernel` (clock + calendar queue) and a
disjoint subset of the component graph.  Shards exchange messages only
through the envelope layer of :mod:`repro.sim.mailbox` and advance under
**conservative synchronization** (Chandy/Misra/Bryant family): the
hardware link latency of every channel is a guaranteed minimum delivery
delay, so shard *i* may freely execute everything strictly below

    ``bound_i = min over in-neighbor shards j of (eot_j + lookahead(j, i))``

where ``eot_j`` is shard *j*'s earliest possible next activity and
``lookahead(j, i)`` is the smallest link latency of any channel from *j*
to *i*.  No null messages circulate; a coordinator recomputes the bounds
each sweep (a time-window barrier), either cooperatively on one OS
thread (deterministic wall-clock, the default) or with one OS thread per
shard (:meth:`ShardedSimulation.run_parallel`).

Determinism contract
--------------------
The simulation produces the *same per-channel delivery order for every
shard count*.  Two mechanisms enforce this:

- every delivery is staged as an :class:`~repro.sim.mailbox.Envelope`
  and released in key order ``(recv_time, send_time, src, iface, seq)``
  -- all fields properties of the logical send, none of the layout;
- release happens batch-wise below a horizon no later-staged envelope
  can undercut (``min(bound, now + self_lookahead)``), so two
  equal-``recv_time`` envelopes always sit in the same batch and sort
  canonically, never in shard-arrival order.

Span-id ranges
--------------
Merged traces from N shards must never collide on span/cause ids, so
each shard draws from its own range: shard *k* counts from
``(k << SHARD_SPAN_BITS) + 1`` (:func:`shard_span_source`), and
:func:`span_shard` recovers the owning shard from any id.  Shard 0's
range is identical to the unsharded runtime's, keeping single-shard
traces bit-compatible.
"""

from __future__ import annotations

import threading
from itertools import count
from time import perf_counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.kernel import Kernel
from repro.sim.mailbox import Envelope, Mailbox, Staging

_INF = float("inf")

#: Span/cause ids carry the owning shard in the bits above this position.
SHARD_SPAN_BITS = 48


def shard_span_source(shard_index: int) -> Iterator[int]:
    """A span-id counter drawing from shard ``shard_index``'s private
    range -- ids from different shards can never collide in a merged
    trace.  Shard 0 yields 1, 2, 3, ... exactly like the unsharded
    runtime."""
    if shard_index < 0:
        raise ValueError(f"shard index must be non-negative, got {shard_index}")
    return count((shard_index << SHARD_SPAN_BITS) + 1)


def span_shard(span_id: int) -> int:
    """The shard that allocated ``span_id`` (0 for unsharded runs)."""
    return span_id >> SHARD_SPAN_BITS


def shard_window_source(shard_index: int) -> Iterator[int]:
    """A telemetry-window-id counter from shard ``shard_index``'s
    private range -- the same scheme as :func:`shard_span_source`, so
    merged metrics series (:func:`repro.metrics.telemetry.merge_registries`)
    never collide on window ids and shard 0 numbers windows exactly like
    an unsharded registry."""
    return shard_span_source(shard_index)


# -- partitioning helpers ------------------------------------------------------


def round_robin_partition(n_items: int, n_parts: int) -> List[List[int]]:
    """Deal item indices round-robin into ``n_parts`` buckets.

    The interleaved split used for embarrassingly parallel fan-out (the
    bench's per-frame decode sharding): bucket ``s`` gets items
    ``s, s + n_parts, s + 2*n_parts, ...``."""
    if n_parts < 1:
        raise ValueError(f"need at least one part, got {n_parts}")
    if n_parts > n_items:
        raise ValueError(
            f"{n_parts} parts over {n_items} item(s) would leave "
            f"{n_parts - n_items} empty part(s); clamp the part count to "
            f"the item count (e.g. min(n_parts, n_items))"
        )
    return [list(range(s, n_items, n_parts)) for s in range(n_parts)]


def merge_shard_results(results: Iterable[Dict], sum_keys: Sequence[str]) -> Dict:
    """Merge per-shard result dicts by summing ``sum_keys``.

    The single merge path shared by everything that fans work out over
    shards -- the multiprocessing decode bench and the ``sim_shards``
    scaling bench both reduce through here."""
    merged: Dict = {k: 0 for k in sum_keys}
    for result in results:
        for k in sum_keys:
            merged[k] += result[k]
    return merged


def shard_core_blocks(n_cores: int, n_shards: int) -> List[List[int]]:
    """Split core indices into ``n_shards`` contiguous blocks.

    Contiguous blocks keep each shard's cores on as few NUMA nodes as
    possible, so intra-shard link latencies (and thus self-lookahead)
    stay small."""
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    if n_shards > n_cores:
        raise ValueError(f"{n_shards} shards need at least {n_shards} cores, have {n_cores}")
    base, extra = divmod(n_cores, n_shards)
    blocks: List[List[int]] = []
    start = 0
    for k in range(n_shards):
        size = base + (1 if k < extra else 0)
        blocks.append(list(range(start, start + size)))
        start += size
    return blocks


def partition_graph(
    names: Sequence[str],
    edges: Iterable[Tuple[str, str]],
    n_shards: int,
    affinity: Optional[Dict[str, int]] = None,
    weights: Optional[Dict[str, float]] = None,
    edge_weights: Optional[Dict[Tuple[str, str], float]] = None,
) -> Dict[str, int]:
    """Partition a component graph into ``n_shards`` balanced parts.

    Greedy heuristic: order components by BFS over the (undirected)
    connection graph and fill shards with contiguous BFS runs, so
    tightly coupled neighborhoods land together and the cut stays small.
    ``affinity`` pins named components to shards (user-supplied
    placement wins over the heuristic); ``weights`` biases balance
    (default: every component weighs 1).  ``edge_weights`` (keyed by
    directed ``(src, dst)`` pairs, accumulated symmetrically) steers the
    BFS to expand the *heaviest* neighbor first, so observed-hot edges
    are the last ones a shard boundary cuts -- this is how a measured
    traffic profile feeds back into the cut
    (:func:`repartition_from_profile`).  Fully deterministic: ties
    follow the declaration order of ``names`` and ``edges``.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    names = list(names)
    if len(set(names)) != len(names):
        raise ValueError("component names must be unique")
    if n_shards > len(names):
        raise ValueError(
            f"cannot spread {len(names)} component(s) over {n_shards} shards "
            f"without empty shards; use at most {len(names)} shards"
        )
    affinity = dict(affinity or {})
    for name, shard in affinity.items():
        if name not in set(names):
            raise ValueError(f"affinity names unknown component {name!r}")
        if not 0 <= shard < n_shards:
            raise ValueError(f"affinity pins {name!r} to shard {shard}, have {n_shards}")
    weight = {n: float((weights or {}).get(n, 1.0)) for n in names}

    order_of = {n: i for i, n in enumerate(names)}
    adjacency: Dict[str, List[str]] = {n: [] for n in names}
    for a, b in edges:
        if a not in adjacency or b not in adjacency:
            raise ValueError(f"edge ({a!r}, {b!r}) references unknown component")
        if a != b:
            adjacency[a].append(b)
            adjacency[b].append(a)
    pair_weight: Dict[Tuple[str, str], float] = {}
    for (a, b), w in (edge_weights or {}).items():
        if a not in adjacency or b not in adjacency:
            raise ValueError(f"edge weight ({a!r}, {b!r}) references unknown component")
        if a != b:
            key = (a, b) if order_of[a] <= order_of[b] else (b, a)
            pair_weight[key] = pair_weight.get(key, 0.0) + float(w)

    def hop_weight(a: str, b: str) -> float:
        key = (a, b) if order_of[a] <= order_of[b] else (b, a)
        return pair_weight.get(key, 0.0)

    # Deterministic BFS over every connected part, seeds in name order;
    # within a node, heaviest observed edge expands first.
    bfs: List[str] = []
    seen = set()
    for seed in names:
        if seed in seen:
            continue
        queue = [seed]
        seen.add(seed)
        while queue:
            node = queue.pop(0)
            bfs.append(node)
            for nxt in sorted(
                set(adjacency[node]),
                key=lambda m: (-hop_weight(node, m), order_of[m]),
            ):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)

    assignment = dict(affinity)
    total = sum(weight.values())
    pinned_load = [0.0] * n_shards
    for name, shard in affinity.items():
        pinned_load[shard] += weight[name]

    target = total / n_shards
    shard = 0
    load = pinned_load[0]
    for name in bfs:
        if name in assignment:
            continue
        while shard < n_shards - 1 and load + weight[name] / 2 >= target:
            shard += 1
            load = pinned_load[shard]
        assignment[name] = shard
        load += weight[name]
    return assignment


def cut_edges(
    assignment: Dict[str, int], edges: Iterable[Tuple[str, str]]
) -> List[Tuple[str, str]]:
    """The edges crossing shards under ``assignment`` (diagnostics)."""
    return [(a, b) for a, b in edges if assignment[a] != assignment[b]]


#: Schema tag of the observed-traffic profile JSON (``repro run
#: --record-profile`` writes it, ``--repartition`` reads it back).
PROFILE_SCHEMA = "repro.profile/v1"


def profile_weights(
    profile: Dict,
) -> Tuple[Dict[str, float], Dict[Tuple[str, str], float]]:
    """Extract ``(node_weights, edge_weights)`` from a traffic profile.

    A profile is the JSON document a measured run records: per-component
    observed busy time (``components: {name: {busy_ns, events, ...}}``,
    bare numbers accepted) and per-connection observed message counts
    (``edges: [{src, dst, messages}]``).  Node weights fall back from
    ``busy_ns`` to ``events`` to 1, floored at 1 so an idle component
    still occupies space on its shard.
    """
    schema = profile.get("schema", PROFILE_SCHEMA)
    if schema != PROFILE_SCHEMA:
        raise ValueError(f"unknown profile schema {schema!r}; expected {PROFILE_SCHEMA!r}")
    node_weights: Dict[str, float] = {}
    for name, obs in profile.get("components", {}).items():
        if isinstance(obs, dict):
            value = obs.get("busy_ns")
            if not value:
                value = obs.get("events", 1)
        else:
            value = obs
        node_weights[name] = max(1.0, float(value))
    edge_weights: Dict[Tuple[str, str], float] = {}
    for edge in profile.get("edges", []):
        key = (edge["src"], edge["dst"])
        edge_weights[key] = edge_weights.get(key, 0.0) + float(edge.get("messages", 1))
    return node_weights, edge_weights


def repartition_from_profile(
    names: Sequence[str],
    edges: Iterable[Tuple[str, str]],
    n_shards: int,
    profile: Dict,
    affinity: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Re-partition a component graph from *observed* weights.

    The adaptive half of the measure -> repartition -> rerun loop: the
    static heuristic assumes every component weighs 1 and every edge
    matters equally; a recorded profile replaces both with what the
    workload actually did (node weight = busy ns, edge weight = message
    count), so skewed workloads rebalance and hot paths stop straddling
    the cut.  Components present in the graph but absent from the
    profile weigh 1 -- a profile from a slightly older deploy still
    partitions the current graph.
    """
    node_weights, edge_weights = profile_weights(profile)
    known = set(names)
    node_weights = {n: w for n, w in node_weights.items() if n in known}
    edge_weights = {
        (a, b): w for (a, b), w in edge_weights.items() if a in known and b in known
    }
    return partition_graph(
        names,
        edges,
        n_shards,
        affinity=affinity,
        weights=node_weights,
        edge_weights=edge_weights,
    )


# -- the shard -----------------------------------------------------------------


class Shard:
    """One partition: a private kernel plus its staged-delivery state.

    The shard's kernel runs with local deadlock detection disabled -- an
    idle shard with pending cross-shard input is *not* deadlocked; only
    the coordinator, after draining every mailbox, may declare deadlock.
    """

    def __init__(self, index: int, kernel: Optional[Kernel] = None, name: str = "") -> None:
        if index < 0:
            raise ValueError(f"shard index must be non-negative, got {index}")
        self.index = index
        self.name = name or f"shard{index}"
        self.kernel = kernel if kernel is not None else Kernel()
        self.kernel.deadlock_check = False
        self.inbox = Mailbox()
        self.staging = Staging()
        #: Smallest link latency of any channel whose *sender and
        #: receiver both live on this shard* (inf when none): while the
        #: shard executes, no new envelope can appear with a receive
        #: time below ``now + self_lookahead``, which is what makes the
        #: batch release horizon safe.
        self.self_lookahead: float = _INF
        #: Release staged envelopes as one kernel callback per distinct
        #: ``recv_time`` (:meth:`Staging.release_batched`) instead of one
        #: per envelope.  On by default; the per-envelope path is kept
        #: for the batch-equivalence tests and as a bisection tool.
        self.batch_release = True
        #: Wall-clock seconds spent inside :meth:`run_until` -- the
        #: per-shard busy time the critical-path speedup metric uses.
        self.busy_s = 0.0
        #: Optional hook ``(envelope, cross_shard) -> None`` observing
        #: every staged delivery (the lookahead property tests record
        #: envelopes through this).
        self.on_envelope: Optional[Callable[[Envelope, bool], None]] = None

    # -- delivery intake ------------------------------------------------------

    def stage(self, envelope: Envelope) -> None:
        """Stage a *same-shard* delivery (called by this shard only)."""
        if self.on_envelope is not None:
            self.on_envelope(envelope, False)
        self.staging.push(envelope)

    def post(self, envelope: Envelope) -> None:
        """Post a *cross-shard* delivery (called by the sending shard;
        thread-safe)."""
        if self.on_envelope is not None:
            self.on_envelope(envelope, True)
        self.inbox.post(envelope)

    def drain_inbox(self) -> int:
        """Move posted envelopes into the staging heap (owner only).

        The whole window's worth of cross-shard arrivals lands as one
        chunk: a single O(n) heap merge instead of n sifts."""
        return self.staging.push_many(self.inbox.drain())

    # -- conservative execution ----------------------------------------------

    def eot(self) -> float:
        """Earliest possible next activity: the first pending kernel
        event or staged delivery, ``inf`` when fully idle.  Nothing this
        shard ever sends can reach a neighbor before ``eot() +
        lookahead``, which is what the coordinator's bounds build on."""
        t = self.kernel.peek()
        s = self.staging.min_recv_time()
        if t is None:
            return _INF if s is None else s
        return t if s is None else min(t, s)

    def run_until(self, bound: float) -> None:
        """Execute all shard-local work strictly below ``bound``.

        Alternates batch release of staged envelopes (in key order,
        below ``min(bound, now + self_lookahead)`` -- see the module
        docstring for why that horizon pins the canonical order) with
        kernel execution up to the earliest un-released envelope, and
        idle-advances the clock over gaps so later batches unlock.
        """
        kernel = self.kernel
        la = self.self_lookahead
        release = (
            self.staging.release_batched
            if self.batch_release
            else self.staging.release_below
        )
        t0 = perf_counter()
        try:
            while True:
                horizon = min(bound, kernel.now + la)
                release(horizon, kernel.schedule_at)
                nxt = self.staging.min_recv_time()
                stop = horizon if nxt is None else min(horizon, nxt)
                t = kernel.peek()
                if t is not None and t < stop:
                    # Events strictly below ``stop``; new same-shard
                    # envelopes land at >= now + self_lookahead >= stop,
                    # so none can undercut this execution window.
                    kernel.run(until=None if stop == _INF else int(stop) - 1)
                    continue
                nt = min(
                    nxt if nxt is not None else _INF,
                    t if t is not None else _INF,
                )
                if nt >= bound:
                    return
                if kernel.now >= nt:
                    raise SimulationError(
                        f"{self.name}: staged delivery at {nt} not ahead of "
                        f"clock {kernel.now} -- lookahead violated"
                    )
                # Nothing can happen in (now, nt): idle-advance so the
                # release horizon reaches the next staged envelope.
                kernel.idle_advance(nt)
        finally:
            self.busy_s += perf_counter() - t0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Shard {self.index} now={self.kernel.now} staged={len(self.staging)}>"


# -- the coordinator -----------------------------------------------------------


class ShardedSimulation:
    """Coordinates N shards under conservative lookahead bounds.

    ``add_link(src, dst, latency_ns)`` declares a channel between shards
    (including ``src == dst`` for intra-shard channels, which feed the
    shards' self-lookahead); the *minimum* latency per directed shard
    pair becomes that pair's lookahead.  :meth:`run` then sweeps:

    1. drain every shard's mailbox into its staging heap,
    2. snapshot ``eot_i`` for every shard; if all are ``inf`` the
       simulation is over (or deadlocked, if processes are still alive),
    3. compute ``bound_i = min_j (eot_j + lookahead(j, i))`` over
       in-neighbors ``j != i``,
    4. run every shard with ``eot_i < bound_i`` up to its bound.

    The globally earliest shard always satisfies ``eot_i < bound_i``
    (lookaheads are >= 1 ns), so every sweep makes progress.  Envelopes
    posted mid-sweep carry receive times >= the pre-sweep ``eot_j +
    lookahead(j, i) >= bound_i``, so draining them one sweep late can
    never miss work below any bound already handed out.
    """

    def __init__(self, shards: Sequence[Shard]) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        for i, shard in enumerate(shards):
            if shard.index != i:
                raise ValueError(
                    f"shard at position {i} has index {shard.index}; "
                    "pass shards sorted by index"
                )
        self.shards = list(shards)
        self._lookahead: Dict[Tuple[int, int], int] = {}
        self.sweeps = 0

    def add_link(self, src_shard: int, dst_shard: int, latency_ns: int) -> None:
        """Declare a channel from ``src_shard`` to ``dst_shard`` with a
        guaranteed minimum delivery latency (clamped to >= 1 ns)."""
        n = len(self.shards)
        if not (0 <= src_shard < n and 0 <= dst_shard < n):
            raise ValueError(f"link ({src_shard}, {dst_shard}) out of range for {n} shards")
        latency = max(1, int(latency_ns))
        key = (src_shard, dst_shard)
        current = self._lookahead.get(key)
        if current is None or latency < current:
            self._lookahead[key] = latency
        if src_shard == dst_shard:
            shard = self.shards[src_shard]
            shard.self_lookahead = min(shard.self_lookahead, latency)

    def lookahead(self, src_shard: int, dst_shard: int) -> Optional[int]:
        """The conservative bound contribution of a shard pair, if any."""
        return self._lookahead.get((src_shard, dst_shard))

    def _bounds(self, eots: Sequence[float]) -> List[float]:
        """Per-shard execution bounds from the EOT *fixed point*.

        A locally idle shard is not unreachable: a third shard can wake
        it, and it would then send onward.  The earliest instant shard
        *j* could possibly act is therefore the Chandy/Misra fixed point

            ``E_j = min(local_eot_j, min_k (E_k + lookahead(k, j)))``

        computed by relaxation (terminates: every step lowers some
        ``E``, floored by the global minimum since lookaheads are
        >= 1 ns).  Bounds then come from the fixed point, so a shard can
        never outrun a message routed to it through any chain of
        currently idle shards."""
        eots = list(eots)
        cross = [(s, d, la) for (s, d), la in self._lookahead.items() if s != d]
        changed = True
        while changed:
            changed = False
            for src, dst, la in cross:
                if eots[src] + la < eots[dst]:
                    eots[dst] = eots[src] + la
                    changed = True
        bounds = [_INF] * len(self.shards)
        for src, dst, la in cross:
            if eots[src] + la < bounds[dst]:
                bounds[dst] = eots[src] + la
        return bounds

    def _finished(self, eots: Sequence[float]) -> bool:
        """All-idle check; raises only after every mailbox is drained,
        so a shard idling on pending cross-shard input never
        false-positives as deadlock."""
        if any(e != _INF for e in eots):
            return False
        live = sum(s.kernel._live_processes for s in self.shards)
        if live:
            raise DeadlockError(
                f"all {len(self.shards)} shards idle with mailboxes drained "
                f"but {live} process(es) still alive"
            )
        # Quiescent: align every clock to the global maximum, so work
        # injected *between* runs (observer queries, shutdown controls)
        # can never reach a shard in its past.
        t_max = max(s.kernel.now for s in self.shards)
        for s in self.shards:
            if s.kernel.now < t_max:
                s.kernel.idle_advance(t_max)
        return True

    def run(self) -> int:
        """Cooperative driver: one sweep at a time on the calling thread.

        Fully deterministic and allocation-light -- the default for
        correctness-sensitive runs.  Returns the number of sweeps."""
        shards = self.shards
        while True:
            for shard in shards:
                shard.drain_inbox()
            eots = [s.eot() for s in shards]
            if self._finished(eots):
                return self.sweeps
            bounds = self._bounds(eots)
            progressed = False
            for i, shard in enumerate(shards):
                if eots[i] < bounds[i]:
                    shard.run_until(bounds[i])
                    progressed = True
            if not progressed:
                raise DeadlockError(
                    "conservative synchronization stalled: no shard below its bound"
                )
            self.sweeps += 1

    def run_parallel(self) -> int:
        """Window-barrier driver: every runnable shard executes its
        window on its own OS thread, then all rejoin.

        Bounds come from the same pre-sweep snapshot as :meth:`run` and
        all deliveries go through the same keyed staging, so results are
        identical to the cooperative driver -- the threads only overlap
        the wall-clock execution of one window."""
        shards = self.shards
        while True:
            for shard in shards:
                shard.drain_inbox()
            eots = [s.eot() for s in shards]
            if self._finished(eots):
                return self.sweeps
            bounds = self._bounds(eots)
            runnable = [i for i in range(len(shards)) if eots[i] < bounds[i]]
            if not runnable:
                raise DeadlockError(
                    "conservative synchronization stalled: no shard below its bound"
                )
            if len(runnable) == 1:
                shards[runnable[0]].run_until(bounds[runnable[0]])
            else:
                errors: List[Optional[BaseException]] = [None] * len(runnable)

                def window(slot: int, shard: Shard, bound: float) -> None:
                    try:
                        shard.run_until(bound)
                    except BaseException as exc:  # noqa: BLE001 - rejoined below
                        errors[slot] = exc

                threads = [
                    threading.Thread(
                        target=window,
                        args=(slot, shards[i], bounds[i]),
                        name=f"{shards[i].name}.window",
                        daemon=True,
                    )
                    for slot, i in enumerate(runnable)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                for exc in errors:
                    if exc is not None:
                        raise exc
            self.sweeps += 1
