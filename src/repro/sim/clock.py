"""Time units and conversions for the simulation kernel.

All simulated time is kept as *integer nanoseconds*.  Integers keep the
event queue total-ordered and reproducible: there is no floating-point
accumulation drift, and two events scheduled for the same instant compare
by insertion sequence number only.
"""

from __future__ import annotations

NANOSECOND: int = 1
MICROSECOND: int = 1_000
MILLISECOND: int = 1_000_000
SECOND: int = 1_000_000_000


def us_to_ns(us: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded)."""
    return round(us * MICROSECOND)


def ms_to_ns(ms: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return round(ms * MILLISECOND)


def s_to_ns(s: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return round(s * SECOND)


def ns_to_us(ns: int) -> float:
    """Convert nanoseconds to float microseconds."""
    return ns / MICROSECOND


def ns_to_ms(ns: int) -> float:
    """Convert nanoseconds to float milliseconds."""
    return ns / MILLISECOND


def ns_to_s(ns: int) -> float:
    """Convert nanoseconds to float seconds."""
    return ns / SECOND
