"""Synchronisation primitives layered on events.

All primitives expose *generator* acquire/get methods meant to be used with
``yield from`` inside a process body::

    yield from mutex.acquire()
    ...
    mutex.release()

    item = yield from channel.get()

The generator pattern lets the fast path (resource free, item available)
return without suspending, while the slow path blocks on an internal
:class:`~repro.sim.events.Event`.  Wakeups are strictly FIFO.

No-contention fast path: an uncontended ``Channel.put``/``get`` (item
available, nobody blocked) completes synchronously -- no Event object is
allocated and nothing is rescheduled through the kernel.  Contended
wakeups ride :meth:`Kernel.call_soon`, which skips the scheduling
calendar while preserving FIFO order with ordinary zero-delay events.
Deadline receives park their timers in the kernel's timer wheel
(:meth:`Kernel.schedule_timer`), so the usual cancel-on-delivery never
leaves a tombstone behind.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.errors import SimulationError
from repro.sim.events import Event
from repro.sim.kernel import Kernel
from repro.sim.process import Command, WaitEvent

#: Sentinel delivered to a getter whose deadline expired.  Private to the
#: module so it can never collide with a user item.
_DEADLINE = object()


class Semaphore:
    """Counting semaphore with FIFO wakeup order."""

    def __init__(self, kernel: Kernel, value: int = 1, name: str = "sem") -> None:
        if value < 0:
            raise SimulationError(f"semaphore initial value must be >= 0, got {value}")
        self.kernel = kernel
        self.name = name
        self._count = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        """The trigger value (error before the event fires)."""
        return self._count

    @property
    def waiting(self) -> int:
        """Number of blocked acquirers."""
        return len(self._waiters)

    def acquire(self) -> Generator[Command, Any, None]:
        """``yield from sem.acquire()`` -- decrement or block until free."""
        if self._count > 0 and not self._waiters:
            self._count -= 1
            return
        ev = Event(self.kernel, name=f"{self.name}.acquire")
        self._waiters.append(ev)
        yield WaitEvent(ev)

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._count > 0 and not self._waiters:
            self._count -= 1
            return True
        return False

    def release(self) -> None:
        """Increment, handing the unit directly to the oldest waiter."""
        if self._waiters:
            self._waiters.popleft().trigger(None)
        else:
            self._count += 1


class Mutex(Semaphore):
    """Binary semaphore; ``release`` refuses to exceed one unit."""

    def __init__(self, kernel: Kernel, name: str = "mutex") -> None:
        super().__init__(kernel, value=1, name=name)

    def release(self) -> None:
        """Release one unit, waking the oldest waiter first."""
        if not self._waiters and self._count >= 1:
            raise SimulationError(f"mutex {self.name!r} released while free")
        super().release()


class Channel:
    """FIFO message channel, optionally bounded.

    ``put`` is non-blocking when unbounded or below capacity (matching
    EMBera's asynchronous ``send``); ``put_blocking`` is a generator that
    waits for space.  ``get`` is a generator that waits for an item.
    """

    def __init__(
        self,
        kernel: Kernel,
        capacity: Optional[int] = None,
        name: str = "chan",
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"channel capacity must be positive, got {capacity}")
        self.kernel = kernel
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()
        self.total_put = 0
        self.total_got = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        """True when no item is queued."""
        return not self._items

    @property
    def full(self) -> bool:
        """True when a bounded channel is at capacity."""
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> None:
        """Non-blocking put; raises if the channel is bounded and full."""
        if self.full:
            raise SimulationError(f"channel {self.name!r} full (capacity={self.capacity})")
        self._deliver(item)

    def put_blocking(self, item: Any) -> Generator[Command, Any, None]:
        """``yield from chan.put_blocking(x)`` -- wait for space if full."""
        while self.full:
            ev = Event(self.kernel, name=f"{self.name}.put")
            self._putters.append(ev)
            yield WaitEvent(ev)
        self._deliver(item)

    def _deliver(self, item: Any) -> None:
        self.total_put += 1
        getters = self._getters
        if getters:
            getters.popleft().trigger(item)
            self.total_got += 1
        else:
            self._items.append(item)

    def put_front(self, item: Any) -> None:
        """Insert an item at the *head* of the queue -- the retransmission
        primitive: a recovery manager replays unacknowledged messages
        ahead of everything already enqueued, so a restarted receiver
        processes them in the original delivery order.

        With a getter already blocked the item is handed over directly
        (the queue is empty, so head and tail coincide).  Callers that
        front-insert several items must do so in reverse order and only
        while the consumer is not blocked on ``get`` (true for both
        recovery paths: restart replay runs before the behaviour is
        respawned, gap healing runs inside the consumer's own receive).
        """
        if self.full:
            raise SimulationError(f"channel {self.name!r} full (capacity={self.capacity})")
        self.total_put += 1
        getters = self._getters
        if getters:
            getters.popleft().trigger(item)
            self.total_got += 1
        else:
            self._items.appendleft(item)

    def get(self) -> Generator[Command, Any, Any]:
        """``item = yield from chan.get()`` -- wait for an item (FIFO).

        Fast path: with an item queued this returns without suspending
        (and without allocating an Event)."""
        items = self._items
        if items:
            item = items.popleft()
            self.total_got += 1
            if self._putters:
                self._putters.popleft().trigger(None)
            return item
        ev = Event(self.kernel, name=f"{self.name}.get")
        self._getters.append(ev)
        item = yield WaitEvent(ev)
        if self._putters:
            self._putters.popleft().trigger(None)
        return item

    def get_with_deadline(self, timeout_ns: int) -> Generator[Command, Any, tuple[bool, Any]]:
        """``ok, item = yield from chan.get_with_deadline(ns)`` -- wait for
        an item, but at most ``timeout_ns``; returns ``(False, None)`` on
        expiry.

        The deadline is a kernel timer raced against delivery.  Whichever
        side loses is retired immediately -- the timer is cancelled on
        delivery, the getter is unregistered on expiry -- so repeated
        deadline receives leak neither timers (``Kernel.pending()``
        returns to baseline) nor ghost getters (FIFO wakeup order is
        preserved for later arrivals).  Because delivery usually wins,
        the deadline rides the kernel's timer wheel
        (:meth:`Kernel.schedule_timer`): a cancelled deadline never
        becomes a calendar tombstone.
        """
        if timeout_ns < 0:
            raise SimulationError(f"negative deadline: {timeout_ns}")
        items = self._items
        if items:
            item = items.popleft()
            self.total_got += 1
            if self._putters:
                self._putters.popleft().trigger(None)
            return True, item
        ev = Event(self.kernel, name=f"{self.name}.get")
        self._getters.append(ev)
        timer = self.kernel.schedule_timer(timeout_ns, self._expire_getter, ev)
        item = yield WaitEvent(ev)
        if item is _DEADLINE:
            return False, None
        timer.cancel()
        if self._putters:
            self._putters.popleft().trigger(None)
        return True, item

    def _expire_getter(self, ev: Event) -> None:
        """Deadline timer callback: retire the getter unless it already won."""
        if ev.triggered:
            return  # delivery beat the timer at the same instant
        try:
            self._getters.remove(ev)
        except ValueError:  # pragma: no cover - defensive; delivery pops first
            pass
        ev.trigger(_DEADLINE)

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if self._items:
            item = self._items.popleft()
            self.total_got += 1
            if self._putters:
                self._putters.popleft().trigger(None)
            return True, item
        return False, None
