"""CPU execution engine: schedulable threads running on modelled cores.

This is the substrate shared by the Linux-like scheduler
(:mod:`repro.oslinux`) and the OS21-like RTOS scheduler
(:mod:`repro.os21`).  A *schedulable* is a generator that may yield:

- :class:`~repro.sim.process.Timeout`  -- sleep off-CPU,
- :class:`~repro.sim.process.WaitEvent` -- block off-CPU on an event
  (so :class:`~repro.sim.resources.Channel` et al. work unchanged inside
  OS threads),
- :class:`Compute` -- occupy the CPU for a modelled amount of work,
- :class:`YieldCpu` -- voluntarily relinquish the CPU.

Each core runs a dispatcher process.  Compute work is executed in
*interruptible slices*: the dispatcher arms a slice-end timer and waits on
an event that either the timer or a preemption request triggers, then
charges the thread for the time actually run.  This keeps the event count
O(#scheduling decisions), not O(compute time / quantum), while still
modelling priority preemption exactly.

Scheduling policy is pluggable (:class:`SchedPolicy`); the engine itself
is policy-free.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, Optional, Protocol, Sequence

from repro.sim.errors import SimulationError
from repro.sim.events import Event
from repro.sim.kernel import Kernel
from repro.sim.process import Command, Process, Timeout, WaitEvent


class Compute(Command):
    """Occupy the CPU for ``units`` of work of class ``opclass``.

    The nanosecond cost is resolved at dispatch time by the core's CPU
    model (``core.model.cost_ns(opclass, units)``), so heterogeneous
    platforms charge the same logical work differently per core.
    """

    __slots__ = ("opclass", "units")

    def __init__(self, opclass: str, units: float) -> None:
        if units < 0:
            raise SimulationError(f"negative compute units: {units}")
        self.opclass = opclass
        self.units = units

    def __repr__(self) -> str:  # pragma: no cover
        return f"Compute({self.opclass!r}, {self.units})"


class YieldCpu(Command):
    """Voluntarily relinquish the CPU; the thread stays READY."""

    __slots__ = ()


# -- thread state machine ----------------------------------------------------

NEW = "NEW"
READY = "READY"
RUNNING = "RUNNING"
SLEEPING = "SLEEPING"
BLOCKED = "BLOCKED"
DONE = "DONE"
FAILED = "FAILED"


class SchedThread:
    """A schedulable execution flow (pthread / OS21 task analogue)."""

    __slots__ = (
        "engine",
        "body",
        "name",
        "priority",
        "affinity",
        "state",
        "core",
        "done",
        "result",
        "error",
        "cpu_time_ns",
        "start_time_ns",
        "end_time_ns",
        "context_switches",
        "_remaining_compute_ns",
        "_send_value",
        "_throw_exc",
    )

    def __init__(
        self,
        engine: "ExecEngine",
        body: Generator[Command, Any, Any],
        name: str,
        priority: int = 0,
        affinity: Optional[frozenset[int]] = None,
    ) -> None:
        if not hasattr(body, "send"):
            raise SimulationError(f"thread body must be a generator, got {type(body)!r}")
        self.engine = engine
        self.body = body
        self.name = name
        self.priority = priority
        self.affinity = affinity
        self.state = NEW
        self.core: Optional[CpuCore] = None
        self.done = Event(engine.kernel, name=f"{name}.done")
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.cpu_time_ns = 0
        self.start_time_ns: Optional[int] = None
        self.end_time_ns: Optional[int] = None
        self.context_switches = 0
        self._remaining_compute_ns: Optional[int] = None
        self._send_value: Any = None
        self._throw_exc: Optional[BaseException] = None

    @property
    def alive(self) -> bool:
        """True while still executing."""
        return self.state not in (DONE, FAILED)

    def runnable_on(self, core: "CpuCore") -> bool:
        """Whether affinity allows this thread on the core."""
        return self.affinity is None or core.index in self.affinity

    def wall_time_ns(self) -> Optional[int]:
        """Start-to-finish elapsed virtual time, once the thread is done."""
        if self.start_time_ns is None or self.end_time_ns is None:
            return None
        return self.end_time_ns - self.start_time_ns

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SchedThread {self.name!r} {self.state} prio={self.priority}>"


class CpuCore:
    """One modelled core: a CPU model plus a dispatcher process."""

    __slots__ = (
        "engine",
        "index",
        "model",
        "current",
        "busy_ns",
        "_idle_event",
        "_slice_event",
        "_slice_timer",
        "_dispatcher",
    )

    def __init__(self, engine: "ExecEngine", index: int, model: Any) -> None:
        self.engine = engine
        self.index = index
        self.model = model
        self.current: Optional[SchedThread] = None
        self.busy_ns = 0
        self._idle_event: Optional[Event] = None
        self._slice_event: Optional[Event] = None
        self._slice_timer = None
        self._dispatcher: Optional[Process] = None

    @property
    def idle(self) -> bool:
        """True when no thread occupies the core."""
        return self.current is None

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` this core spent running threads."""
        return self.busy_ns / elapsed_ns if elapsed_ns > 0 else 0.0

    def kick(self) -> None:
        """Wake the dispatcher if it is idle-waiting."""
        if self._idle_event is not None and not self._idle_event.triggered:
            ev, self._idle_event = self._idle_event, None
            ev.trigger(None)

    def preempt(self) -> None:
        """Interrupt the current compute slice (no-op when not computing)."""
        if self._slice_event is not None and not self._slice_event.triggered:
            if self._slice_timer is not None:
                self._slice_timer.cancel()
                self._slice_timer = None
            ev, self._slice_event = self._slice_event, None
            ev.trigger("preempt")

    def __repr__(self) -> str:  # pragma: no cover
        running = self.current.name if self.current else "idle"
        return f"<CpuCore {self.index} {running}>"


class SchedPolicy(Protocol):
    """Strategy interface for scheduling decisions."""

    def enqueue(self, engine: "ExecEngine", thread: SchedThread) -> None:
        """Add a READY thread to the policy's queue(s)."""

    def pick(self, engine: "ExecEngine", core: CpuCore) -> Optional[SchedThread]:
        """Pop the next thread to run on ``core`` (or None)."""

    def has_ready(self, engine: "ExecEngine", core: CpuCore) -> bool:
        """Whether any READY thread could run on ``core``."""

    def should_preempt(self, running: SchedThread, candidate: SchedThread) -> bool:
        """Whether ``candidate`` becoming READY should preempt ``running``."""

    def quantum_ns(self, thread: SchedThread, contended: bool) -> Optional[int]:
        """Max slice length; None means run to completion."""


class ExecEngine:
    """Drives threads over a set of cores under a scheduling policy."""

    def __init__(
        self,
        kernel: Kernel,
        core_models: Sequence[Any],
        policy: SchedPolicy,
        core_indices: Optional[Sequence[int]] = None,
    ) -> None:
        """``core_indices`` gives the cores platform-global indices when
        the engine hosts only a subset of a machine (a simulation shard);
        affinity masks keep using global core numbers either way."""
        if core_indices is not None and len(core_indices) != len(core_models):
            raise SimulationError(
                f"core_indices ({len(core_indices)}) and core_models "
                f"({len(core_models)}) lengths differ"
            )
        self.kernel = kernel
        self.policy = policy
        indices = range(len(core_models)) if core_indices is None else core_indices
        self.cores = [CpuCore(self, i, model) for i, model in zip(indices, core_models)]
        self.threads: list[SchedThread] = []
        self.alive_threads = 0
        self.on_context_switch: Optional[Callable[[CpuCore, Optional[SchedThread], Optional[SchedThread]], None]] = None
        self._shutdown = False
        for core in self.cores:
            core._dispatcher = Process(
                kernel, self._dispatch_loop(core), name=f"cpu{core.index}.dispatch", daemon=True
            )

    # -- public API ----------------------------------------------------------

    def spawn(
        self,
        body: Generator[Command, Any, Any],
        name: str = "thread",
        priority: int = 0,
        affinity: Optional[Iterable[int]] = None,
    ) -> SchedThread:
        """Create a thread and make it READY immediately."""
        aff = frozenset(affinity) if affinity is not None else None
        if aff is not None and not any(c.index in aff for c in self.cores):
            raise SimulationError(f"affinity {sorted(aff)} matches no core")
        thread = SchedThread(self, body, name=name, priority=priority, affinity=aff)
        self.threads.append(thread)
        self.alive_threads += 1
        thread.start_time_ns = self.kernel.now
        self._make_ready(thread)
        return thread

    def shutdown(self) -> None:
        """Let dispatcher loops exit once every spawned thread has finished.

        Without this the idle dispatchers would count as live processes and
        ``Kernel.run()`` would report a deadlock when the event queue drains.
        """
        self._shutdown = True
        for core in self.cores:
            core.kick()

    def _thread_finished(self) -> None:
        self.alive_threads -= 1
        if self._shutdown and self.alive_threads == 0:
            for core in self.cores:
                core.kick()

    # -- internals -------------------------------------------------------------

    def _make_ready(self, thread: SchedThread) -> None:
        thread.state = READY
        self.policy.enqueue(self, thread)
        # Wake an idle core that can run it; otherwise consider preemption.
        for core in self.cores:
            if core.idle and thread.runnable_on(core):
                core.kick()
                return
        for core in self.cores:
            running = core.current
            if (
                running is not None
                and thread.runnable_on(core)
                and self.policy.should_preempt(running, thread)
            ):
                core.preempt()
                return
        # Time-sharing policies rebalance when a thread becomes ready and
        # every core is busy: the running thread's (possibly unbounded)
        # slice ends and the policy re-picks.  RTOS-style priority
        # scheduling must NOT do this -- an equal-priority task does not
        # displace the running one.
        rebalance = getattr(self.policy, "rebalance_on_ready", None)
        if rebalance is not None:
            for core in self.cores:
                running = core.current
                if (
                    running is not None
                    and thread.runnable_on(core)
                    and rebalance(running, thread)
                ):
                    core.preempt()
                    return

    def _wake(self, thread: SchedThread, value: Any) -> None:
        if not thread.alive:
            return
        thread._send_value = value
        self._make_ready(thread)

    def _dispatch_loop(self, core: CpuCore) -> Generator[Command, Any, None]:
        kernel = self.kernel
        while True:
            thread = self.policy.pick(self, core)
            if thread is None:
                if self._shutdown and self.alive_threads == 0:
                    return
                ev = Event(kernel, name=f"cpu{core.index}.idle")
                core._idle_event = ev
                yield WaitEvent(ev)
                continue

            core.current = thread
            thread.core = core
            thread.state = RUNNING
            thread.context_switches += 1
            if self.on_context_switch is not None:
                self.on_context_switch(core, None, thread)

            offcpu = yield from self._run_thread_on(core, thread)

            core.current = None
            if self.on_context_switch is not None:
                self.on_context_switch(core, thread, None)
            if not offcpu and thread.alive:
                # Preempted or quantum-expired: back to the ready queue.
                thread.state = READY
                self.policy.enqueue(self, thread)

    def _advance(self, thread: SchedThread) -> tuple[str, Any]:
        """Resume the thread generator one step; classify the outcome."""
        try:
            if thread._throw_exc is not None:
                exc, thread._throw_exc = thread._throw_exc, None
                cmd = thread.body.throw(exc)
            else:
                value, thread._send_value = thread._send_value, None
                cmd = thread.body.send(value)
        except StopIteration as stop:
            return "done", stop.value
        except BaseException as error:  # noqa: BLE001 - funnelled to thread.error
            return "failed", error
        return "cmd", cmd

    def _run_thread_on(
        self, core: CpuCore, thread: SchedThread
    ) -> Generator[Command, Any, bool]:
        """Run ``thread`` until it blocks/sleeps/finishes (returns True) or
        is preempted / exhausts its quantum (returns False)."""
        kernel = self.kernel
        contended = self.policy.has_ready(self, core)
        quantum = self.policy.quantum_ns(thread, contended)
        slice_budget = quantum

        while True:
            # Finish any partially executed compute first.
            if thread._remaining_compute_ns is None:
                kind, payload = self._advance(thread)
                if kind == "done":
                    thread.state = DONE
                    thread.result = payload
                    thread.end_time_ns = kernel.now
                    thread.done.trigger(payload)
                    self._thread_finished()
                    return True
                if kind == "failed":
                    thread.state = FAILED
                    thread.error = payload
                    thread.end_time_ns = kernel.now
                    self._thread_finished()
                    if self.on_thread_error is not None:
                        self.on_thread_error(thread, payload)
                        thread.done.trigger(None)
                        return True
                    raise payload
                cmd = payload
                if isinstance(cmd, Compute):
                    cost = int(core.model.cost_ns(cmd.opclass, cmd.units))
                    if cost <= 0:
                        continue
                    thread._remaining_compute_ns = cost
                elif isinstance(cmd, Timeout):
                    thread.state = SLEEPING
                    kernel.schedule(cmd.delay_ns, self._wake, thread, None)
                    return True
                elif isinstance(cmd, WaitEvent):
                    thread.state = BLOCKED
                    cmd.event.add_waiter(lambda v, t=thread: self._wake(t, v))
                    return True
                elif isinstance(cmd, YieldCpu):
                    return False
                else:
                    thread._throw_exc = SimulationError(
                        f"thread {thread.name!r} yielded non-command {cmd!r}; "
                        "did you forget 'yield from'?"
                    )
                    continue

            # Execute (part of) the pending compute as an interruptible slice.
            remaining = thread._remaining_compute_ns
            run_ns = remaining if slice_budget is None else min(remaining, slice_budget)
            started = kernel.now
            ev = Event(kernel, name=f"cpu{core.index}.slice")
            core._slice_event = ev
            core._slice_timer = kernel.schedule(run_ns, self._end_slice, core, ev)
            reason = yield WaitEvent(ev)
            core._slice_event = None
            core._slice_timer = None
            ran = kernel.now - started
            core.busy_ns += ran
            thread.cpu_time_ns += ran
            left = remaining - ran
            thread._remaining_compute_ns = left if left > 0 else None
            if reason == "preempt":
                return False
            if slice_budget is not None:
                slice_budget -= ran
                if thread._remaining_compute_ns is not None and slice_budget <= 0:
                    if self.policy.has_ready(self, core):
                        return False
                    # Nobody waiting: keep the CPU for another quantum.
                    slice_budget = quantum

    @staticmethod
    def _end_slice(core: CpuCore, ev: Event) -> None:
        if not ev.triggered:
            core._slice_timer = None
            core._slice_event = None
            ev.trigger("timer")

    # Optional error hook (set by OS layers); default None re-raises.
    on_thread_error: Optional[Callable[[SchedThread, BaseException], None]] = None


# -- policies ------------------------------------------------------------------


class RoundRobinPolicy:
    """Single global FIFO queue with quantum-based time slicing.

    Approximates the fair time-sharing behaviour of the Linux scheduler for
    CPU-bound threads; no priority preemption.
    """

    def __init__(self, quantum_ns: int = 4_000_000) -> None:
        self.quantum = int(quantum_ns)
        self._queue: Deque[SchedThread] = deque()

    def enqueue(self, engine: ExecEngine, thread: SchedThread) -> None:
        """Add a READY thread to the run queue(s)."""
        self._queue.append(thread)

    def pick(self, engine: ExecEngine, core: CpuCore) -> Optional[SchedThread]:
        """Pop the next thread to run on the core (or None)."""
        for _ in range(len(self._queue)):
            t = self._queue.popleft()
            if not t.alive:
                continue
            if t.runnable_on(core):
                return t
            self._queue.append(t)
        return None

    def has_ready(self, engine: ExecEngine, core: CpuCore) -> bool:
        """Whether any READY thread could run on the core."""
        return any(t.alive and t.runnable_on(core) for t in self._queue)

    def should_preempt(self, running: SchedThread, candidate: SchedThread) -> bool:
        """Whether a newly READY thread preempts the running one."""
        return False

    def rebalance_on_ready(self, running: SchedThread, candidate: SchedThread) -> bool:
        """Time sharing: a newly ready thread ends the running slice so
        the queue is re-evaluated with quantum bounds."""
        return True

    def quantum_ns(self, thread: SchedThread, contended: bool) -> Optional[int]:
        """Slice bound for the thread (None = run to completion)."""
        return self.quantum if contended else None


class FairPolicy:
    """CFS-flavoured fair scheduling: pick the runnable thread with the
    least *weighted CPU time* (its virtual runtime).

    Weights follow a nice-like geometric ladder: each priority step
    multiplies the entitled share by ``weight_step`` (priority 0 = weight
    1.0; higher priority = larger share).  Because the engine already
    accounts ``cpu_time_ns`` per thread, the policy needs no bookkeeping
    of its own -- vruntime is ``cpu_time_ns / weight``.
    """

    def __init__(self, quantum_ns: int = 4_000_000, weight_step: float = 1.25) -> None:
        if weight_step <= 0:
            raise SimulationError(f"weight_step must be positive, got {weight_step}")
        self.quantum = int(quantum_ns)
        self.weight_step = weight_step
        self._ready: list[SchedThread] = []

    def weight(self, thread: SchedThread) -> float:
        """Scheduling weight derived from the thread priority."""
        return self.weight_step**thread.priority

    def _vruntime(self, thread: SchedThread) -> float:
        return thread.cpu_time_ns / self.weight(thread)

    def enqueue(self, engine: ExecEngine, thread: SchedThread) -> None:
        """Add a READY thread to the run queue(s)."""
        self._ready.append(thread)

    def pick(self, engine: ExecEngine, core: CpuCore) -> Optional[SchedThread]:
        """Pop the next thread to run on the core (or None)."""
        best = None
        for t in self._ready:
            if not t.alive or not t.runnable_on(core):
                continue
            if best is None or self._vruntime(t) < self._vruntime(best):
                best = t
        if best is not None:
            self._ready.remove(best)
            self._ready = [t for t in self._ready if t.alive]
        return best

    def has_ready(self, engine: ExecEngine, core: CpuCore) -> bool:
        """Whether any READY thread could run on the core."""
        return any(t.alive and t.runnable_on(core) for t in self._ready)

    def should_preempt(self, running: SchedThread, candidate: SchedThread) -> bool:
        """Whether a newly READY thread preempts the running one."""
        return False

    def rebalance_on_ready(self, running: SchedThread, candidate: SchedThread) -> bool:
        # End the slice if the newcomer would plausibly win.  The running
        # thread's in-flight slice is not charged yet, so compare with
        # <=: ties resolve after preemption, against charged time.
        """Whether a wakeup ends the current slice for re-pick."""
        return self._vruntime(candidate) <= self._vruntime(running)

    def quantum_ns(self, thread: SchedThread, contended: bool) -> Optional[int]:
        """Slice bound for the thread (None = run to completion)."""
        return self.quantum if contended else None


class PriorityPolicy:
    """Per-priority FIFO queues with immediate preemption (RTOS-style).

    Higher ``priority`` values run first, matching OS21 semantics.  Equal
    priorities round-robin on the quantum.
    """

    def __init__(self, quantum_ns: int = 1_000_000) -> None:
        self.quantum = int(quantum_ns)
        self._queues: dict[int, Deque[SchedThread]] = {}

    def enqueue(self, engine: ExecEngine, thread: SchedThread) -> None:
        """Add a READY thread to the run queue(s)."""
        self._queues.setdefault(thread.priority, deque()).append(thread)

    def _iter_priorities(self) -> list[int]:
        return sorted(self._queues, reverse=True)

    def pick(self, engine: ExecEngine, core: CpuCore) -> Optional[SchedThread]:
        """Pop the next thread to run on the core (or None)."""
        for prio in self._iter_priorities():
            q = self._queues[prio]
            for _ in range(len(q)):
                t = q.popleft()
                if not t.alive:
                    continue
                if t.runnable_on(core):
                    return t
                q.append(t)
        return None

    def has_ready(self, engine: ExecEngine, core: CpuCore) -> bool:
        """Whether any READY thread could run on the core."""
        return any(
            t.alive and t.runnable_on(core) for q in self._queues.values() for t in q
        )

    def should_preempt(self, running: SchedThread, candidate: SchedThread) -> bool:
        """Whether a newly READY thread preempts the running one."""
        return candidate.priority > running.priority

    def quantum_ns(self, thread: SchedThread, contended: bool) -> Optional[int]:
        """Slice bound for the thread (None = run to completion)."""
        return self.quantum if contended else None
