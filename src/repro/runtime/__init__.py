"""EMBera runtimes: where components meet platforms.

Three runtimes execute the same, unmodified components:

- :class:`~repro.runtime.native.NativeRuntime` -- real Python threads and
  queues; the closest analogue of the paper's Linux/pthread
  implementation, with real wall-clock timestamps.
- :class:`~repro.runtime.simulated.SmpSimRuntime` -- components as
  pthreads of the simulated Linux system on the 16-core NUMA SMP model.
- :class:`~repro.runtime.simulated.ShardedSmpSimRuntime` -- the SMP
  runtime partitioned across N conservative simulation shards
  (:mod:`repro.sim.shard`); same output for every shard count.
- :class:`~repro.runtime.simulated.Sti7200SimRuntime` -- components as
  OS21 tasks (one per CPU) with EMBX distributed-object interfaces on the
  STi7200 model.

The runtime is the only place observation attaches: it creates a probe
and an observation-service flow per component, and implements the
OS-level report with whatever the platform offers (``gettimeofday`` wall
time on Linux, ``task_time`` CPU time on OS21 -- the same query, answered
platform-specifically, as in the paper).
"""

from repro.runtime.base import Runtime, RuntimeError_
from repro.runtime.native import NativeRuntime
from repro.runtime.simulated import (
    ShardSimContext,
    ShardedSmpSimRuntime,
    SimRuntime,
    SmpSimRuntime,
    Sti7200SimRuntime,
)

__all__ = [
    "NativeRuntime",
    "Runtime",
    "RuntimeError_",
    "ShardSimContext",
    "ShardedSmpSimRuntime",
    "SimRuntime",
    "SmpSimRuntime",
    "Sti7200SimRuntime",
]
