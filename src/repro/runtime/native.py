"""Native runtime: real Python threads, the paper's Linux implementation.

"An EMBera application is a Linux user process.  A component is a data
structure and a POSIX thread" (section 4.1).  Here the user process is
the Python interpreter, components are :mod:`threading` threads, and
mailboxes are thread-safe FIFO queues.  Timestamps are real
(``time.perf_counter_ns``), so middleware observations reflect genuine
host-machine behaviour rather than a model.

``send`` *copies* the payload into the mailbox (ndarray/bytes payloads),
matching the mailbox copy semantics of the paper's implementation -- which
is why native send durations grow with message size just as in Figure 4.

Because behaviours interact with the world only through generator-based
context methods that perform their blocking work eagerly and never yield,
the very same components run here and on the simulated platforms.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.application import Application
from repro.core.component import Component
from repro.core.context import ComponentContext
from repro.core.errors import DeadlineError
from repro.core.messages import CONTROL, Message
from repro.core.observation import ObservationProbe, observation_service_behavior
from repro.core.observer import ObserverComponent
from repro.oslinux.system import DEFAULT_STACK_BYTES
from repro.runtime.base import ComponentContainer, Runtime, RuntimeError_


def drive(gen: Generator) -> Any:
    """Run a behaviour generator to completion on the calling thread.

    Under the native runtime every context method blocks eagerly, so the
    generator must finish on the first resume; a yielded value means the
    behaviour bypassed the context API with a raw simulation command.
    """
    try:
        command = gen.send(None)
    except StopIteration as stop:
        return stop.value
    raise RuntimeError_(
        f"behaviour yielded {command!r} under the native runtime; "
        "use the ComponentContext API instead of raw sim commands"
    )


class NativeMailbox:
    """A thread-safe FIFO binding for a provided interface."""

    __slots__ = ("queue", "capacity_bytes")

    def __init__(self, capacity_bytes: int) -> None:
        self.queue: "queue.Queue[Message]" = queue.Queue()
        self.capacity_bytes = capacity_bytes

    def put(self, message: Message) -> None:
        """Enqueue a message (non-blocking)."""
        self.queue.put(message)

    def get(self, timeout: float) -> Message:
        """Dequeue a message, blocking up to ``timeout`` seconds."""
        return self.queue.get(timeout=timeout)

    def try_get(self) -> Tuple[bool, Optional[Message]]:
        """Non-blocking dequeue: ``(ok, message)``."""
        try:
            return True, self.queue.get_nowait()
        except queue.Empty:
            return False, None

    def put_front(self, message: Message) -> None:
        """Head-insert a message (recovery retransmission).

        ``queue.Queue`` has no public front-insert, but its deque and
        condition variables are documented extension points; mutating
        under ``mutex`` keeps every invariant a blocked ``get`` relies on.
        """
        q = self.queue
        with q.mutex:
            q.queue.appendleft(message)
            q.unfinished_tasks += 1
            q.not_empty.notify()


def _copy_payload(payload: Any) -> Any:
    """Copy-on-send semantics for buffer-like payloads."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    return payload


class NativeContext(ComponentContext):
    """Context whose generator methods block eagerly and never yield."""

    def __init__(
        self,
        component: Component,
        probe: Optional[ObservationProbe],
        runtime: "NativeRuntime",
    ) -> None:
        super().__init__(component, probe)
        self.runtime = runtime
        self._span_source = runtime.span_source

    def now_ns(self) -> int:
        """Current platform time in nanoseconds."""
        return time.perf_counter_ns()

    def compute(self, opclass: str, units: float) -> Generator:
        # The real Python work *is* the computation on this runtime.
        """Declare computational work (see ComponentContext.compute)."""
        return
        yield  # pragma: no cover - makes this a generator function

    def _transfer(self, target, message: Message) -> Generator:
        message.payload = _copy_payload(message.payload)
        target.binding.put(message)
        return
        yield  # pragma: no cover

    def sleep(self, delay_ns: int) -> Generator:
        """Suspend for ``delay_ns`` of real time."""
        time.sleep(delay_ns / 1e9)
        return
        yield  # pragma: no cover

    def _receive_from(self, provided, timeout_ns: Optional[int] = None) -> Generator:
        # Deadline precedence: explicit per-call timeout, then the
        # component's placed receive_timeout_s, then the runtime default
        # (the old hard-coded deadlock guess, now a typed deadline).
        if timeout_ns is None:
            timeout_s = self.component.placement.get(
                "receive_timeout_s", self.runtime.receive_timeout_s
            )
            timeout_ns = int(timeout_s * 1e9)
        else:
            timeout_s = timeout_ns / 1e9
        t0 = time.perf_counter_ns()
        try:
            message = provided.binding.get(timeout=timeout_s)
        except queue.Empty:
            raise DeadlineError(
                self.component.name,
                provided.name,
                timeout_ns,
                elapsed_ns=time.perf_counter_ns() - t0,
            ) from None
        return message
        yield  # pragma: no cover

    def _depth_of(self, provided) -> int:
        return provided.binding.queue.qsize()

    def _try_receive_from(self, provided):
        ok, message = provided.binding.try_get()
        return message if ok else None

    def _alloc(self, nbytes: int, label: str):
        # Real backing memory, so the numbers reflect genuine pressure.
        handle = self.runtime._next_heap_handle()
        self.runtime._heap[handle] = bytearray(nbytes)
        return handle

    def _free(self, handle) -> int:
        try:
            backing = self.runtime._heap.pop(handle)
        except KeyError:
            raise RuntimeError_(f"freed unknown heap handle {handle!r}") from None
        return len(backing)

    def log(self, text: str) -> None:
        """Record a debug line in the runtime's log buffer."""
        self.runtime.logs.append((time.perf_counter_ns(), self.component.name, text))


class NativeRuntime(Runtime):
    """Runs an EMBera application on real host threads."""

    def __init__(self, receive_timeout_s: float = 30.0, join_timeout_s: float = 120.0) -> None:
        super().__init__()
        self.receive_timeout_s = receive_timeout_s
        self.join_timeout_s = join_timeout_s
        self.logs: List[Tuple[int, str, str]] = []
        self.makespan_ns: Optional[int] = None
        self._errors: Dict[str, BaseException] = {}
        self._lock = threading.Lock()
        self._heap: Dict[int, bytearray] = {}
        self._heap_counter = 0

    def _next_heap_handle(self) -> int:
        with self._lock:
            self._heap_counter += 1
            return self._heap_counter

    def _requeue(self, provided, message: Message) -> None:
        provided.binding.put_front(message)

    # -- lifecycle ---------------------------------------------------------------

    def deploy(self, app: Application) -> None:
        """Bind interfaces, build contexts and adapters."""
        self._register(app)
        for cont in self.containers.values():
            for prov in cont.component.provided.values():
                prov.binding = NativeMailbox(prov.mailbox_bytes)
            cont.context = NativeContext(cont.component, cont.probe, self)
            cont.service_context = NativeContext(cont.component, None, self)
            cont.probe.os_adapter = self._os_adapter(cont)
            cont.probe.middleware_adapter = self._mw_adapter(cont)

    def start(self) -> None:
        """Launch every component's behaviour and observation service."""
        if self.app is None:
            raise RuntimeError_("deploy() an application first")
        self._t0 = time.perf_counter_ns()
        for cont in self.containers.values():
            if isinstance(cont.component, ObserverComponent):
                continue
            self._launch(cont)

    def _launch(self, cont: ComponentContainer) -> None:
        thread = threading.Thread(
            target=self._run_behavior, args=(cont,), name=cont.component.name
        )
        cont.handle = thread
        service = threading.Thread(
            target=self._run_service,
            args=(cont,),
            name=f"{cont.component.name}.obsvc",
            daemon=True,
        )
        cont.service_handle = service
        thread.start()
        service.start()

    # -- dynamic reconfiguration -------------------------------------------------

    def _deploy_dynamic(self, cont: ComponentContainer) -> None:
        for prov in cont.component.provided.values():
            prov.binding = NativeMailbox(prov.mailbox_bytes)
        cont.context = NativeContext(cont.component, cont.probe, self)
        cont.service_context = NativeContext(cont.component, None, self)
        cont.probe.os_adapter = self._os_adapter(cont)
        cont.probe.middleware_adapter = self._mw_adapter(cont)

    def _mw_adapter(self, cont: ComponentContainer):
        def extras() -> Dict[str, Any]:
            """Runtime-provided middleware extras (queue depths)."""
            depths = {}
            for prov in cont.component.provided.values():
                if prov.is_observation or prov.binding is None:
                    continue
                depths[prov.name] = prov.binding.queue.qsize()
            return {"queue_depths": depths}

        return extras

    def _start_dynamic(self, cont: ComponentContainer) -> None:
        self._launch(cont)

    def _run_behavior(self, cont: ComponentContainer) -> None:
        comp, probe, ctx = cont.component, cont.probe, cont.context
        probe.started_at_us = ctx.now_us()
        cont.extra["thread_cpu_t0"] = time.thread_time_ns()
        self._mark_running(comp)
        try:
            drive(self._behavior_body(cont))
        except BaseException as error:  # noqa: BLE001 - reported in wait()
            with self._lock:
                self._errors[comp.name] = error
            self._mark_stopped(comp, failed=True)
        else:
            self._mark_stopped(comp)
        finally:
            probe.ended_at_us = ctx.now_us()
            cont.extra["thread_cpu_ns"] = time.thread_time_ns() - cont.extra["thread_cpu_t0"]

    def _run_service(self, cont: ComponentContainer) -> None:
        try:
            drive(observation_service_behavior(cont.service_context, cont.probe))
        except (RuntimeError_, DeadlineError):
            pass  # receive timeout at teardown is benign for a daemon service

    def wait(self) -> None:
        """Run/block until all functional behaviours finish."""
        for cont in self.containers.values():
            if cont.handle is not None:
                cont.handle.join(timeout=self.join_timeout_s)
                if cont.handle.is_alive():
                    raise RuntimeError_(
                        f"component {cont.component.name!r} did not finish within "
                        f"{self.join_timeout_s}s"
                    )
        self.makespan_ns = time.perf_counter_ns() - self._t0
        if self._errors:
            name, error = next(iter(self._errors.items()))
            raise RuntimeError_(f"component {name!r} failed: {error!r}") from error

    def collect(
        self, plan: Optional[Iterable[Tuple[str, str]]] = None
    ) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """Run the observer's query flow; returns keyed reports."""
        if self.app is None or self.app.observer is None:
            raise RuntimeError_("no observer attached to the application")
        observer = self.app.observer
        cont = self.container(observer.name)
        plan = list(plan) if plan is not None else self._default_plan()
        return drive(observer.collect(cont.context, plan))

    def stop(self) -> None:
        """Shut down observation services and release the platform."""
        for cont in self.containers.values():
            service = cont.service_handle
            if service is not None and service.is_alive():
                obs = cont.component.provided.get("introspection")
                if obs is not None:
                    obs.binding.put(Message(payload=None, kind=CONTROL, tag="shutdown"))
        for cont in self.containers.values():
            if cont.service_handle is not None:
                cont.service_handle.join(timeout=5.0)

    # -- observation adapter -------------------------------------------------------

    def _os_adapter(self, cont: ComponentContainer):
        def report() -> Dict[str, Any]:
            """Build the report dict for one observation level."""
            comp, probe = cont.component, cont.probe
            data: Dict[str, Any] = {}
            if probe.started_at_us is not None and probe.ended_at_us is not None:
                data["exec_time_us"] = probe.ended_at_us - probe.started_at_us
            stack = comp.placement.get("stack_bytes", DEFAULT_STACK_BYTES)
            iface = comp.interface_bytes()
            data["stack_bytes"] = stack
            data["interface_bytes"] = iface
            data["memory_kb"] = (stack + iface) / 1024
            if "thread_cpu_ns" in cont.extra:
                data["cpu_time_us"] = cont.extra["thread_cpu_ns"] // 1_000
            return data

        return report

    def _busy_ns_of(self, cont: ComponentContainer):
        """Busy time is the real per-thread CPU time accumulated by the
        behaviour (``time.thread_time_ns``), available once it finishes."""
        return cont.extra.get("thread_cpu_ns")


class SupervisedProcess:
    """A component-hosting OS process under spawn / SIGKILL / respawn
    supervision.

    The paper's framing made literal: "an EMBera application is a Linux
    user process".  The supervised-subprocess recovery mode
    (:mod:`repro.recovery.supervised`) runs the whole native runtime in a
    child interpreter whose only durable artefacts are its on-disk WAL,
    checkpoints and frame files -- so ``kill9()`` here is a *real* crash
    (no atexit, no finally blocks, no flushes), and every respawn must
    cold-restore from disk.
    """

    def __init__(
        self,
        argv: List[str],
        env: Optional[Dict[str, str]] = None,
        log_path: Optional[str] = None,
    ) -> None:
        self.argv = list(argv)
        self.env = dict(env) if env is not None else None
        #: Child stdout+stderr destination (appended across respawns).
        self.log_path = log_path
        self.proc = None
        self.spawns = 0
        self.kills = 0

    def spawn(self) -> int:
        """Start (or restart) the child; returns its pid."""
        import subprocess

        if self.alive:
            raise RuntimeError_("supervised process already running")
        if self.log_path is not None:
            out = open(self.log_path, "ab")
        else:
            out = subprocess.DEVNULL
        try:
            self.proc = subprocess.Popen(
                self.argv, env=self.env, stdout=out, stderr=subprocess.STDOUT
            )
        finally:
            if out is not subprocess.DEVNULL:
                out.close()  # the child holds its own descriptor
        self.spawns += 1
        return self.proc.pid

    @property
    def alive(self) -> bool:
        """True while the child runs."""
        return self.proc is not None and self.proc.poll() is None

    def poll(self) -> Optional[int]:
        """The child's exit code, or ``None`` while it runs."""
        return None if self.proc is None else self.proc.poll()

    def kill9(self) -> bool:
        """SIGKILL the child and reap it; returns False if it was
        already gone (exited on its own -- the race is benign, the
        caller just respawns or finishes)."""
        import signal

        if not self.alive:
            return False
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()
        self.kills += 1
        return True

    def wait(self, timeout: Optional[float] = None) -> Optional[int]:
        """Block until the child exits; returns its code (``None`` on
        timeout)."""
        import subprocess

        if self.proc is None:
            raise RuntimeError_("supervised process never spawned")
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            return None

    def terminate(self) -> None:
        """Best-effort cleanup (SIGKILL + reap) for teardown paths."""
        if self.alive:
            self.kill9()
