"""Runtime base class and shared orchestration logic."""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import count
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.application import Application
from repro.core.component import Component, ComponentState
from repro.core.observation import LEVELS, ObservationProbe


class RuntimeError_(Exception):
    """Deployment or execution error in a runtime.

    Trailing underscore avoids shadowing the builtin.
    """


class ComponentContainer:
    """Everything a runtime keeps per component."""

    __slots__ = ("component", "probe", "context", "service_context", "handle", "service_handle", "extra")

    def __init__(self, component: Component, probe: ObservationProbe) -> None:
        self.component = component
        self.probe = probe
        self.context = None
        self.service_context = None
        self.handle = None          # behaviour thread/task
        self.service_handle = None  # observation service thread/task
        self.extra: Dict[str, Any] = {}


class Runtime(ABC):
    """Lifecycle driver: deploy -> start -> wait -> collect -> stop."""

    def __init__(self) -> None:
        self.app: Optional[Application] = None
        self.containers: Dict[str, ComponentContainer] = {}
        #: Default observation policy for every probe; a component may
        #: override it via ``comp.place(observation_policy=...)``.
        self.observation_policy = None
        #: Optional :class:`repro.faults.Supervisor` (set by
        #: ``supervisor.install(runtime)`` between deploy and start).
        #: When present, covered components run inside its restart /
        #: degrade / halt flow instead of failing the whole application.
        self.supervisor = None
        #: Deployment-wide span allocator: every context built by this
        #: runtime draws from it, so message span ids are unique across
        #: components (next() on a count is atomic under CPython -- no
        #: lock even on the thread runtime).
        self.span_source = count(1)
        #: Optional :class:`repro.recovery.RecoveryManager` (set by
        #: ``recovery.install(runtime)`` between deploy and start).  When
        #: present, data/control sends carry delivery sequence numbers and
        #: supervised restarts replay unacknowledged messages.
        self.recovery = None
        #: Live metrics plane (set by
        #: :func:`repro.metrics.telemetry.enable_telemetry` between
        #: deploy and start): one :class:`MetricsRegistry`, or a
        #: per-shard list on the sharded runtime.
        self.metrics = None

    # -- lifecycle ----------------------------------------------------------

    @abstractmethod
    def deploy(self, app: Application) -> None:
        """Bind interfaces to transports, allocate memory, build contexts."""

    @abstractmethod
    def start(self) -> None:
        """Launch every component's execution flow (and its observation
        service)."""

    @abstractmethod
    def wait(self) -> None:
        """Block/run until every functional component's behaviour returns."""

    @abstractmethod
    def collect(
        self, plan: Optional[Iterable[Tuple[str, str]]] = None
    ) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """Run the observer's query flow; returns reports keyed by
        ``(component, level)``.  Default plan: all levels of all attached
        components."""

    @abstractmethod
    def stop(self) -> None:
        """Terminate observation services and release the platform."""

    def run(self, app: Application) -> None:
        """deploy + start + wait (the common happy path)."""
        self.deploy(app)
        self.start()
        self.wait()

    # -- dynamic reconfiguration ---------------------------------------------

    def add_component(
        self,
        component: Component,
        connections: Iterable[Tuple[Any, str, Any, str]] = (),
        observe: bool = False,
    ):
        """Create and launch a component while the application runs.

        The paper's control interface covers "component creation,
        component interconnection and component life-cycle management";
        this is those operations applied after deployment -- the Fractal
        reconfiguration heritage.  ``connections`` is a list of
        ``(src, required_name, dst, provided_name)`` to establish (source
        required interfaces are created on demand); ``observe=True`` also
        wires the component to the application's observer.

        Returns the new component's container.
        """
        if self.app is None:
            raise RuntimeError_("deploy() an application before reconfiguring it")
        self.app.add_dynamic(component)
        policy = component.placement.get("observation_policy", self.observation_policy)
        cont = ComponentContainer(component, ObservationProbe(component, policy=policy))
        self.containers[component.name] = cont
        self._deploy_dynamic(cont)
        for src, req_name, dst, prov_name in connections:
            self.connect_live(src, req_name, dst, prov_name)
        if observe:
            observer = self.app.observer
            if observer is None:
                raise RuntimeError_("observe=True but the application has no observer")
            from repro.core.interfaces import OBSERVATION_INTERFACE
            from repro.core.observer import REPORTS_INTERFACE

            req_name = observer.register_target(component, dynamic=True)
            observer.get_required(req_name).connect(
                component.get_provided(OBSERVATION_INTERFACE)
            )
            component.get_required(OBSERVATION_INTERFACE).connect(
                observer.get_provided(REPORTS_INTERFACE)
            )
        self._start_dynamic(cont)
        return cont

    def connect_live(self, src, required_name: str, dst, provided_name: str) -> None:
        """Establish a connection at run time; the source's required
        interface is created on demand (pointer semantics make live
        connection safe: messages sent after this call flow through)."""
        if self.app is None:
            raise RuntimeError_("no deployed application")
        source = self.app._resolve(src)
        target = self.app._resolve(dst)
        if required_name not in source.required:
            source.add_required(required_name, dynamic=True)
        source.get_required(required_name).connect(target.get_provided(provided_name))

    def rebind(self, src, required_name: str, dst, provided_name: str) -> None:
        """Re-point an existing required interface at a new provided
        interface.  Messages already delivered stay where they are."""
        if self.app is None:
            raise RuntimeError_("no deployed application")
        source = self.app._resolve(src)
        target = self.app._resolve(dst)
        req = source.get_required(required_name)
        req.disconnect()
        req.connect(target.get_provided(provided_name))

    def _deploy_dynamic(self, cont: ComponentContainer) -> None:
        raise NotImplementedError(f"{type(self).__name__} does not support reconfiguration")

    def _start_dynamic(self, cont: ComponentContainer) -> None:
        raise NotImplementedError(f"{type(self).__name__} does not support reconfiguration")

    # -- shared helpers ---------------------------------------------------------

    def _register(self, app: Application) -> None:
        if self.app is not None:
            raise RuntimeError_("runtime already has a deployed application")
        app.seal()
        self.app = app
        for comp in app.components.values():
            policy = comp.placement.get("observation_policy", self.observation_policy)
            self.containers[comp.name] = ComponentContainer(
                comp, ObservationProbe(comp, policy=policy)
            )

    def container(self, name: str) -> ComponentContainer:
        """The deployment container of a component (by name)."""
        try:
            return self.containers[name]
        except KeyError:
            raise RuntimeError_(f"no deployed component {name!r}") from None

    def probe(self, name: str) -> ObservationProbe:
        """The observation probe of a component (by name)."""
        return self.container(name).probe

    # -- telemetry ----------------------------------------------------------

    def _busy_ns_of(self, cont: ComponentContainer) -> Optional[int]:
        """Accumulated CPU busy time of a deployed component, or ``None``
        when this runtime cannot tell.  Each runtime declares its own
        source, mirroring ``_os_adapter``."""
        return None

    def stamp_telemetry(self) -> None:
        """Stamp the runtime-owned gauges (busy time, live queue depths)
        into the metrics plane.  Called by
        :func:`repro.metrics.telemetry.collect_telemetry`; a no-op until
        ``enable_telemetry`` has attached instruments.  Platforms with
        extra observable state extend it (EMBX object traffic on the
        STi7200)."""
        for cont in self.containers.values():
            tel = cont.probe.telemetry
            if tel is None:
                continue
            busy = self._busy_ns_of(cont)
            if busy is not None:
                tel.set_busy(busy)
            adapter = cont.probe.middleware_adapter
            if adapter is not None:
                for iface, depth in adapter().get("queue_depths", {}).items():
                    tel.set_queue_depth(iface, depth)

    def _default_plan(self) -> List[Tuple[str, str]]:
        if self.app is None or self.app.observer is None:
            raise RuntimeError_("no observer attached; call app.attach_observer() before deploy")
        return [(t, level) for t in self.app.observer.targets for level in LEVELS]

    def _requeue(self, provided, message) -> None:  # pragma: no cover - runtime-specific
        """Front-insert ``message`` into ``provided``'s binding -- the
        recovery manager's retransmission primitive.  Each runtime maps
        this onto its transport's head-insert."""
        raise NotImplementedError(f"{type(self).__name__} does not support message replay")

    def _behavior_body(self, cont: ComponentContainer):
        """The generator actually spawned for a component's execution
        flow: the raw behaviour, or the supervisor's fault-handling flow
        wrapped around it when supervision covers the component."""
        sup = self.supervisor
        if sup is not None and sup.covers(cont.component.name):
            return sup.flow(self, cont)
        return cont.component.behavior(cont.context)

    def _mark_running(self, comp: Component) -> None:
        comp.state = ComponentState.RUNNING

    def _mark_stopped(self, comp: Component, failed: bool = False) -> None:
        if comp.state == ComponentState.DEGRADED and not failed:
            return  # a degraded component stays observable as DEGRADED
        comp.state = ComponentState.FAILED if failed else ComponentState.STOPPED
