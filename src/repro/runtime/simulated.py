"""Simulated runtimes: EMBera over the modelled platforms.

:class:`SmpSimRuntime` reproduces the paper's Linux implementation
(section 4): an EMBera application is a Linux user process, a component
is a data structure plus a POSIX thread, a provided interface is a FIFO
mailbox in the process address space, and a connection is a pointer.

:class:`Sti7200SimRuntime` reproduces the OS21 implementation
(section 5): a component is an OS21 task pinned to one CPU ("the current
implementation supports one component per CPU"), a provided interface is
an EMBX distributed object in shared SDRAM, and send/receive map to
``EMBX_Send`` / ``EMBX_Receive``.

Observation fidelity notes
--------------------------
- Observation interfaces ride a runtime-owned control channel (not the
  data transports).  This matches the paper's memory accounting: Fetch
  shows a bare 8 392 kB stack and IDCT shows exactly one 25 kB
  distributed object, so the default ``introspection`` pair cannot be
  consuming mailbox/EMBX memory.
- The OS-level execution-time answer differs per platform exactly as in
  the paper: gettimeofday wall time on Linux (Table 1) vs ``task_time``
  CPU time on OS21 (Table 3).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from repro.core.application import Application
from repro.core.component import Component
from repro.core.context import ComponentContext
from repro.core.errors import DeadlineError
from repro.core.messages import CONTROL, Message
from repro.core.observation import ObservationProbe, observation_service_behavior
from repro.core.observer import ObserverComponent
from repro.embx.transport import DEFAULT_OBJECT_BYTES, EmbxTimeout, EmbxTransport
from repro.hw.platform import Platform
from repro.hw.smp16 import make_smp16
from repro.hw.sti7200 import make_sti7200
from repro.oslinux.system import DEFAULT_STACK_BYTES, LinuxSystem
from repro.os21.system import DEFAULT_TASK_BYTES, OS21System
from repro.runtime.base import ComponentContainer, Runtime, RuntimeError_
from repro.sim.executor import Compute, DONE
from repro.sim.kernel import Kernel
from repro.sim.mailbox import Envelope
from repro.sim.resources import Channel
from repro.sim.shard import (
    PROFILE_SCHEMA,
    Shard,
    ShardedSimulation,
    partition_graph,
    repartition_from_profile,
    shard_core_blocks,
    shard_span_source,
)

#: Cost charged (per op) for the runtime-owned observation channel.
OBS_CHANNEL_SYSCALLS = 1


class SimMailbox:
    """The Linux-implementation provided-interface binding: a FIFO plus
    the NUMA node its buffer lives on."""

    __slots__ = ("channel", "node", "capacity_bytes", "written_bytes", "base_addr")

    def __init__(self, channel: Channel, node: int, capacity_bytes: int, base_addr: int) -> None:
        self.channel = channel
        self.node = node
        self.capacity_bytes = capacity_bytes
        self.written_bytes = 0
        self.base_addr = base_addr


class SimContext(ComponentContext):
    """Component context over a simulated platform."""

    def __init__(
        self,
        component: Component,
        probe: Optional[ObservationProbe],
        runtime: "SimRuntime",
        clock_offset_ns: int = 0,
    ) -> None:
        super().__init__(component, probe)
        self.runtime = runtime
        self.clock_offset_ns = clock_offset_ns
        self._span_source = runtime.span_source

    def now_ns(self) -> int:
        """Current platform time in nanoseconds."""
        return self.runtime.kernel.now + self.clock_offset_ns

    def compute(self, opclass: str, units: float) -> Generator:
        """Declare computational work (see ComponentContext.compute)."""
        yield Compute(opclass, units)

    def sleep(self, delay_ns: int) -> Generator:
        """Suspend for ``delay_ns`` of virtual time."""
        from repro.sim.process import Timeout

        yield Timeout(int(delay_ns))

    def _transfer(self, target, message: Message) -> Generator:
        yield from self.runtime._transfer(self.component, target, message)

    def _receive_from(self, provided, timeout_ns: Optional[int] = None) -> Generator:
        message = yield from self.runtime._receive(self.component, provided, timeout_ns)
        return message

    def _try_receive_from(self, provided):
        return self.runtime._try_receive(provided)

    def _depth_of(self, provided) -> int:
        binding = provided.binding
        if isinstance(binding, Channel):
            return len(binding)
        return len(self.runtime._data_queue(provided))

    def _alloc(self, nbytes: int, label: str):
        return self.runtime._component_alloc(self.component, nbytes, label)

    def _free(self, handle) -> int:
        return self.runtime._component_free(self.component, handle)

    def log(self, text: str) -> None:
        """Record a debug line in the runtime's log buffer."""
        self.runtime.logs.append((self.runtime.kernel.now, self.component.name, text))


class ShardSimContext(SimContext):
    """A component context bound to one shard's clock and span range.

    ``now_ns`` reads the *shard's* kernel (shards tick independently
    between synchronization points) and span/cause ids come from the
    shard's private range (shard index in the high bits; see
    :func:`repro.sim.shard.shard_span_source`), so merged traces never
    collide."""

    def __init__(
        self,
        component: Component,
        probe: Optional[ObservationProbe],
        runtime: "SimRuntime",
        shard_kernel: Kernel,
        span_source,
        clock_offset_ns: int = 0,
    ) -> None:
        super().__init__(component, probe, runtime, clock_offset_ns)
        self._shard_kernel = shard_kernel
        self._span_source = span_source

    def now_ns(self) -> int:
        """Current time of the owning shard in nanoseconds."""
        return self._shard_kernel.now + self.clock_offset_ns

    def log(self, text: str) -> None:
        """Record a debug line stamped with the shard's clock."""
        self.runtime.logs.append((self._shard_kernel.now, self.component.name, text))


class SimRuntime(Runtime):
    """Shared machinery for both simulated platforms."""

    def __init__(self, kernel: Optional[Kernel] = None) -> None:
        super().__init__()
        self.kernel = kernel or Kernel()
        self.logs: List[Tuple[int, str, str]] = []
        self.makespan_ns: Optional[int] = None
        self._fake_addr = 1 << 20  # synthetic address space for cache modelling

    # -- subclass hooks ----------------------------------------------------------

    def _bind_component(self, cont: ComponentContainer) -> None:
        raise NotImplementedError

    def _spawn_behavior(self, cont: ComponentContainer) -> None:
        raise NotImplementedError

    def _spawn_flow(self, body: Generator, name: str, cont: ComponentContainer):
        """Spawn an infrastructure flow (observation service / observer
        query) that must not appear in the platform's memory accounting."""
        raise NotImplementedError

    def _engine(self):
        raise NotImplementedError

    def _transfer(self, src: Component, target, message: Message) -> Generator:
        raise NotImplementedError

    def _os_adapter(self, cont: ComponentContainer):
        raise NotImplementedError

    def _clock_offset_for(self, cont: ComponentContainer) -> int:
        return 0

    # -- shared transport paths -----------------------------------------------------

    def _transfer_observation(self, target, message: Message) -> Generator:
        """Runtime-owned control channel: cheap, platform-independent."""
        yield Compute("syscall", OBS_CHANNEL_SYSCALLS)
        target.binding.put(message)

    def _receive(self, dst: Component, provided, timeout_ns: Optional[int] = None) -> Generator:
        binding = provided.binding
        if binding is None:
            raise RuntimeError_(f"interface {provided.qualified_name} has no binding")
        if isinstance(binding, Channel):  # observation channel
            if timeout_ns is None:
                message = yield from binding.get()
            else:
                ok, message = yield from binding.get_with_deadline(timeout_ns)
                if not ok:
                    raise DeadlineError(dst.name, provided.name, timeout_ns)
            yield Compute("syscall", OBS_CHANNEL_SYSCALLS)
            return message
        message = yield from self._receive_data(dst, provided, timeout_ns)
        return message

    def _receive_data(
        self, dst: Component, provided, timeout_ns: Optional[int] = None
    ) -> Generator:
        raise NotImplementedError

    def _try_receive(self, provided):
        binding = provided.binding
        queue = binding if isinstance(binding, Channel) else self._data_queue(provided)
        ok, message = queue.try_get()
        return message if ok else None

    def _data_queue(self, provided) -> Channel:
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------------------

    def deploy(self, app: Application) -> None:
        """Bind interfaces, build contexts and adapters."""
        self._register(app)
        self._prepare_deploy()
        for cont in self.containers.values():
            self._bind_component(cont)
        for cont in self.containers.values():
            offset = self._clock_offset_for(cont)
            cont.context = self._make_context(cont, cont.probe, offset)
            cont.service_context = self._make_context(cont, None, offset)
            cont.probe.os_adapter = self._os_adapter(cont)
            cont.probe.middleware_adapter = self._mw_adapter(cont)
        self._finish_deploy()

    def _prepare_deploy(self) -> None:
        """Hook before interface binding (the sharded runtime partitions
        the component graph here)."""

    def _finish_deploy(self) -> None:
        """Hook after contexts exist (the sharded runtime derives its
        per-link lookaheads from the bound graph here)."""

    def _make_context(
        self, cont: ComponentContainer, probe: Optional[ObservationProbe], offset: int
    ) -> SimContext:
        """Build one component/service context (sharded runtimes swap in
        per-shard clocks and span-id ranges)."""
        return SimContext(cont.component, probe, self, offset)

    def start(self) -> None:
        """Launch every component's behaviour and observation service."""
        if self.app is None:
            raise RuntimeError_("deploy() an application first")
        for cont in self.containers.values():
            if isinstance(cont.component, ObserverComponent):
                continue  # observer flows are spawned on demand by collect()
            self._launch(cont)
        # The observer still needs its service-side channel bindings even
        # though its behaviour is query-driven.

    def _launch(self, cont: ComponentContainer) -> None:
        self._spawn_behavior(cont)
        cont.service_handle = self._spawn_flow(
            observation_service_behavior(cont.service_context, cont.probe),
            name=f"{cont.component.name}.obsvc",
            cont=cont,
        )

    # -- dynamic reconfiguration ---------------------------------------------------

    def _deploy_dynamic(self, cont: ComponentContainer) -> None:
        self._bind_component(cont)
        offset = self._clock_offset_for(cont)
        cont.context = self._make_context(cont, cont.probe, offset)
        cont.service_context = self._make_context(cont, None, offset)
        cont.probe.os_adapter = self._os_adapter(cont)
        cont.probe.middleware_adapter = self._mw_adapter(cont)

    def _start_dynamic(self, cont: ComponentContainer) -> None:
        self._launch(cont)

    def spawn_controller(self, fn, name: str = "controller"):
        """Run a reconfiguration/monitoring flow inside the simulation.

        ``fn(runtime, observer_ctx)`` must be a generator: it may sleep
        (``yield Timeout(ns)``), collect observations
        (``yield from observer.collect(observer_ctx, plan)``) and call
        :meth:`add_component` / :meth:`rebind` synchronously -- the
        observer-in-the-loop adaptation the paper's observation data
        enables.  Returns the flow handle (``.result`` after ``wait()``).
        """
        if self.app is None or self.app.observer is None:
            raise RuntimeError_("controllers need a deployed app with an observer")
        cont = self.container(self.app.observer.name)
        return self._spawn_flow(fn(self, cont.context), name=name, cont=cont)

    def _wrap_behavior(self, cont: ComponentContainer) -> Generator:
        component, probe, ctx = cont.component, cont.probe, cont.context
        probe.started_at_us = ctx.now_us()
        self._mark_running(component)
        try:
            result = yield from self._behavior_body(cont)
        except BaseException:
            probe.ended_at_us = ctx.now_us()
            self._mark_stopped(component, failed=True)
            raise
        probe.ended_at_us = ctx.now_us()
        self._mark_stopped(component)
        return result

    def wait(self) -> None:
        """Run/block until all functional behaviours finish."""
        self.kernel.run()
        self.makespan_ns = self.kernel.now
        stuck = [
            cont.component.name
            for cont in self.containers.values()
            if cont.handle is not None and cont.handle.state != DONE
        ]
        if stuck:
            states = {
                name: self.containers[name].handle.state for name in stuck
            }
            raise RuntimeError_(f"components did not finish: {states}")

    def collect(
        self, plan: Optional[Iterable[Tuple[str, str]]] = None
    ) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """Run the observer's query flow; returns keyed reports."""
        if self.app is None or self.app.observer is None:
            raise RuntimeError_("no observer attached to the application")
        observer = self.app.observer
        cont = self.container(observer.name)
        plan = list(plan) if plan is not None else self._default_plan()
        flow = observer.collect(cont.context, plan)
        handle = self._spawn_flow(flow, name=f"{observer.name}.query", cont=cont)
        self.kernel.run()
        if handle.state != DONE:
            raise RuntimeError_(f"observer query flow stuck in state {handle.state}")
        return handle.result

    def schedule_collect(self, delay_ns: int, plan: Optional[Iterable[Tuple[str, str]]] = None):
        """Schedule an observation sweep at a *virtual* instant.

        Call between ``deploy()`` and ``wait()``.  Returns the query-flow
        handle; after ``wait()`` its ``result`` is ``(time_ns, reports)``
        with the mid-run snapshot the observer gathered -- the on-line
        monitoring use-case of the paper's dynamic-configuration
        discussion (section 4.4).
        """
        if self.app is None or self.app.observer is None:
            raise RuntimeError_("no observer attached to the application")
        observer = self.app.observer
        cont = self.container(observer.name)
        plan = list(plan) if plan is not None else self._default_plan()

        def flow():
            """The scheduled observation query flow."""
            from repro.sim.process import Timeout

            yield Timeout(delay_ns)
            reports = yield from observer.collect(cont.context, plan)
            return (self.kernel.now, reports)

        return self._spawn_flow(flow(), name=f"{observer.name}.query@{delay_ns}", cont=cont)

    def stop(self) -> None:
        """Shut down observation services and release the platform."""
        for cont in self.containers.values():
            if cont.service_handle is not None and cont.service_handle.alive:
                obs = cont.component.provided.get("introspection")
                if obs is not None and isinstance(obs.binding, Channel):
                    obs.binding.put(Message(payload=None, kind=CONTROL, tag="shutdown"))
        self._engine().shutdown()
        self.kernel.run()

    # -- shared binding helpers ---------------------------------------------------------

    def _mw_adapter(self, cont: ComponentContainer):
        """Middleware extras: live inbound queue depths per provided
        interface -- the backlog signal adaptation controllers key on."""

        def extras() -> Dict[str, Any]:
            """Runtime-provided middleware extras (queue depths)."""
            depths = {}
            for prov in cont.component.provided.values():
                if prov.is_observation or prov.binding is None:
                    continue
                depths[prov.name] = len(self._data_queue(prov))
            return {"queue_depths": depths}

        return extras

    # -- component heap (memory-evolution extension) ----------------------------

    def _heap_region(self, cont: ComponentContainer):
        raise NotImplementedError

    def _component_alloc(self, component: Component, nbytes: int, label: str):
        cont = self.container(component.name)
        region = self._heap_region(cont)
        handle = region.alloc(
            nbytes, label=f"{component.name}:{label}", time_ns=self.kernel.now
        )
        heap = cont.extra.setdefault("heap", {})
        heap[handle] = (region, nbytes)
        return handle

    def _component_free(self, component: Component, handle) -> int:
        cont = self.container(component.name)
        heap = cont.extra.get("heap", {})
        try:
            region, nbytes = heap.pop(handle)
        except KeyError:
            raise RuntimeError_(
                f"{component.name!r} freed unknown heap handle {handle!r}"
            ) from None
        region.free(handle, time_ns=self.kernel.now)
        return nbytes

    def _bind_observation_channels(self, cont: ComponentContainer) -> None:
        for prov in cont.component.provided.values():
            if prov.is_observation and prov.binding is None:
                prov.binding = Channel(self.kernel, name=f"obs.{prov.qualified_name}")

    def _next_fake_addr(self, nbytes: int) -> int:
        addr = self._fake_addr
        self._fake_addr += max(nbytes, 64)
        return addr


class SmpSimRuntime(SimRuntime):
    """EMBera over the simulated 16-core Linux NUMA SMP."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        kernel: Optional[Kernel] = None,
        quantum_ns: int = 4_000_000,
    ) -> None:
        super().__init__(kernel)
        self.platform = platform or make_smp16()
        self.quantum_ns = quantum_ns
        self._init_system()
        self._next_core = 0

    def _init_system(self) -> None:
        """Build the OS instance(s); the sharded variant builds one per
        partition over a core block instead."""
        self.system = LinuxSystem(self.kernel, self.platform, quantum_ns=self.quantum_ns)
        self.process = self.system.spawn_process("embera")

    def _engine(self):
        return self.system.engine

    # -- deployment ------------------------------------------------------------

    def _assign_core(self, cont: ComponentContainer) -> int:
        core = cont.component.placement.get("core")
        if core is None:
            core = self._next_core % self.platform.n_cores
            self._next_core += 1
        cont.extra["core"] = core
        cont.extra["node"] = self.platform.node_of_core(core)
        return core

    def _bind_component(self, cont: ComponentContainer) -> None:
        self._assign_core(cont)
        self._bind_observation_channels(cont)
        node = cont.extra["node"]
        for prov in cont.component.provided.values():
            if prov.is_observation:
                continue
            self.process.malloc(
                prov.mailbox_bytes, label=f"{prov.qualified_name}:mailbox", node=node
            )
            prov.binding = SimMailbox(
                Channel(self.kernel, name=f"mbox.{prov.qualified_name}"),
                node=node,
                capacity_bytes=prov.mailbox_bytes,
                base_addr=self._next_fake_addr(prov.mailbox_bytes),
            )

    def _spawn_behavior(self, cont: ComponentContainer) -> None:
        stack = cont.component.placement.get("stack_bytes", DEFAULT_STACK_BYTES)
        thread = self.process.pthread_create(
            self._wrap_behavior(cont),
            name=cont.component.name,
            stack_bytes=stack,
            affinity=[cont.extra["core"]],
        )
        cont.handle = thread.sched
        cont.extra["pthread"] = thread

    def _spawn_flow(self, body: Generator, name: str, cont: ComponentContainer):
        # Infrastructure flows bypass pthread accounting (no stack charge).
        return self.system.engine.spawn(body, name=name)

    # -- transport ------------------------------------------------------------------

    def _transfer(self, src: Component, target, message: Message) -> Generator:
        if target.is_observation:
            yield from self._transfer_observation(target, message)
            return
        mailbox: SimMailbox = target.binding
        src_core = self.containers[src.name].extra["core"]
        factor = self.platform.copy_factor(src_core, mailbox.node)
        yield Compute("syscall", 1)
        yield Compute("memcpy_byte", message.size_bytes * factor)
        cache = self.platform.cache_of_core(src_core)
        if cache is not None:
            offset = mailbox.written_bytes % max(mailbox.capacity_bytes, 1)
            cache.access_range(mailbox.base_addr + offset, message.size_bytes)
        mailbox.written_bytes += message.size_bytes
        mailbox.channel.put(message)

    def _receive_data(
        self, dst: Component, provided, timeout_ns: Optional[int] = None
    ) -> Generator:
        mailbox: SimMailbox = provided.binding
        if timeout_ns is None:
            message = yield from mailbox.channel.get()
        else:
            ok, message = yield from mailbox.channel.get_with_deadline(timeout_ns)
            if not ok:
                raise DeadlineError(dst.name, provided.name, timeout_ns)
        # The receiver copies the message out of the mailbox; the mailbox
        # is homed on the receiver's node, so no NUMA factor applies.
        yield Compute("memcpy_byte", message.size_bytes)
        dst_core = self.containers[dst.name].extra["core"]
        cache = self.platform.cache_of_core(dst_core)
        if cache is not None:
            cache.access_range(mailbox.base_addr, message.size_bytes)
        return message

    def _data_queue(self, provided) -> Channel:
        return provided.binding.channel

    def _requeue(self, provided, message: Message) -> None:
        # Replays skip the send-side copy/cache costs: the bytes already
        # sit in the mailbox buffer from the original transfer.
        provided.binding.channel.put_front(message)

    def _heap_region(self, cont: ComponentContainer):
        return self.system.node_region(cont.extra["node"])

    # -- observation adapters --------------------------------------------------------

    def _os_adapter(self, cont: ComponentContainer):
        def report() -> Dict[str, Any]:
            """Build the report dict for one observation level."""
            comp = cont.component
            probe = cont.probe
            data: Dict[str, Any] = {}
            if probe.started_at_us is not None and probe.ended_at_us is not None:
                # gettimeofday wall-clock semantics (paper section 4.2).
                data["exec_time_us"] = probe.ended_at_us - probe.started_at_us
            thread = cont.extra.get("pthread")
            stack = thread.attr_getstacksize() if thread is not None else 0
            iface = comp.interface_bytes()
            data["stack_bytes"] = stack
            data["interface_bytes"] = iface
            data["memory_kb"] = (stack + iface) / 1024
            if cont.handle is not None:
                data["cpu_time_us"] = cont.handle.cpu_time_ns // 1_000
            core = cont.extra.get("core")
            cache = self.platform.cache_of_core(core) if core is not None else None
            if cache is not None:
                data["cache"] = cache.stats.snapshot()
            return data

        return report

    def _busy_ns_of(self, cont: ComponentContainer) -> Optional[int]:
        """Busy time is the simulated thread's accumulated CPU time --
        the same source the OS-level ``cpu_time_us`` report uses."""
        return cont.handle.cpu_time_ns if cont.handle is not None else None


class ShardedSmpSimRuntime(SmpSimRuntime):
    """The SMP runtime partitioned across N conservative shards.

    Deploy-time graph partitioning (user affinity via ``comp.place(
    shard=K)`` / ``comp.place(core=N)``, otherwise a greedy balanced
    min-cut heuristic) maps each component to one shard; each shard owns
    a contiguous block of the platform's cores, a private
    :class:`~repro.sim.kernel.Kernel` and its own
    :class:`~repro.oslinux.system.LinuxSystem` instance.  Every message
    delivery -- data, deposit and observation alike -- is staged as an
    :class:`~repro.sim.mailbox.Envelope` and takes the platform's link
    latency between the endpoint cores; that same latency is the
    conservative lookahead the coordinator synchronizes on, so the
    simulation output is *identical for every shard count* (the link
    latency is a property of hardware placement, not of the partition).

    Not supported in sharded mode (use :class:`SmpSimRuntime`): dynamic
    reconfiguration (``add_component``/``connect_live``/``rebind``) and
    fault-replay/recovery -- both would have to mutate channels across
    shard boundaries mid-run.
    """

    def __init__(
        self,
        n_shards: int,
        platform: Optional[Platform] = None,
        quantum_ns: int = 4_000_000,
        partition: Optional[Dict[str, int]] = None,
        parallel: bool = False,
        profile: Optional[Dict[str, Any]] = None,
    ) -> None:
        """``partition`` pins component names to shard indices (wins over
        the heuristic); ``parallel`` runs each synchronization window on
        one OS thread per shard instead of cooperatively.  ``profile`` is
        an observed-traffic document (``repro.profile/v1``, see
        :meth:`profile`): when given, its busy times weight the nodes and
        its message counts weight the edges of the deploy-time partition
        -- the measure -> repartition -> rerun loop."""
        if n_shards < 1:
            raise RuntimeError_(f"need at least one shard, got {n_shards}")
        self.n_shards = int(n_shards)
        self.partition_hint = dict(partition or {})
        self.parallel = parallel
        self.profile_hint = profile
        super().__init__(platform=platform, quantum_ns=quantum_ns)

    def _init_system(self) -> None:
        self._blocks = shard_core_blocks(self.platform.n_cores, self.n_shards)
        self.shards: List[Shard] = []
        self.systems: List[LinuxSystem] = []
        self.processes = []
        for i, cores in enumerate(self._blocks):
            shard = Shard(i)
            system = LinuxSystem(
                shard.kernel, self.platform, quantum_ns=self.quantum_ns, cores=cores
            )
            self.shards.append(shard)
            self.systems.append(system)
            self.processes.append(system.spawn_process(f"embera{i}"))
        self.sim = ShardedSimulation(self.shards)
        self._span_sources = [shard_span_source(i) for i in range(self.n_shards)]
        self._routes: Dict[Any, Tuple[int, int]] = {}  # provided iface -> (shard, core)
        #: Observed per-edge message counts ((src, dst) component names),
        #: fed by _transfer -- the raw material of :meth:`profile` and
        #: the cross-shard traffic gauges.
        self._edge_traffic: Dict[Tuple[str, str], int] = {}
        # Base-class bookkeeping (allocation timestamps, heap regions)
        # rides shard 0; everything delivery- or clock-sensitive is
        # routed per shard below.
        self.kernel = self.shards[0].kernel
        self.system = self.systems[0]
        self.process = self.processes[0]

    def _engine(self):
        return self.systems[0].engine

    def shard_of(self, component_name: str) -> int:
        """The shard a deployed component was partitioned onto."""
        return self.container(component_name).extra["shard"]

    # -- partitioning ----------------------------------------------------------

    def _shard_of_core(self, core: int) -> int:
        for i, block in enumerate(self._blocks):
            if core in block:
                return i
        raise RuntimeError_(f"no core {core} on {self.platform.name}")

    def _prepare_deploy(self) -> None:
        """Partition the sealed graph and place components on cores."""
        names = list(self.containers)
        edges = []
        for cont in self.containers.values():
            for req in cont.component.required.values():
                if req.target is not None:
                    edges.append((cont.component.name, req.target.component.name))
        affinity = dict(self.partition_hint)
        for name, cont in self.containers.items():
            placement = cont.component.placement
            if "shard" in placement:
                affinity[name] = placement["shard"]
            elif "core" in placement and name not in affinity:
                affinity[name] = self._shard_of_core(placement["core"])
        if self.profile_hint is not None:
            assignment = repartition_from_profile(
                names, edges, self.n_shards, self.profile_hint, affinity=affinity
            )
        else:
            assignment = partition_graph(names, edges, self.n_shards, affinity=affinity)
        self._edges = edges
        next_slot = [0] * self.n_shards
        for name in names:
            cont = self.containers[name]
            shard = assignment[name]
            block = self._blocks[shard]
            core = cont.component.placement.get("core")
            if core is None:
                core = block[next_slot[shard] % len(block)]
                next_slot[shard] += 1
            elif core not in block:
                raise RuntimeError_(
                    f"{name!r} pinned to core {core}, outside shard {shard}'s "
                    f"cores {block}"
                )
            cont.extra["shard"] = shard
            cont.extra["core"] = core
            cont.extra["node"] = self.platform.node_of_core(core)

    def _finish_deploy(self) -> None:
        """Derive routes and per-link lookaheads from the bound graph."""
        for cont in self.containers.values():
            dst_shard = cont.extra["shard"]
            dst_core = cont.extra["core"]
            # Deposits re-enter a component's own mailbox through the
            # same staged path, so every shard always has a self-link.
            self.sim.add_link(
                dst_shard, dst_shard, self.platform.link_latency_ns(dst_core, dst_core)
            )
            for prov in cont.component.provided.values():
                self._routes[prov] = (dst_shard, dst_core)
                for req in prov.connected_from:
                    src_cont = self.containers[req.component.name]
                    self.sim.add_link(
                        src_cont.extra["shard"],
                        dst_shard,
                        self.platform.link_latency_ns(src_cont.extra["core"], dst_core),
                    )

    # -- per-shard deployment --------------------------------------------------

    def _assign_core(self, cont: ComponentContainer) -> int:
        return cont.extra["core"]  # placed during _prepare_deploy

    def _bind_observation_channels(self, cont: ComponentContainer) -> None:
        shard = self.shards[cont.extra["shard"]]
        for prov in cont.component.provided.values():
            if prov.is_observation and prov.binding is None:
                prov.binding = Channel(shard.kernel, name=f"obs.{prov.qualified_name}")

    def _bind_component(self, cont: ComponentContainer) -> None:
        self._bind_observation_channels(cont)
        shard = self.shards[cont.extra["shard"]]
        process = self.processes[shard.index]
        node = cont.extra["node"]
        for prov in cont.component.provided.values():
            if prov.is_observation:
                continue
            process.malloc(
                prov.mailbox_bytes, label=f"{prov.qualified_name}:mailbox", node=node
            )
            prov.binding = SimMailbox(
                Channel(shard.kernel, name=f"mbox.{prov.qualified_name}"),
                node=node,
                capacity_bytes=prov.mailbox_bytes,
                base_addr=self._next_fake_addr(prov.mailbox_bytes),
            )

    def _make_context(
        self, cont: ComponentContainer, probe: Optional[ObservationProbe], offset: int
    ) -> SimContext:
        shard_idx = cont.extra["shard"]
        return ShardSimContext(
            cont.component,
            probe,
            self,
            self.shards[shard_idx].kernel,
            self._span_sources[shard_idx],
            offset,
        )

    def _spawn_behavior(self, cont: ComponentContainer) -> None:
        shard_idx = cont.extra["shard"]
        stack = cont.component.placement.get("stack_bytes", DEFAULT_STACK_BYTES)
        thread = self.processes[shard_idx].pthread_create(
            self._wrap_behavior(cont),
            name=cont.component.name,
            stack_bytes=stack,
            affinity=[cont.extra["core"]],
        )
        cont.handle = thread.sched
        cont.extra["pthread"] = thread

    def _spawn_flow(self, body: Generator, name: str, cont: ComponentContainer):
        return self.systems[cont.extra["shard"]].engine.spawn(body, name=name)

    # -- staged transport ------------------------------------------------------

    def _transfer(self, src: Component, target, message: Message) -> Generator:
        dst_shard_idx, dst_core = self._routes[target]
        edge = (src.name, target.component.name)
        traffic = self._edge_traffic
        traffic[edge] = traffic.get(edge, 0) + 1
        src_cont = self.containers[src.name]
        src_shard = self.shards[src_cont.extra["shard"]]
        src_core = src_cont.extra["core"]
        if target.is_observation:
            yield Compute("syscall", OBS_CHANNEL_SYSCALLS)
            binding = target.binding

            def deliver(binding=binding, message=message):
                binding.put(message)

        else:
            mailbox: SimMailbox = target.binding
            factor = self.platform.copy_factor(src_core, mailbox.node)
            yield Compute("syscall", 1)
            yield Compute("memcpy_byte", message.size_bytes * factor)
            cache = self.platform.cache_of_core(src_core)
            if cache is not None:
                offset = mailbox.written_bytes % max(mailbox.capacity_bytes, 1)
                cache.access_range(mailbox.base_addr + offset, message.size_bytes)

            def deliver(mailbox=mailbox, message=message):
                mailbox.written_bytes += message.size_bytes
                mailbox.channel.put(message)

        send_time = src_shard.kernel.now
        recv_time = send_time + self.platform.link_latency_ns(src_core, dst_core)
        envelope = Envelope(
            recv_time, send_time, message.src, message.src_interface, message.seq, deliver
        )
        dst_shard = self.shards[dst_shard_idx]
        if dst_shard is src_shard:
            dst_shard.stage(envelope)
        else:
            dst_shard.post(envelope)

    def _transfer_observation(self, target, message: Message) -> Generator:
        # Observation messages carry src/iface/seq like any other and the
        # observer may live on a different shard, so they ride the same
        # staged path; _transfer branches on target.is_observation.
        raise RuntimeError_("sharded observation transfers route through _transfer")

    def _requeue(self, provided, message: Message) -> None:
        raise RuntimeError_(
            "fault replay/recovery is not supported in sharded simulation; "
            "use SmpSimRuntime"
        )

    # -- dynamic reconfiguration is unsupported across shards ------------------

    def _deploy_dynamic(self, cont: ComponentContainer) -> None:
        raise RuntimeError_(
            "dynamic reconfiguration is not supported in sharded simulation; "
            "use SmpSimRuntime"
        )

    def rebind(self, *args, **kwargs):
        """Unsupported in sharded mode (channels are shard-bound)."""
        raise RuntimeError_(
            "rebind is not supported in sharded simulation; use SmpSimRuntime"
        )

    def connect_live(self, *args, **kwargs):
        """Unsupported in sharded mode (lookaheads are sealed at deploy)."""
        raise RuntimeError_(
            "connect_live is not supported in sharded simulation; use SmpSimRuntime"
        )

    # -- lifecycle -------------------------------------------------------------

    def _run_sim(self) -> None:
        if self.parallel:
            self.sim.run_parallel()
        else:
            self.sim.run()

    def wait(self) -> None:
        """Run all shards to completion under conservative sync."""
        self._run_sim()
        self.makespan_ns = max(s.kernel.now for s in self.shards)
        stuck = [
            cont.component.name
            for cont in self.containers.values()
            if cont.handle is not None and cont.handle.state != DONE
        ]
        if stuck:
            states = {name: self.containers[name].handle.state for name in stuck}
            raise RuntimeError_(f"components did not finish: {states}")

    # -- observed-traffic profile ----------------------------------------------

    def profile(self) -> Dict[str, Any]:
        """The observed-traffic document of this run (``repro.profile/v1``).

        Per-component CPU busy time plus the per-edge message counts
        recorded by :meth:`_transfer`, in the shape
        :func:`repro.sim.shard.repartition_from_profile` consumes: dump
        it after ``wait()``, feed it back as the ``profile=`` argument
        (or ``repro run --repartition``) and the next run's partition is
        weighted by what this one actually did."""
        received: Dict[str, int] = {}
        for (_src, dst), n in self._edge_traffic.items():
            received[dst] = received.get(dst, 0) + n
        components = {}
        for name, cont in self.containers.items():
            busy = self._busy_ns_of(cont)
            components[name] = {
                "busy_ns": int(busy) if busy is not None else 0,
                "events": received.get(name, 0),
                "shard": cont.extra["shard"],
            }
        edges = [
            {"src": src, "dst": dst, "messages": n}
            for (src, dst), n in sorted(self._edge_traffic.items())
        ]
        return {
            "schema": PROFILE_SCHEMA,
            "workload": "runtime",
            "n_shards": self.n_shards,
            "components": components,
            "edges": edges,
            "shards": [
                {"shard": s.index, "busy_s": s.busy_s} for s in self.shards
            ],
        }

    def stamp_telemetry(self) -> None:
        """Component gauges (via the base class), plus the shard plane:
        per-shard host busy time and the cross-shard cut traffic.  All
        *gauges* -- shard layout is an execution property, not a
        simulation result, so it must stay out of ``metrics_digest``
        (which skips gauges) to keep the shard-invariance contract."""
        super().stamp_telemetry()
        regs = self.metrics
        if not isinstance(regs, list):
            return
        cut: Dict[Tuple[int, int], int] = {}
        for (src, dst), n in self._edge_traffic.items():
            s = self.containers[src].extra["shard"]
            d = self.containers[dst].extra["shard"]
            if s != d:
                cut[(s, d)] = cut.get((s, d), 0) + n
        for k, (shard, reg) in enumerate(zip(self.shards, regs)):
            reg.gauge("shard_busy_seconds", shard=k).set(shard.busy_s, reg.last_ns)
            reg.gauge("shard_sweeps", shard=k).set(self.sim.sweeps, reg.last_ns)
            out = sum(n for (s, _d), n in cut.items() if s == k)
            reg.gauge("shard_cut_messages", shard=k, direction="out").set(out, reg.last_ns)
            inn = sum(n for (_s, d), n in cut.items() if d == k)
            reg.gauge("shard_cut_messages", shard=k, direction="in").set(inn, reg.last_ns)

    def collect(
        self, plan: Optional[Iterable[Tuple[str, str]]] = None
    ) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """Run the observer's query flow across shards; returns reports."""
        if self.app is None or self.app.observer is None:
            raise RuntimeError_("no observer attached to the application")
        observer = self.app.observer
        cont = self.container(observer.name)
        plan = list(plan) if plan is not None else self._default_plan()
        flow = observer.collect(cont.context, plan)
        handle = self._spawn_flow(flow, name=f"{observer.name}.query", cont=cont)
        self._run_sim()
        if handle.state != DONE:
            raise RuntimeError_(f"observer query flow stuck in state {handle.state}")
        return handle.result

    def stop(self) -> None:
        """Shut down observation services on every shard.

        The shutdown control message is *staged* at each service's local
        ``now + 1`` rather than put directly -- host-side puts into a
        shard-owned channel would bypass the deterministic delivery
        order."""
        for i, cont in enumerate(self.containers.values()):
            if cont.service_handle is not None and cont.service_handle.alive:
                obs = cont.component.provided.get("introspection")
                if obs is not None and isinstance(obs.binding, Channel):
                    shard = self.shards[cont.extra["shard"]]
                    now = shard.kernel.now
                    message = Message(payload=None, kind=CONTROL, tag="shutdown")

                    def deliver(binding=obs.binding, message=message):
                        binding.put(message)

                    shard.stage(Envelope(now + 1, now, "", "runtime.shutdown", i, deliver))
        for system in self.systems:
            system.shutdown()
        self._run_sim()


class Sti7200SimRuntime(SimRuntime):
    """EMBera over the simulated STi7200 running OS21 + EMBX."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        kernel: Optional[Kernel] = None,
        quantum_ns: int = 1_000_000,
        enforce_one_component_per_cpu: bool = True,
    ) -> None:
        super().__init__(kernel)
        self.platform = platform or make_sti7200()
        self.system = OS21System(self.kernel, self.platform, quantum_ns=quantum_ns)
        self.embx = EmbxTransport(self.kernel, self.platform.region("sdram"))
        self.enforce_one_component_per_cpu = enforce_one_component_per_cpu
        self._cpu_owner: Dict[int, str] = {}

    def _engine(self):
        return self.system.engine

    # -- deployment -------------------------------------------------------------

    def _assign_cpu(self, cont: ComponentContainer) -> int:
        comp = cont.component
        if isinstance(comp, ObserverComponent):
            cpu = comp.placement.get("cpu", 0)  # observer rides the ST40
        else:
            cpu = comp.placement.get("cpu")
            if cpu is None:
                raise RuntimeError_(
                    f"component {comp.name!r} needs a cpu placement on sti7200 "
                    "(one binary per CPU); use comp.place(cpu=N)"
                )
            if self.enforce_one_component_per_cpu and cpu in self._cpu_owner:
                raise RuntimeError_(
                    f"cpu {cpu} already runs {self._cpu_owner[cpu]!r}: the OS21 "
                    "implementation supports one component per CPU"
                )
            self._cpu_owner[cpu] = comp.name
        if not 0 <= cpu < self.platform.n_cores:
            raise RuntimeError_(f"no cpu {cpu} on {self.platform.name}")
        cont.extra["cpu"] = cpu
        return cpu

    def _bind_component(self, cont: ComponentContainer) -> None:
        self._assign_cpu(cont)
        self._bind_observation_channels(cont)
        cpu = cont.extra["cpu"]
        for prov in cont.component.provided.values():
            if prov.is_observation:
                continue
            size = cont.component.placement.get("object_bytes", DEFAULT_OBJECT_BYTES)
            prov.binding = self.embx.create_object(
                prov.qualified_name, owner_cpu=cpu, size_bytes=size
            )

    def _spawn_behavior(self, cont: ComponentContainer) -> None:
        comp = cont.component
        task = self.system.task_create(
            self._wrap_behavior(cont),
            name=comp.name,
            cpu=cont.extra["cpu"],
            priority=comp.placement.get("priority", 5),
            task_bytes=comp.placement.get("task_bytes", DEFAULT_TASK_BYTES),
        )
        cont.handle = task.sched
        cont.extra["task"] = task

    def _spawn_flow(self, body: Generator, name: str, cont: ComponentContainer):
        # Observation flows share the component's CPU at lower priority so
        # they never perturb the behaviour's schedule; the observer query
        # flow runs at high priority to drain replies promptly.
        cpu = cont.extra.get("cpu", 0)
        priority = 9 if isinstance(cont.component, ObserverComponent) else 1
        return self.system.engine.spawn(body, name=name, priority=priority, affinity=[cpu])

    def _clock_offset_for(self, cont: ComponentContainer) -> int:
        # time_now is per-CPU local time (paper section 5.2).
        return self.system.clock_offsets_ns[cont.extra.get("cpu", 0)]

    # -- transport -----------------------------------------------------------------

    def _transfer(self, src: Component, target, message: Message) -> Generator:
        if target.is_observation:
            yield from self._transfer_observation(target, message)
            return
        yield from self.embx.send(target.binding, message, nbytes=message.size_bytes)

    def _receive_data(
        self, dst: Component, provided, timeout_ns: Optional[int] = None
    ) -> Generator:
        try:
            payload, _nbytes = yield from self.embx.receive(provided.binding, timeout_ns)
        except EmbxTimeout:
            raise DeadlineError(dst.name, provided.name, timeout_ns) from None
        return payload

    def _data_queue(self, provided) -> Channel:
        return provided.binding.queue

    def _requeue(self, provided, message: Message) -> None:
        provided.binding.requeue(message, message.size_bytes)

    def _heap_region(self, cont: ComponentContainer):
        # Tasks allocate from their CPU's local memory: ST231s from their
        # 1 MB SRAM (so oversized allocations fail realistically), the
        # ST40 from SDRAM.
        return self.system.local_region_of_cpu(cont.extra["cpu"])

    # -- observation adapters ----------------------------------------------------------

    def _os_adapter(self, cont: ComponentContainer):
        def report() -> Dict[str, Any]:
            """Build the report dict for one observation level."""
            comp = cont.component
            data: Dict[str, Any] = {}
            task = cont.extra.get("task")
            if task is not None:
                # OS21 task_time: CPU time, not wall time (Table 3).
                data["exec_time_us"] = self.system.task_time_us(task)
                data["task_bytes"] = task.task_bytes
            objects = sum(
                p.binding.size_bytes
                for p in comp.provided.values()
                if not p.is_observation and p.binding is not None
            )
            data["object_bytes"] = objects
            data["memory_kb"] = (data.get("task_bytes", 0) + objects) / 1024
            if cont.handle is not None:
                data["cpu_time_us"] = cont.handle.cpu_time_ns // 1_000
            cpu = cont.extra.get("cpu")
            if cpu is not None:
                data["interrupts"] = self.embx.interrupts_by_cpu.get(cpu, 0)
            data["embx_objects"] = {
                p.binding.name: {
                    "sends": p.binding.sends,
                    "receives": p.binding.receives,
                    "peak_depth": p.binding.peak_depth,
                }
                for p in comp.provided.values()
                if not p.is_observation and p.binding is not None
            }
            return data

        return report

    def _busy_ns_of(self, cont: ComponentContainer) -> Optional[int]:
        """OS21 task_time is CPU time (Table 3), in microseconds."""
        task = cont.extra.get("task")
        if task is None:
            return None
        return self.system.task_time_us(task) * 1_000

    def stamp_telemetry(self) -> None:
        """Busy time and queue depths, plus the EMBX transport's
        per-distributed-object traffic gauges."""
        super().stamp_telemetry()
        if self.metrics is not None:
            self.embx.stamp_metrics(self.metrics)
