"""Simulated runtimes: EMBera over the modelled platforms.

:class:`SmpSimRuntime` reproduces the paper's Linux implementation
(section 4): an EMBera application is a Linux user process, a component
is a data structure plus a POSIX thread, a provided interface is a FIFO
mailbox in the process address space, and a connection is a pointer.

:class:`Sti7200SimRuntime` reproduces the OS21 implementation
(section 5): a component is an OS21 task pinned to one CPU ("the current
implementation supports one component per CPU"), a provided interface is
an EMBX distributed object in shared SDRAM, and send/receive map to
``EMBX_Send`` / ``EMBX_Receive``.

Observation fidelity notes
--------------------------
- Observation interfaces ride a runtime-owned control channel (not the
  data transports).  This matches the paper's memory accounting: Fetch
  shows a bare 8 392 kB stack and IDCT shows exactly one 25 kB
  distributed object, so the default ``introspection`` pair cannot be
  consuming mailbox/EMBX memory.
- The OS-level execution-time answer differs per platform exactly as in
  the paper: gettimeofday wall time on Linux (Table 1) vs ``task_time``
  CPU time on OS21 (Table 3).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from repro.core.application import Application
from repro.core.component import Component
from repro.core.context import ComponentContext
from repro.core.errors import DeadlineError
from repro.core.messages import CONTROL, Message
from repro.core.observation import ObservationProbe, observation_service_behavior
from repro.core.observer import ObserverComponent
from repro.embx.transport import DEFAULT_OBJECT_BYTES, EmbxTimeout, EmbxTransport
from repro.hw.platform import Platform
from repro.hw.smp16 import make_smp16
from repro.hw.sti7200 import make_sti7200
from repro.oslinux.system import DEFAULT_STACK_BYTES, LinuxSystem
from repro.os21.system import DEFAULT_TASK_BYTES, OS21System
from repro.runtime.base import ComponentContainer, Runtime, RuntimeError_
from repro.sim.executor import Compute, DONE
from repro.sim.kernel import Kernel
from repro.sim.resources import Channel

#: Cost charged (per op) for the runtime-owned observation channel.
OBS_CHANNEL_SYSCALLS = 1


class SimMailbox:
    """The Linux-implementation provided-interface binding: a FIFO plus
    the NUMA node its buffer lives on."""

    __slots__ = ("channel", "node", "capacity_bytes", "written_bytes", "base_addr")

    def __init__(self, channel: Channel, node: int, capacity_bytes: int, base_addr: int) -> None:
        self.channel = channel
        self.node = node
        self.capacity_bytes = capacity_bytes
        self.written_bytes = 0
        self.base_addr = base_addr


class SimContext(ComponentContext):
    """Component context over a simulated platform."""

    def __init__(
        self,
        component: Component,
        probe: Optional[ObservationProbe],
        runtime: "SimRuntime",
        clock_offset_ns: int = 0,
    ) -> None:
        super().__init__(component, probe)
        self.runtime = runtime
        self.clock_offset_ns = clock_offset_ns
        self._span_source = runtime.span_source

    def now_ns(self) -> int:
        """Current platform time in nanoseconds."""
        return self.runtime.kernel.now + self.clock_offset_ns

    def compute(self, opclass: str, units: float) -> Generator:
        """Declare computational work (see ComponentContext.compute)."""
        yield Compute(opclass, units)

    def sleep(self, delay_ns: int) -> Generator:
        """Suspend for ``delay_ns`` of virtual time."""
        from repro.sim.process import Timeout

        yield Timeout(int(delay_ns))

    def _transfer(self, target, message: Message) -> Generator:
        yield from self.runtime._transfer(self.component, target, message)

    def _receive_from(self, provided, timeout_ns: Optional[int] = None) -> Generator:
        message = yield from self.runtime._receive(self.component, provided, timeout_ns)
        return message

    def _try_receive_from(self, provided):
        return self.runtime._try_receive(provided)

    def _depth_of(self, provided) -> int:
        binding = provided.binding
        if isinstance(binding, Channel):
            return len(binding)
        return len(self.runtime._data_queue(provided))

    def _alloc(self, nbytes: int, label: str):
        return self.runtime._component_alloc(self.component, nbytes, label)

    def _free(self, handle) -> int:
        return self.runtime._component_free(self.component, handle)

    def log(self, text: str) -> None:
        """Record a debug line in the runtime's log buffer."""
        self.runtime.logs.append((self.runtime.kernel.now, self.component.name, text))


class SimRuntime(Runtime):
    """Shared machinery for both simulated platforms."""

    def __init__(self, kernel: Optional[Kernel] = None) -> None:
        super().__init__()
        self.kernel = kernel or Kernel()
        self.logs: List[Tuple[int, str, str]] = []
        self.makespan_ns: Optional[int] = None
        self._fake_addr = 1 << 20  # synthetic address space for cache modelling

    # -- subclass hooks ----------------------------------------------------------

    def _bind_component(self, cont: ComponentContainer) -> None:
        raise NotImplementedError

    def _spawn_behavior(self, cont: ComponentContainer) -> None:
        raise NotImplementedError

    def _spawn_flow(self, body: Generator, name: str, cont: ComponentContainer):
        """Spawn an infrastructure flow (observation service / observer
        query) that must not appear in the platform's memory accounting."""
        raise NotImplementedError

    def _engine(self):
        raise NotImplementedError

    def _transfer(self, src: Component, target, message: Message) -> Generator:
        raise NotImplementedError

    def _os_adapter(self, cont: ComponentContainer):
        raise NotImplementedError

    def _clock_offset_for(self, cont: ComponentContainer) -> int:
        return 0

    # -- shared transport paths -----------------------------------------------------

    def _transfer_observation(self, target, message: Message) -> Generator:
        """Runtime-owned control channel: cheap, platform-independent."""
        yield Compute("syscall", OBS_CHANNEL_SYSCALLS)
        target.binding.put(message)

    def _receive(self, dst: Component, provided, timeout_ns: Optional[int] = None) -> Generator:
        binding = provided.binding
        if binding is None:
            raise RuntimeError_(f"interface {provided.qualified_name} has no binding")
        if isinstance(binding, Channel):  # observation channel
            if timeout_ns is None:
                message = yield from binding.get()
            else:
                ok, message = yield from binding.get_with_deadline(timeout_ns)
                if not ok:
                    raise DeadlineError(dst.name, provided.name, timeout_ns)
            yield Compute("syscall", OBS_CHANNEL_SYSCALLS)
            return message
        message = yield from self._receive_data(dst, provided, timeout_ns)
        return message

    def _receive_data(
        self, dst: Component, provided, timeout_ns: Optional[int] = None
    ) -> Generator:
        raise NotImplementedError

    def _try_receive(self, provided):
        binding = provided.binding
        queue = binding if isinstance(binding, Channel) else self._data_queue(provided)
        ok, message = queue.try_get()
        return message if ok else None

    def _data_queue(self, provided) -> Channel:
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------------------

    def deploy(self, app: Application) -> None:
        """Bind interfaces, build contexts and adapters."""
        self._register(app)
        for cont in self.containers.values():
            self._bind_component(cont)
        for cont in self.containers.values():
            offset = self._clock_offset_for(cont)
            cont.context = SimContext(cont.component, cont.probe, self, offset)
            cont.service_context = SimContext(cont.component, None, self, offset)
            cont.probe.os_adapter = self._os_adapter(cont)
            cont.probe.middleware_adapter = self._mw_adapter(cont)

    def start(self) -> None:
        """Launch every component's behaviour and observation service."""
        if self.app is None:
            raise RuntimeError_("deploy() an application first")
        for cont in self.containers.values():
            if isinstance(cont.component, ObserverComponent):
                continue  # observer flows are spawned on demand by collect()
            self._launch(cont)
        # The observer still needs its service-side channel bindings even
        # though its behaviour is query-driven.

    def _launch(self, cont: ComponentContainer) -> None:
        self._spawn_behavior(cont)
        cont.service_handle = self._spawn_flow(
            observation_service_behavior(cont.service_context, cont.probe),
            name=f"{cont.component.name}.obsvc",
            cont=cont,
        )

    # -- dynamic reconfiguration ---------------------------------------------------

    def _deploy_dynamic(self, cont: ComponentContainer) -> None:
        self._bind_component(cont)
        offset = self._clock_offset_for(cont)
        cont.context = SimContext(cont.component, cont.probe, self, offset)
        cont.service_context = SimContext(cont.component, None, self, offset)
        cont.probe.os_adapter = self._os_adapter(cont)
        cont.probe.middleware_adapter = self._mw_adapter(cont)

    def _start_dynamic(self, cont: ComponentContainer) -> None:
        self._launch(cont)

    def spawn_controller(self, fn, name: str = "controller"):
        """Run a reconfiguration/monitoring flow inside the simulation.

        ``fn(runtime, observer_ctx)`` must be a generator: it may sleep
        (``yield Timeout(ns)``), collect observations
        (``yield from observer.collect(observer_ctx, plan)``) and call
        :meth:`add_component` / :meth:`rebind` synchronously -- the
        observer-in-the-loop adaptation the paper's observation data
        enables.  Returns the flow handle (``.result`` after ``wait()``).
        """
        if self.app is None or self.app.observer is None:
            raise RuntimeError_("controllers need a deployed app with an observer")
        cont = self.container(self.app.observer.name)
        return self._spawn_flow(fn(self, cont.context), name=name, cont=cont)

    def _wrap_behavior(self, cont: ComponentContainer) -> Generator:
        component, probe, ctx = cont.component, cont.probe, cont.context
        probe.started_at_us = ctx.now_us()
        self._mark_running(component)
        try:
            result = yield from self._behavior_body(cont)
        except BaseException:
            probe.ended_at_us = ctx.now_us()
            self._mark_stopped(component, failed=True)
            raise
        probe.ended_at_us = ctx.now_us()
        self._mark_stopped(component)
        return result

    def wait(self) -> None:
        """Run/block until all functional behaviours finish."""
        self.kernel.run()
        self.makespan_ns = self.kernel.now
        stuck = [
            cont.component.name
            for cont in self.containers.values()
            if cont.handle is not None and cont.handle.state != DONE
        ]
        if stuck:
            states = {
                name: self.containers[name].handle.state for name in stuck
            }
            raise RuntimeError_(f"components did not finish: {states}")

    def collect(
        self, plan: Optional[Iterable[Tuple[str, str]]] = None
    ) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """Run the observer's query flow; returns keyed reports."""
        if self.app is None or self.app.observer is None:
            raise RuntimeError_("no observer attached to the application")
        observer = self.app.observer
        cont = self.container(observer.name)
        plan = list(plan) if plan is not None else self._default_plan()
        flow = observer.collect(cont.context, plan)
        handle = self._spawn_flow(flow, name=f"{observer.name}.query", cont=cont)
        self.kernel.run()
        if handle.state != DONE:
            raise RuntimeError_(f"observer query flow stuck in state {handle.state}")
        return handle.result

    def schedule_collect(self, delay_ns: int, plan: Optional[Iterable[Tuple[str, str]]] = None):
        """Schedule an observation sweep at a *virtual* instant.

        Call between ``deploy()`` and ``wait()``.  Returns the query-flow
        handle; after ``wait()`` its ``result`` is ``(time_ns, reports)``
        with the mid-run snapshot the observer gathered -- the on-line
        monitoring use-case of the paper's dynamic-configuration
        discussion (section 4.4).
        """
        if self.app is None or self.app.observer is None:
            raise RuntimeError_("no observer attached to the application")
        observer = self.app.observer
        cont = self.container(observer.name)
        plan = list(plan) if plan is not None else self._default_plan()

        def flow():
            """The scheduled observation query flow."""
            from repro.sim.process import Timeout

            yield Timeout(delay_ns)
            reports = yield from observer.collect(cont.context, plan)
            return (self.kernel.now, reports)

        return self._spawn_flow(flow(), name=f"{observer.name}.query@{delay_ns}", cont=cont)

    def stop(self) -> None:
        """Shut down observation services and release the platform."""
        for cont in self.containers.values():
            if cont.service_handle is not None and cont.service_handle.alive:
                obs = cont.component.provided.get("introspection")
                if obs is not None and isinstance(obs.binding, Channel):
                    obs.binding.put(Message(payload=None, kind=CONTROL, tag="shutdown"))
        self._engine().shutdown()
        self.kernel.run()

    # -- shared binding helpers ---------------------------------------------------------

    def _mw_adapter(self, cont: ComponentContainer):
        """Middleware extras: live inbound queue depths per provided
        interface -- the backlog signal adaptation controllers key on."""

        def extras() -> Dict[str, Any]:
            """Runtime-provided middleware extras (queue depths)."""
            depths = {}
            for prov in cont.component.provided.values():
                if prov.is_observation or prov.binding is None:
                    continue
                depths[prov.name] = len(self._data_queue(prov))
            return {"queue_depths": depths}

        return extras

    # -- component heap (memory-evolution extension) ----------------------------

    def _heap_region(self, cont: ComponentContainer):
        raise NotImplementedError

    def _component_alloc(self, component: Component, nbytes: int, label: str):
        cont = self.container(component.name)
        region = self._heap_region(cont)
        handle = region.alloc(
            nbytes, label=f"{component.name}:{label}", time_ns=self.kernel.now
        )
        heap = cont.extra.setdefault("heap", {})
        heap[handle] = (region, nbytes)
        return handle

    def _component_free(self, component: Component, handle) -> int:
        cont = self.container(component.name)
        heap = cont.extra.get("heap", {})
        try:
            region, nbytes = heap.pop(handle)
        except KeyError:
            raise RuntimeError_(
                f"{component.name!r} freed unknown heap handle {handle!r}"
            ) from None
        region.free(handle, time_ns=self.kernel.now)
        return nbytes

    def _bind_observation_channels(self, cont: ComponentContainer) -> None:
        for prov in cont.component.provided.values():
            if prov.is_observation and prov.binding is None:
                prov.binding = Channel(self.kernel, name=f"obs.{prov.qualified_name}")

    def _next_fake_addr(self, nbytes: int) -> int:
        addr = self._fake_addr
        self._fake_addr += max(nbytes, 64)
        return addr


class SmpSimRuntime(SimRuntime):
    """EMBera over the simulated 16-core Linux NUMA SMP."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        kernel: Optional[Kernel] = None,
        quantum_ns: int = 4_000_000,
    ) -> None:
        super().__init__(kernel)
        self.platform = platform or make_smp16()
        self.system = LinuxSystem(self.kernel, self.platform, quantum_ns=quantum_ns)
        self.process = self.system.spawn_process("embera")
        self._next_core = 0

    def _engine(self):
        return self.system.engine

    # -- deployment ------------------------------------------------------------

    def _assign_core(self, cont: ComponentContainer) -> int:
        core = cont.component.placement.get("core")
        if core is None:
            core = self._next_core % self.platform.n_cores
            self._next_core += 1
        cont.extra["core"] = core
        cont.extra["node"] = self.platform.node_of_core(core)
        return core

    def _bind_component(self, cont: ComponentContainer) -> None:
        self._assign_core(cont)
        self._bind_observation_channels(cont)
        node = cont.extra["node"]
        for prov in cont.component.provided.values():
            if prov.is_observation:
                continue
            self.process.malloc(
                prov.mailbox_bytes, label=f"{prov.qualified_name}:mailbox", node=node
            )
            prov.binding = SimMailbox(
                Channel(self.kernel, name=f"mbox.{prov.qualified_name}"),
                node=node,
                capacity_bytes=prov.mailbox_bytes,
                base_addr=self._next_fake_addr(prov.mailbox_bytes),
            )

    def _spawn_behavior(self, cont: ComponentContainer) -> None:
        stack = cont.component.placement.get("stack_bytes", DEFAULT_STACK_BYTES)
        thread = self.process.pthread_create(
            self._wrap_behavior(cont),
            name=cont.component.name,
            stack_bytes=stack,
            affinity=[cont.extra["core"]],
        )
        cont.handle = thread.sched
        cont.extra["pthread"] = thread

    def _spawn_flow(self, body: Generator, name: str, cont: ComponentContainer):
        # Infrastructure flows bypass pthread accounting (no stack charge).
        return self.system.engine.spawn(body, name=name)

    # -- transport ------------------------------------------------------------------

    def _transfer(self, src: Component, target, message: Message) -> Generator:
        if target.is_observation:
            yield from self._transfer_observation(target, message)
            return
        mailbox: SimMailbox = target.binding
        src_core = self.containers[src.name].extra["core"]
        factor = self.platform.copy_factor(src_core, mailbox.node)
        yield Compute("syscall", 1)
        yield Compute("memcpy_byte", message.size_bytes * factor)
        cache = self.platform.cache_of_core(src_core)
        if cache is not None:
            offset = mailbox.written_bytes % max(mailbox.capacity_bytes, 1)
            cache.access_range(mailbox.base_addr + offset, message.size_bytes)
        mailbox.written_bytes += message.size_bytes
        mailbox.channel.put(message)

    def _receive_data(
        self, dst: Component, provided, timeout_ns: Optional[int] = None
    ) -> Generator:
        mailbox: SimMailbox = provided.binding
        if timeout_ns is None:
            message = yield from mailbox.channel.get()
        else:
            ok, message = yield from mailbox.channel.get_with_deadline(timeout_ns)
            if not ok:
                raise DeadlineError(dst.name, provided.name, timeout_ns)
        # The receiver copies the message out of the mailbox; the mailbox
        # is homed on the receiver's node, so no NUMA factor applies.
        yield Compute("memcpy_byte", message.size_bytes)
        dst_core = self.containers[dst.name].extra["core"]
        cache = self.platform.cache_of_core(dst_core)
        if cache is not None:
            cache.access_range(mailbox.base_addr, message.size_bytes)
        return message

    def _data_queue(self, provided) -> Channel:
        return provided.binding.channel

    def _requeue(self, provided, message: Message) -> None:
        # Replays skip the send-side copy/cache costs: the bytes already
        # sit in the mailbox buffer from the original transfer.
        provided.binding.channel.put_front(message)

    def _heap_region(self, cont: ComponentContainer):
        return self.system.node_region(cont.extra["node"])

    # -- observation adapters --------------------------------------------------------

    def _os_adapter(self, cont: ComponentContainer):
        def report() -> Dict[str, Any]:
            """Build the report dict for one observation level."""
            comp = cont.component
            probe = cont.probe
            data: Dict[str, Any] = {}
            if probe.started_at_us is not None and probe.ended_at_us is not None:
                # gettimeofday wall-clock semantics (paper section 4.2).
                data["exec_time_us"] = probe.ended_at_us - probe.started_at_us
            thread = cont.extra.get("pthread")
            stack = thread.attr_getstacksize() if thread is not None else 0
            iface = comp.interface_bytes()
            data["stack_bytes"] = stack
            data["interface_bytes"] = iface
            data["memory_kb"] = (stack + iface) / 1024
            if cont.handle is not None:
                data["cpu_time_us"] = cont.handle.cpu_time_ns // 1_000
            core = cont.extra.get("core")
            cache = self.platform.cache_of_core(core) if core is not None else None
            if cache is not None:
                data["cache"] = cache.stats.snapshot()
            return data

        return report


class Sti7200SimRuntime(SimRuntime):
    """EMBera over the simulated STi7200 running OS21 + EMBX."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        kernel: Optional[Kernel] = None,
        quantum_ns: int = 1_000_000,
        enforce_one_component_per_cpu: bool = True,
    ) -> None:
        super().__init__(kernel)
        self.platform = platform or make_sti7200()
        self.system = OS21System(self.kernel, self.platform, quantum_ns=quantum_ns)
        self.embx = EmbxTransport(self.kernel, self.platform.region("sdram"))
        self.enforce_one_component_per_cpu = enforce_one_component_per_cpu
        self._cpu_owner: Dict[int, str] = {}

    def _engine(self):
        return self.system.engine

    # -- deployment -------------------------------------------------------------

    def _assign_cpu(self, cont: ComponentContainer) -> int:
        comp = cont.component
        if isinstance(comp, ObserverComponent):
            cpu = comp.placement.get("cpu", 0)  # observer rides the ST40
        else:
            cpu = comp.placement.get("cpu")
            if cpu is None:
                raise RuntimeError_(
                    f"component {comp.name!r} needs a cpu placement on sti7200 "
                    "(one binary per CPU); use comp.place(cpu=N)"
                )
            if self.enforce_one_component_per_cpu and cpu in self._cpu_owner:
                raise RuntimeError_(
                    f"cpu {cpu} already runs {self._cpu_owner[cpu]!r}: the OS21 "
                    "implementation supports one component per CPU"
                )
            self._cpu_owner[cpu] = comp.name
        if not 0 <= cpu < self.platform.n_cores:
            raise RuntimeError_(f"no cpu {cpu} on {self.platform.name}")
        cont.extra["cpu"] = cpu
        return cpu

    def _bind_component(self, cont: ComponentContainer) -> None:
        self._assign_cpu(cont)
        self._bind_observation_channels(cont)
        cpu = cont.extra["cpu"]
        for prov in cont.component.provided.values():
            if prov.is_observation:
                continue
            size = cont.component.placement.get("object_bytes", DEFAULT_OBJECT_BYTES)
            prov.binding = self.embx.create_object(
                prov.qualified_name, owner_cpu=cpu, size_bytes=size
            )

    def _spawn_behavior(self, cont: ComponentContainer) -> None:
        comp = cont.component
        task = self.system.task_create(
            self._wrap_behavior(cont),
            name=comp.name,
            cpu=cont.extra["cpu"],
            priority=comp.placement.get("priority", 5),
            task_bytes=comp.placement.get("task_bytes", DEFAULT_TASK_BYTES),
        )
        cont.handle = task.sched
        cont.extra["task"] = task

    def _spawn_flow(self, body: Generator, name: str, cont: ComponentContainer):
        # Observation flows share the component's CPU at lower priority so
        # they never perturb the behaviour's schedule; the observer query
        # flow runs at high priority to drain replies promptly.
        cpu = cont.extra.get("cpu", 0)
        priority = 9 if isinstance(cont.component, ObserverComponent) else 1
        return self.system.engine.spawn(body, name=name, priority=priority, affinity=[cpu])

    def _clock_offset_for(self, cont: ComponentContainer) -> int:
        # time_now is per-CPU local time (paper section 5.2).
        return self.system.clock_offsets_ns[cont.extra.get("cpu", 0)]

    # -- transport -----------------------------------------------------------------

    def _transfer(self, src: Component, target, message: Message) -> Generator:
        if target.is_observation:
            yield from self._transfer_observation(target, message)
            return
        yield from self.embx.send(target.binding, message, nbytes=message.size_bytes)

    def _receive_data(
        self, dst: Component, provided, timeout_ns: Optional[int] = None
    ) -> Generator:
        try:
            payload, _nbytes = yield from self.embx.receive(provided.binding, timeout_ns)
        except EmbxTimeout:
            raise DeadlineError(dst.name, provided.name, timeout_ns) from None
        return payload

    def _data_queue(self, provided) -> Channel:
        return provided.binding.queue

    def _requeue(self, provided, message: Message) -> None:
        provided.binding.requeue(message, message.size_bytes)

    def _heap_region(self, cont: ComponentContainer):
        # Tasks allocate from their CPU's local memory: ST231s from their
        # 1 MB SRAM (so oversized allocations fail realistically), the
        # ST40 from SDRAM.
        return self.system.local_region_of_cpu(cont.extra["cpu"])

    # -- observation adapters ----------------------------------------------------------

    def _os_adapter(self, cont: ComponentContainer):
        def report() -> Dict[str, Any]:
            """Build the report dict for one observation level."""
            comp = cont.component
            data: Dict[str, Any] = {}
            task = cont.extra.get("task")
            if task is not None:
                # OS21 task_time: CPU time, not wall time (Table 3).
                data["exec_time_us"] = self.system.task_time_us(task)
                data["task_bytes"] = task.task_bytes
            objects = sum(
                p.binding.size_bytes
                for p in comp.provided.values()
                if not p.is_observation and p.binding is not None
            )
            data["object_bytes"] = objects
            data["memory_kb"] = (data.get("task_bytes", 0) + objects) / 1024
            if cont.handle is not None:
                data["cpu_time_us"] = cont.handle.cpu_time_ns // 1_000
            cpu = cont.extra.get("cpu")
            if cpu is not None:
                data["interrupts"] = self.embx.interrupts_by_cpu.get(cpu, 0)
            data["embx_objects"] = {
                p.binding.name: {
                    "sends": p.binding.sends,
                    "receives": p.binding.receives,
                    "peak_depth": p.binding.peak_depth,
                }
                for p in comp.provided.values()
                if not p.is_observation and p.binding is not None
            }
            return data

        return report
