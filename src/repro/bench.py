"""Perf-trajectory microbenchmarks: ``python -m repro bench``.

Times the hot paths this codebase optimises -- entropy coding, the
simulation kernel, tracing -- and writes two JSON artifacts in the
current directory:

- ``BENCH_mjpeg.json``  -- codec benches, including the entropy-decode
  speedup of the LUT fast path over the pre-LUT per-symbol walk
  (:func:`repro.mjpeg.decoder.decode_plane_reference`).
- ``BENCH_kernel.json`` -- simulation-kernel and tracing benches.

Every bench reports the best wall-clock time over several repetitions
(minimum = least scheduler noise) plus a derived per-operation figure,
so successive commits can be compared point-to-point.  ``--quick``
shrinks the workloads for CI smoke runs; the numbers are noisier but
the artifact shape is identical.

``--workers N`` fans the per-frame decode benches across a
``multiprocessing`` pool: frames are sharded round-robin, every worker
times its shard independently (same reps, same best-of-reps rule), and
the per-shard results are merged by summing the shard bests -- the same
total-work figure a single process would report, measured in a fraction
of the wall time.  Single-process output (``--workers 1``, the default)
is byte-compatible with previous revisions.

``--check`` re-runs the kernel hot-path benches (``schedule_run``,
``tracer_emit``) and compares them against the committed
``BENCH_kernel.json``; a >25% per-op regression fails the run (CI gate).
It also re-measures the ``metrics_overhead`` scenario (the MJPEG decode
with and without the live telemetry plane) and fails when the overhead
ratio exceeds the absolute 1.05x budget.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional


def _best(fn: Callable[[], object], reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def _frames(n_images: int):
    from repro.mjpeg import generate_stream

    stream = generate_stream(n_images, 96, 96, quality=75, seed=0)
    return [record.frame for record in stream.records]


def _decode_shard(shard_args: tuple) -> Dict:
    """Worker body for ``--workers``: time one shard of the per-frame
    decode/encode benches.  The stream is regenerated from its seed
    rather than pickled (deterministic and cheaper than shipping frame
    payloads through the pool)."""
    n_images, quick, indices = shard_args
    import numpy as np

    from repro.mjpeg import generate_stream
    from repro.mjpeg.bitio import BitReader, BitWriter
    from repro.mjpeg.decoder import decode_plane, decode_plane_reference
    from repro.mjpeg.encoder import encode_plane

    reps = 3 if quick else 9
    stream = generate_stream(n_images, 96, 96, quality=75, seed=0)
    frames = [stream.records[i].frame for i in indices]

    for frame in frames:
        fast = decode_plane(BitReader(frame.payload), frame.n_blocks)
        ref = decode_plane_reference(BitReader(frame.payload), frame.n_blocks)
        if not np.array_equal(fast, ref):
            raise AssertionError("decode_plane mismatch vs reference walk")

    t_fast = _best(
        lambda: [decode_plane(BitReader(f.payload), f.n_blocks) for f in frames],
        reps,
    )
    t_walk = _best(
        lambda: [
            decode_plane_reference(BitReader(f.payload), f.n_blocks) for f in frames
        ],
        reps,
    )
    qzzs = [np.asarray(f.qcoefs_zz, dtype=np.int32) for f in frames]

    def run_encode() -> None:
        for qzz in qzzs:
            writer = BitWriter()
            encode_plane(writer, qzz)
            writer.align()
            writer.getvalue()

    t_encode = _best(run_encode, reps)
    return {
        "fast": t_fast,
        "walk": t_walk,
        "encode": t_encode,
        "blocks": sum(f.n_blocks for f in frames),
    }


def bench_mjpeg(quick: bool = False, workers: int = 1) -> Dict:
    """Codec benches; returns the BENCH_mjpeg.json payload."""
    import numpy as np

    from repro.mjpeg.bitio import BitReader, BitWriter
    from repro.mjpeg.decoder import decode_plane, decode_plane_reference
    from repro.mjpeg.encoder import encode_plane

    n_images = 2 if quick else 8
    reps = 3 if quick else 9
    frames = _frames(n_images)
    n_blocks_total = sum(f.n_blocks for f in frames)

    if workers > 1:
        # Shard frames round-robin across the pool; each worker times
        # its shard and the shard bests sum to the total-work figure.
        # Split and merge go through repro.sim.shard -- the same
        # partition/reduce helpers the sharded simulation uses, so bench
        # sharding and sim sharding share one tested code path.
        import multiprocessing

        from repro.sim.shard import merge_shard_results, round_robin_partition

        n_shards = min(workers, len(frames))
        shards = [
            (n_images, quick, indices)
            for indices in round_robin_partition(len(frames), n_shards)
        ]
        with multiprocessing.Pool(n_shards) as pool:
            results = pool.map(_decode_shard, shards)
        merged = merge_shard_results(results, ("fast", "walk", "encode", "blocks"))
        t_fast = merged["fast"]
        t_walk = merged["walk"]
        t_encode = merged["encode"]
        assert merged["blocks"] == n_blocks_total
    else:
        # Correctness gate: the fast path must match the reference walk
        # bit-for-bit before its timing means anything.
        for frame in frames:
            fast = decode_plane(BitReader(frame.payload), frame.n_blocks)
            ref = decode_plane_reference(BitReader(frame.payload), frame.n_blocks)
            if not np.array_equal(fast, ref):
                raise AssertionError("decode_plane mismatch vs reference walk")

        t_fast = _best(
            lambda: [decode_plane(BitReader(f.payload), f.n_blocks) for f in frames],
            reps,
        )
        t_walk = _best(
            lambda: [
                decode_plane_reference(BitReader(f.payload), f.n_blocks) for f in frames
            ],
            reps,
        )

        qzzs = [np.asarray(f.qcoefs_zz, dtype=np.int32) for f in frames]

        def run_encode() -> None:
            for qzz in qzzs:
                writer = BitWriter()
                encode_plane(writer, qzz)
                writer.align()
                writer.getvalue()

        t_encode = _best(run_encode, reps)

    # Trace scenario: the full componentized SMP decode with tracing on
    # vs off.  The ratio is the real-world cost of causal observation --
    # the acceptance bar is under 2x.
    from repro.mjpeg import generate_stream
    from repro.mjpeg.components import build_smp_assembly
    from repro.runtime import SmpSimRuntime
    from repro.trace.tracer import enable_tracing

    trace_images = 2 if quick else 4
    trace_reps = 2 if quick else 3
    trace_stream = generate_stream(trace_images, 96, 96, quality=75, seed=0)

    def run_decode(tracing: bool) -> None:
        app = build_smp_assembly(trace_stream, use_stored_coefficients=True)
        rt = SmpSimRuntime()
        rt.deploy(app)
        if tracing:
            enable_tracing(rt)
        rt.start()
        rt.wait()
        rt.stop()

    t_untraced = _best(lambda: run_decode(False), trace_reps)
    t_traced = _best(lambda: run_decode(True), trace_reps)

    workload = {"images": n_images, "blocks": n_blocks_total, "reps": reps}
    if workers > 1:
        # Only stamped on sharded runs, so single-process output stays
        # byte-compatible with earlier revisions of this artifact.
        workload["workers"] = workers
    return {
        "suite": "mjpeg",
        "workload": workload,
        "trace_workload": {"images": trace_images, "reps": trace_reps},
        "benches": {
            "entropy_decode_lut": {
                "best_s": t_fast,
                "us_per_block": t_fast / n_blocks_total * 1e6,
            },
            "entropy_decode_walk_baseline": {
                "best_s": t_walk,
                "us_per_block": t_walk / n_blocks_total * 1e6,
            },
            "entropy_encode": {
                "best_s": t_encode,
                "us_per_block": t_encode / n_blocks_total * 1e6,
            },
            "smp_decode_untraced": {"best_s": t_untraced},
            "smp_decode_traced": {"best_s": t_traced},
        },
        "entropy_decode_speedup": t_walk / t_fast,
        "trace_overhead": t_traced / t_untraced,
    }


def _spin(n: int) -> int:
    """Pure-Python busy loop: the per-event compute of the sim_shards
    synthetic workload.  Real interpreter work, so per-shard busy time
    is real CPU time and the critical-path speedup is honest."""
    x = 0
    for i in range(n):
        x += i
    return x


def bench_sim_shards(quick: bool = False) -> Dict:
    """Scaling bench for the sharded conservative simulation.

    Synthetic workload: 16 chains x 4 stages = 64 components on the raw
    :mod:`repro.sim.shard` layer.  Stage ``s`` of chain ``c`` lives on
    shard ``(c + s) % n_shards``, so every chain hop is a cross-shard
    envelope under real lookahead bounds -- the adversarial layout for
    conservative synchronization, not the friendly one.

    On a single-CPU host the cooperative driver cannot show wall-clock
    scaling, so the headline figure is the **critical-path speedup**:
    serial busy seconds (1 shard) divided by the busiest shard's busy
    seconds at N shards -- the wall-clock speedup an N-CPU host would
    approach.  Raw wall time per shard count is reported alongside so
    the coordination overhead stays visible.
    """
    from repro.sim.mailbox import Envelope
    from repro.sim.shard import Shard, ShardedSimulation, merge_shard_results

    n_chains, n_stages = 16, 4
    n_items = 8 if quick else 32
    spin = 400 if quick else 1500
    reps = 2 if quick else 3
    link_ns = 100
    compute_ns = 1_000
    gap_ns = 500

    def run_once(n_shards: int):
        shards = [Shard(i) for i in range(n_shards)]
        sim = ShardedSimulation(shards)
        shard_of = {
            (c, s): (c + s) % n_shards
            for c in range(n_chains)
            for s in range(n_stages)
        }
        for c in range(n_chains):
            for s in range(n_stages - 1):
                sim.add_link(shard_of[(c, s)], shard_of[(c, s + 1)], link_ns)
        for k in range(n_shards):
            # Self-lookahead: a same-shard hop never lands earlier than
            # compute + link after its send.
            sim.add_link(k, k, compute_ns + link_ns)
        events = [0] * n_shards

        def handler(c: int, s: int, seq: int, t: int) -> None:
            me = shard_of[(c, s)]
            _spin(spin)
            events[me] += 1
            if s + 1 < n_stages:
                dst = shard_of[(c, s + 1)]
                send = t + compute_ns
                env = Envelope(
                    send + link_ns, send, f"c{c}", f"s{s}", seq,
                    lambda: handler(c, s + 1, seq, send + link_ns),
                )
                if dst == me:
                    shards[dst].stage(env)
                else:
                    shards[dst].post(env)

        # Source: n_items items enter stage 0 of every chain, spaced by
        # gap_ns, staged before the run starts.
        for c in range(n_chains):
            src = shard_of[(c, 0)]
            for i in range(n_items):
                t = (i + 1) * gap_ns
                shards[src].stage(
                    Envelope(t, 0, "", f"c{c}", i, lambda c=c, i=i, t=t: handler(c, 0, i, t))
                )

        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        per_shard = [{"events": events[k], "busy_s": shards[k].busy_s} for k in range(n_shards)]
        merged = merge_shard_results(per_shard, ("events", "busy_s"))
        return {
            "wall_s": wall,
            "sweeps": sim.sweeps,
            "events": merged["events"],
            "busy_s": merged["busy_s"],
            "max_shard_busy_s": max(p["busy_s"] for p in per_shard),
        }

    expected_events = n_chains * n_stages * n_items
    by_shards: Dict[str, Dict] = {}
    for n_shards in (1, 2, 4):
        best = None
        for _ in range(reps):
            result = run_once(n_shards)
            if result["events"] != expected_events:
                raise AssertionError(
                    f"sim_shards at {n_shards} shards executed {result['events']} "
                    f"events, expected {expected_events}"
                )
            if best is None or result["wall_s"] < best["wall_s"]:
                best = result
        by_shards[str(n_shards)] = best

    # Envelope hot-path micro-bench: construct-push-release through the
    # staging heap, with the src/iface strings repeating the way real
    # component graphs repeat them -- the case `sys.intern` in
    # Envelope.__init__ targets (interned strings win the heap
    # comparison's identity short-circuit).
    from repro.sim.mailbox import Staging

    n_envs = 20_000 if quick else 100_000
    noop = lambda: None  # noqa: E731

    def run_envelopes() -> None:
        staging = Staging()
        push = staging.push
        for i in range(n_envs):
            push(Envelope(i + 1, i, "c%d" % (i % 64), "s%d" % (i % 4), i, noop))
        staging.release_batched(n_envs + 2, lambda t, cb: None)

    t_envs = _best(run_envelopes, reps)

    serial_busy = by_shards["1"]["busy_s"]
    return {
        "components": n_chains * n_stages,
        "chains": n_chains,
        "stages": n_stages,
        "items": n_items,
        "events": expected_events,
        "reps": reps,
        "basis": (
            "critical_path: speedup_N = busy_s(1 shard) / max per-shard "
            "busy_s(N shards); wall-clock scaling needs >= N CPUs"
        ),
        "shards": by_shards,
        "speedup_2": serial_busy / by_shards["2"]["max_shard_busy_s"],
        "speedup_4": serial_busy / by_shards["4"]["max_shard_busy_s"],
        "envelope": {
            "envelopes": n_envs,
            "best_s": t_envs,
            "ns_per_envelope": t_envs / n_envs * 1e9,
        },
    }


def bench_sim_scale(quick: bool = False) -> Dict:
    """10k-component scaling bench over the traffic workload.

    Runs :func:`repro.workloads.traffic.run_traffic` at each size x
    shard count, asserts the trace digest is identical across shard
    counts (scaling numbers for a diverging simulation are meaningless),
    and reports wall events/sec, the per-event cost at 1 shard (the
    flat-cost claim), the critical-path speedup (same basis as
    ``sim_shards``), the cross-shard batch factor and the process peak
    RSS.  ``ru_maxrss`` is a process-wide high-water mark, so the RSS
    column is only meaningful read smallest-size-first (sizes run in
    ascending order).
    """
    import resource

    from repro.workloads import TrafficConfig, run_traffic
    from repro.workloads.traffic import build_traffic_graph

    sizes = (256, 1000) if quick else (1000, 4000, 10000)
    shard_counts = (1, 2, 4)
    ticks = 2 if quick else 3
    spin = 40 if quick else 120
    reps = 1 if quick else 2

    by_size: Dict[str, Dict] = {}
    for size in sizes:
        config = TrafficConfig(n_components=size, ticks=ticks, spin=spin)
        graph = build_traffic_graph(config)
        rows: Dict[str, Dict] = {}
        digests = set()
        events = 0
        for n_shards in shard_counts:
            best = None
            for _ in range(reps):
                result = run_traffic(config, n_shards, graph=graph)
                if best is None or result["wall_s"] < best["wall_s"]:
                    best = result
            digests.add(best["digest"])
            events = best["events"]
            rows[str(n_shards)] = {
                "wall_s": best["wall_s"],
                "events_per_s": best["events"] / best["wall_s"],
                "busy_s": best["busy_s"],
                "max_shard_busy_s": best["max_shard_busy_s"],
                "sweeps": best["sweeps"],
                "batch_factor": best["batch_factor"],
            }
        if len(digests) != 1:
            raise AssertionError(
                f"sim_scale at {size} components: trace digest diverged "
                f"across shard counts {shard_counts}: {sorted(digests)}"
            )
        serial_busy = rows["1"]["busy_s"]
        by_size[str(size)] = {
            "events": events,
            "digest": next(iter(digests)),
            "shards": rows,
            "ns_per_event_1shard": rows["1"]["wall_s"] / events * 1e9,
            "speedup_2": serial_busy / rows["2"]["max_shard_busy_s"],
            "speedup_4": serial_busy / rows["4"]["max_shard_busy_s"],
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        }

    largest = by_size[str(sizes[-1])]
    return {
        "sizes": list(sizes),
        "ticks": ticks,
        "spin": spin,
        "reps": reps,
        "basis": (
            "critical_path: speedup_N = busy_s(1 shard) / max per-shard "
            "busy_s(N shards); events_per_s is wall-clock on this host"
        ),
        "by_size": by_size,
        "components": sizes[-1],
        "speedup_2": largest["speedup_2"],
        "speedup_4": largest["speedup_4"],
        "events_per_s_1shard": largest["shards"]["1"]["events_per_s"],
        "events_per_s_4shards": largest["shards"]["4"]["events_per_s"],
        "batch_factor_4shards": largest["shards"]["4"]["batch_factor"],
    }


def bench_kernel(quick: bool = False) -> Dict:
    """Kernel + tracing benches; returns the BENCH_kernel.json payload."""
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process, Timeout
    from repro.sim.resources import Channel
    from repro.trace.tracer import TraceBuffer, Tracer

    n_events = 20_000 if quick else 200_000
    n_msgs = 5_000 if quick else 50_000
    n_cancel = 10_000 if quick else 100_000
    n_emit = 20_000 if quick else 200_000
    reps = 3 if quick else 5

    def run_schedule() -> None:
        kernel = Kernel()
        noop = lambda: None  # noqa: E731
        for i in range(n_events):
            kernel.schedule(i % 97, noop)
        kernel.run()

    t_schedule = _best(run_schedule, reps)

    def run_pingpong() -> None:
        kernel = Kernel()
        chan = Channel(kernel, name="bench")

        def producer():
            # yield between puts so every get really blocks and every
            # wakeup rides the call_soon fast path
            for i in range(n_msgs):
                chan.put(i)
                yield Timeout(0)

        def consumer():
            for _ in range(n_msgs):
                yield from chan.get()

        Process(kernel, consumer(), name="consumer")
        Process(kernel, producer(), name="producer")
        kernel.run()

    t_pingpong = _best(run_pingpong, reps)

    def run_cancel() -> None:
        kernel = Kernel()
        noop = lambda: None  # noqa: E731
        handles = [kernel.schedule(i + 1, noop) for i in range(n_cancel)]
        # Cancel every handle not on the immediate frontier; compaction
        # keeps the calendar from holding dead entries until their time.
        for handle in handles[100:]:
            handle.cancel()
        kernel.run()

    t_cancel = _best(run_cancel, reps)

    # Deadline-timer churn: the receive-with-deadline pattern where the
    # message beats the timer, so every timer is scheduled then
    # cancelled.  These ride the kernel's timer wheel -- a cancelled
    # deadline never enters the calendar, never becomes a tombstone and
    # never triggers compaction.
    def run_timer_churn() -> None:
        kernel = Kernel()
        noop = lambda: None  # noqa: E731
        remaining = [n_cancel]
        pending = [None]

        def deliver() -> None:
            if pending[0] is not None:
                pending[0].cancel()  # the "message" wins the race
                pending[0] = None
            if remaining[0] > 0:
                remaining[0] -= 1
                pending[0] = kernel.schedule_timer(5_000, noop)
                kernel.schedule(7, deliver)

        deliver()
        kernel.run()

    t_timer = _best(run_timer_churn, reps)

    def run_emit() -> None:
        buffer = TraceBuffer(capacity=n_emit)
        tracer = Tracer(buffer, "bench", lambda: 0)
        emit = tracer.emit
        for _ in range(n_emit):
            emit("compute", "op", "I", units=1)

    t_emit = _best(run_emit, reps)

    # Observation-probe hot path: one record_send per message.  With the
    # deferred tuple-buffer this is a single list append; the timer math
    # and per-interface dict inserts are folded at report time (and the
    # fold is included here via the final report build, so the figure is
    # end-to-end honest).
    from repro.core.messages import DATA, Message
    from repro.core.observation import MIDDLEWARE_LEVEL, ObservationProbe

    class _BenchComponent:
        name = "bench"

        @staticmethod
        def interfaces():
            return {}

    n_records = 20_000 if quick else 200_000
    message = Message(payload=None, kind=DATA, size_bytes=64, src="bench")

    def run_probe() -> None:
        probe = ObservationProbe(_BenchComponent())
        record = probe.record_send
        for _ in range(n_records):
            record("out", message, 120)
        probe.report(MIDDLEWARE_LEVEL)

    t_probe = _best(run_probe, reps)

    # Always-on telemetry overhead (the live metrics plane): the full
    # MJPEG SMP decode with and without `enable_telemetry`, timed as
    # interleaved pairs on CPU time with the GC parked during the timed
    # section.  Wall clock and a fixed arm order both measured noisier
    # than the effect being gated (scheduler preemption lands in one
    # arm, allocation bursts trigger GC pauses at random, and sustained
    # load drifts core frequency between arms), so this scenario keeps
    # its own protocol instead of `_best` and compares best-of-arm
    # ratios.  The 1.05x budget is enforced by `--check` (CI).
    import gc

    from repro.metrics import enable_telemetry
    from repro.mjpeg.components import build_smp_assembly
    from repro.mjpeg.stream import generate_stream
    from repro.runtime.simulated import SmpSimRuntime

    # Quick mode keeps the full 8-image workload: shrinking it raises
    # the noise floor past the 1.05x budget the gate enforces -- only
    # the pair count is reduced.
    tel_images = 8
    tel_pairs = 6 if quick else 10
    tel_stream = generate_stream(tel_images, 96, 96, quality=75, seed=1)

    def run_telemetry_arm(with_telemetry: bool) -> float:
        app = build_smp_assembly(tel_stream)
        rt = SmpSimRuntime()
        rt.deploy(app)
        if with_telemetry:
            enable_telemetry(rt)
        gc.collect()
        gc.disable()
        try:
            t0 = time.process_time()
            rt.start()
            rt.wait()
            elapsed = time.process_time() - t0
        finally:
            gc.enable()
        rt.stop()
        return elapsed

    run_telemetry_arm(False)  # warm both code paths before timing
    run_telemetry_arm(True)
    plain_best = telemetry_best = float("inf")
    for pair in range(tel_pairs):
        if pair % 2:  # alternate arm order: cancels frequency drift
            t_on = run_telemetry_arm(True)
            t_off = run_telemetry_arm(False)
        else:
            t_off = run_telemetry_arm(False)
            t_on = run_telemetry_arm(True)
        plain_best = min(plain_best, t_off)
        telemetry_best = min(telemetry_best, t_on)
    telemetry_overhead = telemetry_best / plain_best

    # Faults / recovery scenario (ROADMAP): simulated makespan of the
    # MJPEG SMP decode fault-free, supervised under chaos, and supervised
    # with exactly-once recovery -- plus the amortised per-restart
    # overhead and the recovery bookkeeping volumes.  Makespans are
    # virtual (simulated) time, so the numbers are deterministic.
    from repro.faults import run_chaos_campaign
    from repro.mjpeg.components import build_smp_assembly
    from repro.mjpeg.stream import generate_stream
    from repro.runtime.simulated import SmpSimRuntime

    n_images = 4 if quick else 8
    stream = generate_stream(n_images, 96, 96, quality=75, seed=1)
    baseline_app = build_smp_assembly(stream, use_stored_coefficients=True)
    baseline_rt = SmpSimRuntime()
    baseline_rt.run(baseline_app)
    baseline_rt.stop()
    baseline_ns = baseline_rt.makespan_ns or 0

    plain = run_chaos_campaign(seed=1, n_images=n_images)
    recovered = run_chaos_campaign(seed=1, n_images=n_images, recover=True)
    per_restart_ns = (
        (recovered.makespan_ns - baseline_ns) // recovered.restarts
        if recovered.restarts
        else 0
    )

    # Durable-recovery scenario (ROADMAP: WAL + on-disk checkpoints):
    # WAL append throughput and checkpoint-commit / cold-restore latency.
    # fsync="never" so the figures measure the record format and pickle
    # path, not the host's disk -- the fsync policies only add I/O waits
    # on top of exactly this work.
    import shutil
    import tempfile

    from repro.recovery.durable import DurableStore
    from repro.recovery.wal import WriteAheadLog

    n_wal = 2_000 if quick else 20_000
    n_ckpt = 20 if quick else 100
    wal_record = {
        "t": "send",
        "key": ("Fetch", "fetchIdct1"),
        "dseq": 1,
        "uid": 1,
        "target": ("IDCT_1", "_fetchIdct1"),
        "msg": {"payload": bytes(2048), "kind": "data", "tag": "batch",
                "src": "Fetch", "src_interface": "fetchIdct1", "seq": 1,
                "size_bytes": 2048, "span": 1, "cause": 0, "dseq": 1},
    }
    ckpt_state = {"pending": {i: bytes(512) for i in range(8)}, "completed": 0}

    scratch = tempfile.mkdtemp(prefix="repro-bench-durable-")
    try:
        wal_bytes = [0]

        def run_wal_append() -> None:
            path = os.path.join(scratch, "bench.wal")
            if os.path.exists(path):
                os.unlink(path)
            with WriteAheadLog(path, fsync="never") as wal:
                append = wal.append
                for _ in range(n_wal):
                    append(wal_record)
                wal.sync()
                wal_bytes[0] = wal.size_bytes()

        t_wal = _best(run_wal_append, reps)

        def make_store(root: str) -> DurableStore:
            return DurableStore(root, config={"bench": True}, fsync="never")

        def run_ckpt_commit() -> None:
            root = os.path.join(scratch, "store")
            shutil.rmtree(root, ignore_errors=True)
            store = make_store(root).open()
            for e in range(n_ckpt):
                ckpt = {"epoch": e, "state": ckpt_state,
                        "send": {("bench", "out"): e}, "rx": {}}
                store.commit_checkpoint("bench", ckpt, [])
            store.close()

        t_commit = _best(run_ckpt_commit, reps)
        # Cold-restore latency against the store the last commit rep left
        # behind: manifest + checkpoint load + full WAL scan.
        restore_root = os.path.join(scratch, "store")

        def run_restore() -> None:
            store = make_store(restore_root).open()
            restored = store.restore_state()
            store.close()
            if "bench" not in restored.checkpoints:
                raise AssertionError("cold restore lost the committed checkpoint")

        t_restore = _best(run_restore, reps)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    # Sharded-simulation scaling (ROADMAP: parallel kernel).  Same event
    # totals at every shard count or the bench raises -- scaling numbers
    # for a simulation that diverges would be meaningless.
    sim_shards = bench_sim_shards(quick)

    # 10k-component scaling over the traffic workload (ROADMAP: scale).
    sim_scale = bench_sim_scale(quick)

    return {
        "suite": "kernel",
        "workload": {
            "events": n_events,
            "messages": n_msgs,
            "cancels": n_cancel,
            "emits": n_emit,
            "probe_records": n_records,
            "reps": reps,
        },
        "benches": {
            "schedule_run": {
                "best_s": t_schedule,
                "ns_per_event": t_schedule / n_events * 1e9,
            },
            "channel_pingpong": {
                "best_s": t_pingpong,
                "ns_per_message": t_pingpong / n_msgs * 1e9,
            },
            "cancel_compact": {
                "best_s": t_cancel,
                "ns_per_cancel": t_cancel / n_cancel * 1e9,
            },
            "timer_churn": {
                "best_s": t_timer,
                "ns_per_timer": t_timer / n_cancel * 1e9,
            },
            "tracer_emit": {
                "best_s": t_emit,
                "ns_per_emit": t_emit / n_emit * 1e9,
            },
            "probe_record_send": {
                "best_s": t_probe,
                "ns_per_record": t_probe / n_records * 1e9,
            },
            "metrics_overhead": {
                "images": tel_images,
                "pairs": tel_pairs,
                "plain_best_s": plain_best,
                "telemetry_best_s": telemetry_best,
                "overhead": telemetry_overhead,
            },
            "faults_campaign": {
                "images": n_images,
                "baseline_makespan_ns": baseline_ns,
                "supervised_makespan_ns": plain.makespan_ns,
                "recovery_makespan_ns": recovered.makespan_ns,
                "restarts": recovered.restarts,
                "per_restart_overhead_ns": per_restart_ns,
                "frames_lost_without_recovery": len(plain.lost_frames),
                "replayed": recovered.recovery.get("replayed", 0),
                "deduped": recovered.recovery.get("deduped", 0),
                "checkpoints": recovered.recovery.get("checkpoints", 0),
                "exactly_once": recovered.ok,
            },
            "wal_append": {
                "best_s": t_wal,
                "records": n_wal,
                "ns_per_append": t_wal / n_wal * 1e9,
                "mb_per_s": wal_bytes[0] / t_wal / 1e6,
                "fsync": "never",
            },
            "checkpoint_restore": {
                "commit_best_s": t_commit,
                "commits": n_ckpt,
                "us_per_commit": t_commit / n_ckpt * 1e6,
                "restore_best_s": t_restore,
                "restore_ms": t_restore * 1e3,
                "fsync": "never",
            },
            "sim_shards": sim_shards,
            "sim_scale": sim_scale,
        },
    }


def _git_rev() -> Optional[str]:
    """Short git revision of the working tree, or None outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def _meta(quick: bool) -> Dict:
    """The ``meta`` block stamped into both artifacts: interpreter and
    machine for comparability, git rev + ISO timestamp so every number
    in the perf trajectory is attributable to one commit."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": quick,
        "git_rev": _git_rev(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


#: Benches the --check gate re-runs, with the per-op key to compare.
_CHECK_BENCHES = (
    ("schedule_run", "ns_per_event"),
    ("tracer_emit", "ns_per_emit"),
)

#: Maximum tolerated per-op regression versus the committed baseline.
_CHECK_TOLERANCE = 0.25

#: Absolute ceiling on the always-on telemetry overhead ratio (the
#: ``metrics_overhead`` scenario): not baseline-relative, because the
#: budget is a product promise -- the metrics plane must stay cheap
#: enough to leave enabled.
_METRICS_OVERHEAD_MAX = 1.05

#: Absolute floor on the sim_scale critical-path speedup at 4 shards
#: (largest size).  Critical-path basis is busy-time derived, so the
#: floor is mostly host-independent, but the static partition of the
#: skewed traffic graph legitimately leaves ~1.7x event imbalance and
#: loaded CI hosts add noise on top -- the floor sits safely below the
#: ~2-3.5x this bench measures, high enough to catch batching or
#: partitioning falling over (a broken cut measures ~1x).  (The
#: digest-equality assert lives in the bench itself and raises on
#: divergence.)
_SIM_SCALE_SPEEDUP_MIN = 1.5


def check_regressions(
    quick: bool = True, baseline_path: str = "BENCH_kernel.json"
) -> bool:
    """Perf-regression gate (``bench --quick --check``): re-run the
    kernel hot-path benches and compare per-op figures against the
    committed baseline.  Returns True when everything is within
    tolerance; prints one line per bench either way."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)["benches"]
    current = bench_kernel(quick)["benches"]
    ok = True
    for bench_name, per_op_key in _CHECK_BENCHES:
        old = baseline[bench_name][per_op_key]
        new = current[bench_name][per_op_key]
        ratio = new / old if old else float("inf")
        verdict = "ok"
        if ratio > 1.0 + _CHECK_TOLERANCE:
            verdict = f"REGRESSION (>{_CHECK_TOLERANCE:.0%} over baseline)"
            ok = False
        print(
            f"check {bench_name}: {new:.0f} vs baseline {old:.0f} {per_op_key}"
            f" ({ratio:.2f}x) {verdict}"
        )
    # Absolute budget, not baseline-relative: the 1.05x telemetry
    # overhead is a product promise.  Stubbed runs (the gate's own unit
    # tests) may omit the scenario.
    scenario = current.get("metrics_overhead")
    if scenario is not None:
        overhead = scenario["overhead"]
        verdict = "ok"
        if overhead > _METRICS_OVERHEAD_MAX:
            verdict = f"OVER BUDGET (>{_METRICS_OVERHEAD_MAX:.2f}x)"
            ok = False
        print(
            f"check metrics_overhead: {overhead:.3f}x"
            f" (budget {_METRICS_OVERHEAD_MAX:.2f}x) {verdict}"
        )
    # Likewise absolute: the 10k-scaling promise (digest equality across
    # shard counts is asserted inside the bench; a divergence raises).
    scale = current.get("sim_scale")
    if scale is not None:
        speedup = scale["speedup_4"]
        verdict = "ok"
        if speedup < _SIM_SCALE_SPEEDUP_MIN:
            verdict = f"UNDER FLOOR (<{_SIM_SCALE_SPEEDUP_MIN:.1f}x)"
            ok = False
        print(
            f"check sim_scale: {speedup:.2f}x critical-path speedup at 4 "
            f"shards / {scale['components']} components"
            f" (floor {_SIM_SCALE_SPEEDUP_MIN:.1f}x) {verdict}"
        )
    return ok


def run_benches(quick: bool = False, out_dir: str = ".", workers: int = 1) -> List[str]:
    """Run both suites and write the JSON artifacts; returns the paths.

    Artifacts are published atomically (temp file + ``os.replace``): the
    committed files double as the ``--check`` perf-gate baseline, and a
    crash mid-bench must leave the previous baseline intact rather than
    a half-written one.
    """
    from repro.recovery.durable import atomic_write_bytes

    meta = _meta(quick)
    paths = []
    for name, payload in (
        ("BENCH_kernel.json", bench_kernel(quick)),
        ("BENCH_mjpeg.json", bench_mjpeg(quick, workers=workers)),
    ):
        payload["meta"] = meta
        path = os.path.join(out_dir, name)
        atomic_write_bytes(path, json.dumps(payload, indent=2).encode())
        paths.append(path)
    return paths
