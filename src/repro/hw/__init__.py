"""Hardware platform models.

A :class:`~repro.hw.platform.Platform` bundles CPU cost models
(:class:`~repro.hw.cpu.CpuModel`), memory regions with allocation tracking
(:mod:`repro.hw.memory`), and an interconnect cost model.  Two concrete
platforms reproduce the paper's testbeds:

- :func:`repro.hw.smp16.make_smp16` -- the 16-core AMD Opteron NUMA SMP
  (8 nodes x 2 cores, 3-cube interconnect).
- :func:`repro.hw.sti7200.make_sti7200` -- the STMicroelectronics STi7200
  (1 ST40 general-purpose core + 4 ST231 accelerators, local SRAM plus a
  shared SDRAM window).

Cycle costs are calibrated so the *shape* of the paper's tables and
figures is reproduced (see DESIGN.md section 4); absolute agreement is a
non-goal since the original testbeds are unavailable.

:mod:`repro.hw.cache` adds a set-associative cache simulator used by the
cache-miss observation extension (paper section 6, "ongoing work").
"""

from repro.hw.cache import CacheConfig, CacheSim, CacheStats
from repro.hw.cpu import CpuModel
from repro.hw.interconnect import hypercube_distance
from repro.hw.memory import AllocationError, MemoryRegion
from repro.hw.platform import Platform
from repro.hw.smp16 import make_smp16
from repro.hw.sti7200 import make_sti7200

__all__ = [
    "AllocationError",
    "CacheConfig",
    "CacheSim",
    "CacheStats",
    "CpuModel",
    "MemoryRegion",
    "Platform",
    "hypercube_distance",
    "make_smp16",
    "make_sti7200",
]
