"""Platform container: cores + memory regions + interconnect cost model."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.hw.cache import CacheConfig, CacheSim
from repro.hw.cpu import CpuModel
from repro.hw.interconnect import DEFAULT_LINK_LATENCY_NS, NumaCostModel
from repro.hw.memory import MemoryRegion


class Platform:
    """A modelled machine.

    Parameters
    ----------
    name:
        Human-readable platform id (``"smp16"``, ``"sti7200"``).
    cores:
        One :class:`CpuModel` per hardware core, indexed by core id.
    core_nodes:
        NUMA node (memory domain) of each core.
    regions:
        Named memory regions.
    numa:
        Optional NUMA copy-cost model over the node ids used in
        ``core_nodes``; ``None`` means uniform memory.
    cache_config:
        When given, each core gets a private :class:`CacheSim` used by the
        cache-miss observation extension.
    """

    def __init__(
        self,
        name: str,
        cores: Sequence[CpuModel],
        core_nodes: Sequence[int],
        regions: Dict[str, MemoryRegion],
        numa: Optional[NumaCostModel] = None,
        cache_config: Optional[CacheConfig] = None,
    ) -> None:
        if len(cores) != len(core_nodes):
            raise ValueError(
                f"{len(cores)} cores but {len(core_nodes)} node assignments"
            )
        if not cores:
            raise ValueError("a platform needs at least one core")
        self.name = name
        self.cores: List[CpuModel] = list(cores)
        self.core_nodes: List[int] = list(core_nodes)
        self.regions = dict(regions)
        self.numa = numa
        self.caches: Optional[List[CacheSim]] = (
            [CacheSim(cache_config) for _ in cores] if cache_config else None
        )

    @property
    def n_cores(self) -> int:
        """Number of modelled cores."""
        return len(self.cores)

    def node_of_core(self, core_idx: int) -> int:
        """NUMA node (memory domain) of a core."""
        return self.core_nodes[core_idx]

    def region(self, name: str) -> MemoryRegion:
        """Look up a memory region by name (KeyError lists options)."""
        try:
            return self.regions[name]
        except KeyError:
            raise KeyError(
                f"platform {self.name!r} has no region {name!r}; "
                f"available: {sorted(self.regions)}"
            ) from None

    def copy_factor(self, src_core: int, dst_node: int) -> float:
        """Per-byte cost multiplier for a copy from ``src_core`` into memory
        homed on ``dst_node`` (1.0 on uniform-memory platforms)."""
        if self.numa is None:
            return 1.0
        return self.numa.cost_factor(self.node_of_core(src_core), dst_node)

    def link_latency_ns(self, src_core: int, dst_core: int) -> int:
        """Minimum one-way message latency between two cores (ns).

        Always >= 1: this is the guaranteed floor on inter-component
        delivery delay, which the sharded simulator uses as its
        conservative lookahead.  Uniform-memory platforms report a flat
        fabric latency."""
        if self.numa is None:
            return DEFAULT_LINK_LATENCY_NS
        return max(
            1,
            self.numa.latency_ns(
                self.node_of_core(src_core), self.node_of_core(dst_core)
            ),
        )

    def cache_of_core(self, core_idx: int) -> Optional[CacheSim]:
        """The core's private cache model, or None."""
        return self.caches[core_idx] if self.caches is not None else None

    def total_memory_bytes(self) -> int:
        """Sum of all region capacities."""
        return sum(r.size_bytes for r in self.regions.values())

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Platform {self.name} cores={self.n_cores}>"
