"""Memory regions with allocation tracking.

Regions model physical memory blocks (a NUMA node's local DRAM, an ST231's
local SRAM, the STi7200's shared SDRAM window).  Allocation is tracked by
named handles so OS substrates can answer the paper's memory-observation
queries (component stack size, interface structures, distributed objects)
and the memory-evolution extension can sample high-water marks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class AllocationError(Exception):
    """Raised when a region cannot satisfy an allocation."""


class MemoryRegion:
    """A fixed-size memory block with named allocations."""

    def __init__(self, name: str, size_bytes: int, node: int = 0, kind: str = "dram") -> None:
        if size_bytes <= 0:
            raise AllocationError(f"region size must be positive, got {size_bytes}")
        self.name = name
        self.size_bytes = int(size_bytes)
        self.node = node
        self.kind = kind
        self.used_bytes = 0
        self.peak_bytes = 0
        self._allocations: Dict[int, Tuple[str, int]] = {}
        self._next_handle = 1
        self._timeline: List[Tuple[int, int]] = []  # (time_ns, used_bytes) samples

    def alloc(self, nbytes: int, label: str = "", time_ns: int = 0) -> int:
        """Allocate ``nbytes``; returns a handle for :meth:`free`."""
        if nbytes < 0:
            raise AllocationError(f"negative allocation: {nbytes}")
        if self.used_bytes + nbytes > self.size_bytes:
            raise AllocationError(
                f"region {self.name!r} exhausted: {self.used_bytes} used, "
                f"{nbytes} requested, {self.size_bytes} capacity"
            )
        handle = self._next_handle
        self._next_handle += 1
        self._allocations[handle] = (label, int(nbytes))
        self.used_bytes += int(nbytes)
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self._timeline.append((time_ns, self.used_bytes))
        return handle

    def free(self, handle: int, time_ns: int = 0) -> None:
        """Release a previous allocation."""
        try:
            _, nbytes = self._allocations.pop(handle)
        except KeyError:
            raise AllocationError(f"unknown allocation handle {handle}") from None
        self.used_bytes -= nbytes
        self._timeline.append((time_ns, self.used_bytes))

    @property
    def free_bytes(self) -> int:
        """Capacity not currently allocated."""
        return self.size_bytes - self.used_bytes

    def allocations(self) -> List[Tuple[str, int]]:
        """Live allocations as ``(label, nbytes)`` pairs (insertion order)."""
        return list(self._allocations.values())

    def usage_by_label(self) -> Dict[str, int]:
        """Total live bytes per allocation label."""
        out: Dict[str, int] = {}
        for label, nbytes in self._allocations.values():
            out[label] = out.get(label, 0) + nbytes
        return out

    def timeline(self) -> List[Tuple[int, int]]:
        """(time_ns, used_bytes) samples -- the memory-evolution extension."""
        return list(self._timeline)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<MemoryRegion {self.name} {self.used_bytes}/{self.size_bytes} B "
            f"node={self.node}>"
        )
