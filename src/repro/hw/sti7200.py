"""The STMicroelectronics STi7200 MPSoC model.

Paper section 5: "one 450 MHz general purpose RISC ST40 CPU and four
400 MHz accelerators ST231 CPUs.  The ST40 CPU has access to the total
on-chip memory including one big external block of 2 GB SDRAM memory.
Each ST231 CPU has access to a block of local data and control memory.
The ST231 and ST40 CPUs communicate by using one shared block of memory
associated with one interruption controller."

Core 0 is the ST40; cores 1..4 are the ST231 accelerators.  NUMA domains:
node 0 = SDRAM (ST40 home), nodes 1..4 = the ST231 local memories.

Cycle-cost calibration (derivations in DESIGN.md section 4):

- ST231 ``idct_block`` ~ 913 k cycles reproduces Table 3's per-IDCT task
  time of ~95 s over 578 images (41 616 blocks per IDCT component).
- ST40 ``huffman_block`` ~ 1.3 M and ``reorder_block`` ~ 5.04 M cycles
  reproduce the merged Fetch-Reorder task time of ~1 173 s -- the paper
  blames the general-purpose ST40 "which computes slowly the Reorder
  algorithm" (~10x the IDCT tasks).
- ``memcpy_byte`` 54 cycles (ST40) vs 28 cycles (ST231) reproduces
  Figure 8's ordering: ST231 accelerators "are designed for intensive
  computing which needs fast memory access", so their ``send`` is faster
  at equal message size.  The >50 kB knee is modelled in the EMBX
  transport (bounce-buffer double copy), not here.
"""

from __future__ import annotations

import numpy as np

from repro.hw.cpu import CpuModel
from repro.hw.interconnect import NumaCostModel
from repro.hw.memory import MemoryRegion
from repro.hw.platform import Platform

ST40_FREQ_HZ = 450e6
ST231_FREQ_HZ = 400e6
SDRAM_BYTES = 2 * 1024**3
ST231_LOCAL_BYTES = 1 * 1024**2  # "1 MB for MPSoC" (paper sec. 5.4)

ST40_CYCLES = {
    "huffman_block": 1_300_000.0,
    "reorder_block": 5_040_000.0,
    "idct_block": 2_000_000.0,  # possible but never the intended mapping
    "memcpy_byte": 54.0,
    "syscall": 2_000.0,
    "sched_switch": 4_000.0,
}

ST231_CYCLES = {
    "huffman_block": 900_000.0,
    "reorder_block": 3_500_000.0,
    "idct_block": 913_000.0,
    "memcpy_byte": 28.0,
    "syscall": 1_500.0,
    "sched_switch": 3_000.0,
}

ST40_CORE = 0
ST231_CORES = (1, 2, 3, 4)


def make_sti7200() -> Platform:
    """Build the STi7200 platform model (1 x ST40 + 4 x ST231)."""
    cores = [CpuModel("st40", ST40_FREQ_HZ, ST40_CYCLES)] + [
        CpuModel(f"st231_{i}", ST231_FREQ_HZ, ST231_CYCLES) for i in range(4)
    ]
    # Node 0 is the SDRAM domain (ST40); each accelerator owns a local node.
    core_nodes = [0, 1, 2, 3, 4]
    regions = {
        "sdram": MemoryRegion("sdram", SDRAM_BYTES, node=0, kind="sdram"),
    }
    for i in range(4):
        regions[f"st231_{i}_local"] = MemoryRegion(
            f"st231_{i}_local", ST231_LOCAL_BYTES, node=i + 1, kind="sram"
        )
    # Uniform hop model: every CPU reaches the shared SDRAM block in one
    # hop through the interconnect; accelerator-to-accelerator traffic
    # bounces through SDRAM (2 hops).  Per-CPU copy speed differences are
    # carried by the memcpy_byte cycle costs above, so hop penalty is mild.
    distance = np.array(
        [
            [0, 1, 1, 1, 1],
            [1, 0, 2, 2, 2],
            [1, 2, 0, 2, 2],
            [1, 2, 2, 0, 2],
            [1, 2, 2, 2, 0],
        ]
    )
    numa = NumaCostModel(distance, hop_penalty=0.1)
    return Platform("sti7200", cores=cores, core_nodes=core_nodes, regions=regions, numa=numa)
