"""Interconnect cost helpers.

The 16-core Opteron platform in the paper has eight NUMA nodes, each with
three links to other nodes -- i.e. a degree-3 graph on 8 nodes, which is a
3-dimensional hypercube.  Remote memory traffic pays a per-hop factor on
top of the local per-byte cost.
"""

from __future__ import annotations

import numpy as np


def hypercube_distance(a: int, b: int) -> int:
    """Hop count between nodes of a hypercube = Hamming distance of ids."""
    if a < 0 or b < 0:
        raise ValueError("node ids must be non-negative")
    return int(bin(a ^ b).count("1"))


def hypercube_distance_matrix(n_nodes: int) -> np.ndarray:
    """Full hop-distance matrix for an ``n_nodes`` hypercube.

    ``n_nodes`` must be a power of two.
    """
    if n_nodes <= 0 or (n_nodes & (n_nodes - 1)) != 0:
        raise ValueError(f"hypercube needs a power-of-two node count, got {n_nodes}")
    ids = np.arange(n_nodes)
    xor = ids[:, None] ^ ids[None, :]
    # popcount via uint8 view lookup
    mat = np.zeros((n_nodes, n_nodes), dtype=np.int64)
    tmp = xor.copy()
    while tmp.any():
        mat += tmp & 1
        tmp >>= 1
    return mat


#: Base one-way message latency between two cores (ns); the HyperTransport
#: cache-coherent request/response on the modelled Opteron fabric.
DEFAULT_LINK_LATENCY_NS = 100
#: Additional latency per interconnect hop crossed (ns).
DEFAULT_HOP_LATENCY_NS = 50


class NumaCostModel:
    """Per-byte copy cost scaled by NUMA distance.

    ``cost_factor(src_node, dst_node) = 1 + hop_penalty * hops`` -- the
    standard affine NUMA model: remote accesses stretch linearly with the
    number of interconnect hops crossed.

    The model also carries the *message latency* of the fabric:
    ``latency_ns(src, dst) = link_latency_ns + hop_latency_ns * hops``.
    Because it is a guaranteed floor on delivery delay, it doubles as the
    conservative lookahead bound of the sharded simulator (each shard may
    run freely up to ``min(neighbor_clock + link_latency)``).
    """

    def __init__(
        self,
        distance_matrix: np.ndarray,
        hop_penalty: float = 0.2,
        link_latency_ns: int = DEFAULT_LINK_LATENCY_NS,
        hop_latency_ns: int = DEFAULT_HOP_LATENCY_NS,
    ) -> None:
        if link_latency_ns < 1:
            raise ValueError(f"link_latency_ns must be >= 1, got {link_latency_ns}")
        if hop_latency_ns < 0:
            raise ValueError(f"hop_latency_ns must be >= 0, got {hop_latency_ns}")
        self.link_latency_ns = int(link_latency_ns)
        self.hop_latency_ns = int(hop_latency_ns)
        d = np.asarray(distance_matrix)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ValueError("distance matrix must be square")
        if (d < 0).any():
            raise ValueError("distances must be non-negative")
        if (d != d.T).any():
            raise ValueError("distance matrix must be symmetric")
        self.distance = d
        self.hop_penalty = float(hop_penalty)

    @property
    def n_nodes(self) -> int:
        """Number of NUMA nodes covered by the matrix."""
        return self.distance.shape[0]

    def hops(self, src_node: int, dst_node: int) -> int:
        """Hop distance between two nodes."""
        return int(self.distance[src_node, dst_node])

    def cost_factor(self, src_node: int, dst_node: int) -> float:
        """Per-byte copy-cost multiplier between two nodes."""
        return 1.0 + self.hop_penalty * self.hops(src_node, dst_node)

    def latency_ns(self, src_node: int, dst_node: int) -> int:
        """Minimum one-way message latency between two nodes (ns, >= 1)."""
        return self.link_latency_ns + self.hop_latency_ns * self.hops(src_node, dst_node)
