"""The paper's 16-core NUMA SMP: eight dual-core AMD Opteron nodes.

Paper section 4: "eight dual core AMD Opteron 2.2 GHz and 2 MB of cache
memory for each processor ... organized in eight nodes ... 32 GB of main
memory (4 GB of local memory).  Each node has three connections to
communicate with other nodes" -- a degree-3 graph on 8 nodes, modelled as
a 3-cube.

Cycle-cost calibration (see DESIGN.md section 4 for derivations):

- ``huffman_block`` / ``reorder_block`` ~ 108 k cycles and ``idct_block``
  ~ 323 k cycles reproduce Table 1: each pipeline stage is busy ~7.06 ms
  per image, so the three parallel IDCT components balance Fetch and
  Reorder, and 578 images take ~4.08 s per component.
- ``memcpy_byte`` = 5.8 cycles/byte = 2.64 ns/byte reproduces Figure 4's
  near-linear send time reaching ~330 us at 125 kB.
"""

from __future__ import annotations

from repro.hw.cache import CacheConfig
from repro.hw.cpu import CpuModel
from repro.hw.interconnect import NumaCostModel, hypercube_distance_matrix
from repro.hw.memory import MemoryRegion
from repro.hw.platform import Platform

N_NODES = 8
CORES_PER_NODE = 2
FREQ_HZ = 2.2e9
NODE_MEMORY_BYTES = 4 * 1024**3  # 4 GB local memory per node

OPTERON_CYCLES = {
    "huffman_block": 108_000.0,
    "idct_block": 323_000.0,
    "reorder_block": 108_000.0,
    "memcpy_byte": 5.8,
    "syscall": 1_500.0,
    "sched_switch": 3_000.0,
}


def make_smp16(with_caches: bool = False, hop_penalty: float = 0.2) -> Platform:
    """Build the 16-core Opteron NUMA platform model."""
    cores = [
        CpuModel(f"opteron{i}", FREQ_HZ, OPTERON_CYCLES) for i in range(N_NODES * CORES_PER_NODE)
    ]
    core_nodes = [i // CORES_PER_NODE for i in range(len(cores))]
    regions = {
        f"node{n}": MemoryRegion(f"node{n}", NODE_MEMORY_BYTES, node=n, kind="dram")
        for n in range(N_NODES)
    }
    numa = NumaCostModel(hypercube_distance_matrix(N_NODES), hop_penalty=hop_penalty)
    cache_config = CacheConfig(size_bytes=2 * 1024 * 1024, line_bytes=64, ways=8) if with_caches else None
    return Platform(
        "smp16",
        cores=cores,
        core_nodes=core_nodes,
        regions=regions,
        numa=numa,
        cache_config=cache_config,
    )
