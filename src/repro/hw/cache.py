"""Set-associative cache simulator (LRU).

This backs the paper's *ongoing work* item "observing cache misses": the
simulated middleware feeds the address ranges it copies through a per-core
cache model, and the observation layer reports hit/miss counters per
component.

The simulator is exact for arbitrary address streams (``access``) and has
a fast path for the sequential ranges produced by message copies
(``access_range``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int = 2 * 1024 * 1024  # the Opterons' 2 MB L2 (paper sec. 4)
    line_bytes: int = 64
    ways: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError(
                f"size {self.size_bytes} not divisible by line*ways "
                f"({self.line_bytes}*{self.ways})"
            )

    @property
    def n_sets(self) -> int:
        """Number of cache sets implied by the geometry."""
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass
class CacheStats:
    """Aggregate access counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses (hits + misses)."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """misses / accesses (0.0 when no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Plain snapshot of the current state (for reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "miss_rate": self.miss_rate,
        }


class CacheSim:
    """LRU set-associative cache over a flat physical address space."""

    def __init__(self, config: CacheConfig = CacheConfig()) -> None:
        self.config = config
        self.stats = CacheStats()
        # One OrderedDict per set: tag -> None, most-recent last.
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(config.n_sets)]

    def _touch_line(self, line_addr: int) -> bool:
        """Access one line; returns True on hit."""
        set_idx = line_addr % self.config.n_sets
        tag = line_addr // self.config.n_sets
        ways = self._sets[set_idx]
        if tag in ways:
            ways.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.config.ways:
            ways.popitem(last=False)
            self.stats.evictions += 1
        ways[tag] = None
        return False

    def access(self, addresses: Iterable[int]) -> int:
        """Access byte addresses one by one; returns miss count delta."""
        before = self.stats.misses
        line = self.config.line_bytes
        for addr in addresses:
            if addr < 0:
                raise ValueError(f"negative address {addr}")
            self._touch_line(addr // line)
        return self.stats.misses - before

    def access_range(self, start: int, nbytes: int) -> int:
        """Sequentially access ``[start, start+nbytes)``; returns misses.

        Equivalent to ``access(range(start, start+nbytes))`` but touches
        each cache line once, matching a streaming copy.
        """
        if nbytes < 0:
            raise ValueError(f"negative range length {nbytes}")
        if nbytes == 0:
            return 0
        line = self.config.line_bytes
        first = start // line
        last = (start + nbytes - 1) // line
        before = self.stats.misses
        for line_addr in range(first, last + 1):
            self._touch_line(line_addr)
        return self.stats.misses - before

    def flush(self) -> None:
        """Invalidate all lines (stats are kept)."""
        for ways in self._sets:
            ways.clear()

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(ways) for ways in self._sets)
