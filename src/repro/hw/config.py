"""Declarative platform definitions.

The paper's third requirement (section 3) is platform independence: the
same observation model "can be used on different MPSoC hardware
platforms".  This module lets a platform be declared as plain data (and
therefore JSON), so porting EMBera to a new chip is a configuration
exercise:

>>> platform = platform_from_config({
...     "name": "biglittle",
...     "cores": [
...         {"name": "big0",    "freq_hz": 2.0e9, "cycles": {"idct_block": 200e3}, "node": 0},
...         {"name": "little0", "freq_hz": 0.8e9, "cycles": {"idct_block": 600e3}, "node": 1},
...     ],
...     "regions": [
...         {"name": "dram", "size_bytes": 1 << 30, "node": 0},
...     ],
...     "numa": {"distance": [[0, 1], [1, 0]], "hop_penalty": 0.3},
... })
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

from repro.hw.cache import CacheConfig
from repro.hw.cpu import CpuModel
from repro.hw.interconnect import NumaCostModel
from repro.hw.memory import MemoryRegion
from repro.hw.platform import Platform


class PlatformConfigError(ValueError):
    """Malformed platform configuration."""


def platform_from_config(config: Mapping[str, Any]) -> Platform:
    """Build a :class:`Platform` from a declarative description.

    Required keys: ``name``, ``cores`` (list of ``{name, freq_hz, node,
    cycles?, default_cycles?}``), ``regions`` (list of ``{name,
    size_bytes, node, kind?}``).  Optional: ``numa`` (``{distance,
    hop_penalty?}``) and ``cache`` (``{size_bytes, line_bytes, ways}``,
    applied per core).
    """
    try:
        name = config["name"]
        core_specs = config["cores"]
        region_specs = config["regions"]
    except KeyError as missing:
        raise PlatformConfigError(f"missing platform config key: {missing}") from None
    if not core_specs:
        raise PlatformConfigError("platform config declares no cores")
    if not region_specs:
        raise PlatformConfigError("platform config declares no regions")

    cores = []
    core_nodes = []
    for spec in core_specs:
        try:
            cores.append(
                CpuModel(
                    spec["name"],
                    float(spec["freq_hz"]),
                    spec.get("cycles", {}),
                    default_cycles=float(spec.get("default_cycles", 1.0)),
                )
            )
            core_nodes.append(int(spec.get("node", 0)))
        except (KeyError, ValueError) as error:
            raise PlatformConfigError(f"bad core spec {spec!r}: {error}") from error

    regions: Dict[str, MemoryRegion] = {}
    for spec in region_specs:
        try:
            region = MemoryRegion(
                spec["name"],
                int(spec["size_bytes"]),
                node=int(spec.get("node", 0)),
                kind=spec.get("kind", "dram"),
            )
        except (KeyError, Exception) as error:
            raise PlatformConfigError(f"bad region spec {spec!r}: {error}") from error
        if region.name in regions:
            raise PlatformConfigError(f"duplicate region name {region.name!r}")
        regions[region.name] = region

    numa = None
    if "numa" in config:
        numa_spec = config["numa"]
        try:
            numa = NumaCostModel(
                np.asarray(numa_spec["distance"]),
                hop_penalty=float(numa_spec.get("hop_penalty", 0.2)),
            )
        except (KeyError, ValueError) as error:
            raise PlatformConfigError(f"bad numa spec: {error}") from error
        max_node = max(core_nodes)
        if max_node >= numa.n_nodes:
            raise PlatformConfigError(
                f"core node {max_node} outside numa matrix ({numa.n_nodes} nodes)"
            )

    cache_config = None
    if "cache" in config:
        spec = config["cache"]
        try:
            cache_config = CacheConfig(
                size_bytes=int(spec["size_bytes"]),
                line_bytes=int(spec.get("line_bytes", 64)),
                ways=int(spec.get("ways", 8)),
            )
        except (KeyError, ValueError) as error:
            raise PlatformConfigError(f"bad cache spec: {error}") from error

    return Platform(
        name,
        cores=cores,
        core_nodes=core_nodes,
        regions=regions,
        numa=numa,
        cache_config=cache_config,
    )


def platform_from_json(path: Union[str, Path]) -> Platform:
    """Load a platform declared in a JSON file."""
    return platform_from_config(json.loads(Path(path).read_text(encoding="utf-8")))


def platform_to_config(platform: Platform) -> Dict[str, Any]:
    """Serialise a platform back to the declarative form.

    Cycle tables and geometry round-trip; live allocation state does not
    (configs describe hardware, not machine state).
    """
    config: Dict[str, Any] = {
        "name": platform.name,
        "cores": [
            {
                "name": core.name,
                "freq_hz": core.freq_hz,
                "cycles": dict(core.cycles_per_unit),
                "default_cycles": core.default_cycles,
                "node": node,
            }
            for core, node in zip(platform.cores, platform.core_nodes)
        ],
        "regions": [
            {"name": r.name, "size_bytes": r.size_bytes, "node": r.node, "kind": r.kind}
            for r in platform.regions.values()
        ],
    }
    if platform.numa is not None:
        config["numa"] = {
            "distance": platform.numa.distance.tolist(),
            "hop_penalty": platform.numa.hop_penalty,
        }
    if platform.caches:
        c = platform.caches[0].config
        config["cache"] = {
            "size_bytes": c.size_bytes,
            "line_bytes": c.line_bytes,
            "ways": c.ways,
        }
    return config
