"""CPU cost models.

A :class:`CpuModel` converts logical work units into nanoseconds through a
per-operation-class cycle table.  This is the single point where
heterogeneity enters the simulation: the same ``Compute("idct_block", n)``
command costs very different time on an ST231 accelerator and on the
general-purpose ST40 -- which is exactly the asymmetry behind the paper's
Table 3 and Figure 8.

The reserved opclass ``"ns"`` charges raw nanoseconds (units are already
time), used for fixed syscall/transport overheads.
"""

from __future__ import annotations

from typing import Mapping, Optional


class CpuModel:
    """Frequency plus a cycles-per-unit table for operation classes."""

    __slots__ = ("name", "freq_hz", "cycles_per_unit", "default_cycles", "_ns_per_cycle")

    def __init__(
        self,
        name: str,
        freq_hz: float,
        cycles_per_unit: Optional[Mapping[str, float]] = None,
        default_cycles: float = 1.0,
    ) -> None:
        if freq_hz <= 0:
            raise ValueError(f"frequency must be positive, got {freq_hz}")
        if default_cycles < 0:
            raise ValueError(f"default cycles must be >= 0, got {default_cycles}")
        self.name = name
        self.freq_hz = float(freq_hz)
        self.cycles_per_unit = dict(cycles_per_unit or {})
        for opclass, cycles in self.cycles_per_unit.items():
            if cycles < 0:
                raise ValueError(f"negative cycle cost for {opclass!r}: {cycles}")
        self.default_cycles = float(default_cycles)
        self._ns_per_cycle = 1e9 / self.freq_hz

    def cycles_for(self, opclass: str) -> float:
        """Cycle cost of one unit of ``opclass`` on this CPU."""
        return self.cycles_per_unit.get(opclass, self.default_cycles)

    def cost_ns(self, opclass: str, units: float) -> int:
        """Nanoseconds to execute ``units`` of ``opclass`` work."""
        if opclass == "ns":
            return round(units)
        return round(units * self.cycles_for(opclass) * self._ns_per_cycle)

    def scaled(self, name: str, factor: float) -> "CpuModel":
        """A copy whose every opclass is ``factor`` times more expensive."""
        return CpuModel(
            name,
            self.freq_hz,
            {k: v * factor for k, v in self.cycles_per_unit.items()},
            default_cycles=self.default_cycles * factor,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CpuModel {self.name} {self.freq_hz / 1e6:.0f} MHz>"
