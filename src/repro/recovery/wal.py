"""Append-only write-ahead log with checksummed, length-prefixed records.

The durable half of exactly-once delivery (see :mod:`repro.recovery.durable`)
journals every guaranteed send, every ack and every checkpoint commit into
one of these logs.  The format is deliberately primitive -- the whole
point is that a half-written tail after ``kill -9`` must be *detectable*,
never *interpretable*:

``file   = header record*``
``header = b"RWAL1\\n" (6 bytes)``
``record = u32 payload-length | u32 crc32(payload) | payload``

Payloads are pickled dicts (they carry numpy block batches, so JSON is
out).  A record is only ever trusted after its length field fits inside
the file **and** its CRC matches; the first record that fails either test
ends the readable prefix.  :func:`scan` reports that prefix, and opening
a log for append truncates the file back to it -- the torn tail a crash
left behind is discarded before any new record lands after it.

Fsync policy (the durability/throughput dial, see ``docs/robustness.md``):

``"always"``
    fsync after every append.  Nothing acknowledged is ever lost, at the
    price of one disk round-trip per guaranteed operation.
``"commit"`` (default)
    fsync only at explicit :meth:`WriteAheadLog.sync` points -- the
    recovery manager syncs on every checkpoint commit, so at most one
    inter-checkpoint window of operations can be lost to a power cut.
    A plain ``kill -9`` loses nothing either way: the OS page cache
    survives the process.
``"never"``
    leave flushing entirely to the OS (benchmarks, tests).
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any, Dict, Iterator, List, Tuple

MAGIC = b"RWAL1\n"
_HEAD = struct.Struct("<II")  # payload length, crc32

FSYNC_ALWAYS = "always"
FSYNC_COMMIT = "commit"
FSYNC_NEVER = "never"
FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_COMMIT, FSYNC_NEVER)

#: Cap on a single record (a corrupted length field must not turn into a
#: multi-gigabyte read).  Campaign records are a few kB.
MAX_RECORD_BYTES = 64 * 1024 * 1024


class WalError(Exception):
    """A malformed or unusable write-ahead log."""


def encode_record(record: Dict[str, Any]) -> bytes:
    """One framed record: header + pickled payload."""
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEAD.pack(len(payload), zlib.crc32(payload)) + payload


def scan(path: str, strict: bool = False) -> Tuple[List[Dict[str, Any]], int, str]:
    """Read the trustworthy prefix of a log.

    Returns ``(records, good_length, tail)`` where ``good_length`` is the
    byte offset of the first untrusted byte and ``tail`` describes what
    ended the scan: ``"clean"`` (end of file), ``"torn"`` (incomplete
    trailing frame -- the normal crash signature) or ``"corrupt"`` (a
    CRC or length-field mismatch: bit rot, or a crash that landed inside
    an earlier record).  With ``strict=True`` anything but ``"clean"``
    raises :class:`WalError` instead -- nothing after a bad frame is ever
    deserialized either way.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "rb") as fh:
        data = fh.read()
    if data[: len(MAGIC)] != MAGIC:
        raise WalError(f"{path}: not a write-ahead log (bad magic)")
    offset = len(MAGIC)
    tail = "clean"
    size = len(data)
    while offset < size:
        if offset + _HEAD.size > size:
            tail = "torn"
            break
        length, crc = _HEAD.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            tail = "corrupt"
            break
        end = offset + _HEAD.size + length
        if end > size:
            tail = "torn"
            break
        payload = data[offset + _HEAD.size : end]
        if zlib.crc32(payload) != crc:
            tail = "corrupt"
            break
        records.append(pickle.loads(payload))
        offset = end
    if strict and tail != "clean":
        raise WalError(
            f"{path}: {tail} record at byte {offset} "
            f"({size - offset} untrusted byte(s) follow)"
        )
    return records, offset, tail


class WriteAheadLog:
    """One append-only log segment.

    Opening an existing segment replays nothing by itself -- it scans for
    the trustworthy prefix, truncates the torn/corrupt tail away, and
    positions the write cursor there.  Use :func:`scan` (or
    :meth:`records`) to read the surviving records.
    """

    def __init__(self, path: str, fsync: str = FSYNC_COMMIT) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}")
        self.path = path
        self.fsync = fsync
        #: Records discarded by torn-tail truncation on open (0 for a
        #: fresh or cleanly closed log); surfaced by ``repro recover``.
        self.truncated_bytes = 0
        self.tail = "clean"
        if os.path.exists(path):
            _, good, tail = scan(path)
            self.tail = tail
            total = os.path.getsize(path)
            if good < total:
                self.truncated_bytes = total - good
                with open(path, "r+b") as fh:
                    fh.truncate(good)
            self._fh = open(path, "ab")
        else:
            self._fh = open(path, "ab")
            self._fh.write(MAGIC)
            self._fh.flush()
            self._dirty = True
            self._sync_now()
        self._dirty = False
        self.appended = 0

    def append(self, record: Dict[str, Any]) -> int:
        """Append one record; returns the byte offset it starts at."""
        offset = self._fh.tell()
        self._fh.write(encode_record(record))
        self.appended += 1
        self._dirty = True
        if self.fsync == FSYNC_ALWAYS:
            self._sync_now()
        return offset

    def sync(self) -> None:
        """Commit point: flush to the OS and (unless ``fsync="never"``)
        to stable storage."""
        if not self._dirty:
            return
        if self.fsync == FSYNC_NEVER:
            self._fh.flush()
            self._dirty = False
            return
        self._sync_now()

    def _sync_now(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._dirty = False

    def records(self) -> Iterator[Dict[str, Any]]:
        """The trustworthy records currently on disk (flushes first so
        the iterator sees this process's own appends)."""
        if not self._fh.closed:
            self._fh.flush()
        records, _, _ = scan(self.path)
        return iter(records)

    def size_bytes(self) -> int:
        """Current segment size including unflushed buffer."""
        if not self._fh.closed:
            self._fh.flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        """Flush, sync per policy, release the file handle."""
        if self._fh.closed:
            return
        self.sync()
        self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
