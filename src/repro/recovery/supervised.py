"""The kill-9 supervisor: SIGKILL a live component process, restore it
from disk, prove nothing was lost.

:func:`run_durable_campaign` is the process-level counterpart of
:func:`repro.faults.campaign.run_chaos_campaign`: the same seeded chaos
campaign (in-process crashes, drops, duplicates) runs in a **child OS
process** (:mod:`repro.recovery.worker`) whose recovery state lives in a
:class:`~repro.recovery.durable.DurableStore`, and this parent executes
the plan's ``kill9`` faults against the real pid -- SIGKILL, no warning,
no cleanup -- once the scheduled number of decoded frames is durable on
disk.  Each respawn cold-restores from the WAL + checkpoints.

The oracle is the same sha256 frame-set digest as ``repro faults
--recover``: after every kill and restore, the complete frame set on
disk must be bit-identical to a fault-free reference run.  The parent
computes the reference itself (simulated runtime, no shared state with
the child) and hashes the frames it reads back from disk -- nothing the
child claims is trusted.

Kill instants are scheduled in *progress* units (frames durable on
disk), not wall-clock, so every seed kills at a reproducible point in
the stream even though thread scheduling makes the exact message-level
instant nondeterministic; the digest is invariant either way.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.campaign import _run_reference, build_campaign_plan
from repro.mjpeg.components import frames_digest
from repro.mjpeg.stream import generate_stream
from repro.recovery.durable import FrameStore, atomic_write_bytes
from repro.recovery.worker import CONFIG_NAME, FRAMES_DIR, RESULT_NAME
from repro.runtime.native import SupervisedProcess

#: Extra respawns tolerated beyond the scheduled kills (a child that
#: dies on its own -- e.g. a deadline timeout racing teardown -- gets
#: another chance to finish from its durable state).
EXTRA_RESPAWNS = 3


@dataclass
class DurableCampaignResult:
    """Outcome of one supervised kill-9 campaign."""

    seed: int
    n_images: int
    durable_dir: str
    plan: List[Dict[str, Any]]
    kills: int
    kills_scheduled: int
    spawns: int
    frames_expected: int
    frames_delivered: int
    frames_digest: str
    reference_frames_digest: str
    elapsed_s: float
    worker: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Exactly-once across real process death: the complete frame
        set came back from disk, bit-identical to the reference."""
        return (
            self.frames_delivered == self.frames_expected
            and self.frames_digest == self.reference_frames_digest
        )

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly condensed result (CLI / CI output)."""
        return {
            "seed": self.seed,
            "n_images": self.n_images,
            "durable_dir": self.durable_dir,
            "kills": self.kills,
            "kills_scheduled": self.kills_scheduled,
            "spawns": self.spawns,
            "frames_expected": self.frames_expected,
            "frames_delivered": self.frames_delivered,
            "frames_digest": self.frames_digest,
            "reference_frames_digest": self.reference_frames_digest,
            "ok": self.ok,
            "elapsed_s": round(self.elapsed_s, 3),
            "worker": self.worker,
        }


def _worker_env() -> Dict[str, str]:
    """Child environment: inherit, but make sure the child resolves the
    same ``repro`` package this process imported."""
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if pkg_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = f"{pkg_root}{os.pathsep}{existing}" if existing else pkg_root
    return env


def run_durable_campaign(
    seed: int = 0,
    n_images: int = 10,
    durable_dir: Optional[str] = None,
    drop_rate: float = 0.05,
    crashes: int = 3,
    duplicate_rate: float = 0.05,
    kill9s: int = 1,
    max_attempts: int = 5,
    checkpoint_interval: int = 8,
    fsync: str = "commit",
    timeout_s: float = 600.0,
    poll_s: float = 0.005,
) -> DurableCampaignResult:
    """Run one seeded chaos campaign in a supervised child process,
    SIGKILLing it at the plan's scheduled frame counts; see module doc.
    """
    import tempfile

    if durable_dir is None:
        durable_dir = tempfile.mkdtemp(prefix=f"repro-durable-{seed}-")
    os.makedirs(durable_dir, exist_ok=True)

    stream = generate_stream(n_images, 96, 96, quality=75, seed=seed)
    reference = _run_reference(stream)
    ref_digest = frames_digest(reference)

    config = {
        "seed": seed,
        "n_images": n_images,
        "width": 96,
        "height": 96,
        "quality": 75,
        "drop_rate": drop_rate,
        "crashes": crashes,
        "duplicate_rate": duplicate_rate,
        "kill9s": kill9s,
        "max_attempts": max_attempts,
        "checkpoint_interval": checkpoint_interval,
        "fsync": fsync,
    }
    atomic_write_bytes(
        os.path.join(durable_dir, CONFIG_NAME),
        json.dumps(config, indent=2, sort_keys=True).encode(),
    )

    plan = build_campaign_plan(
        seed,
        n_images,
        drop_rate=drop_rate,
        crashes=crashes,
        duplicate_rate=duplicate_rate,
        kill9s=kill9s,
    )
    pending_kills = sorted(
        (spec.after_frames for spec in plan.process_faults()), reverse=True
    )

    frames_store = FrameStore(os.path.join(durable_dir, FRAMES_DIR))
    result_path = os.path.join(durable_dir, RESULT_NAME)
    worker = SupervisedProcess(
        [sys.executable, "-m", "repro.recovery.worker", durable_dir],
        env=_worker_env(),
        log_path=os.path.join(durable_dir, "worker.log"),
    )

    t0 = time.monotonic()
    deadline = t0 + timeout_s
    respawn_budget = len(pending_kills) + EXTRA_RESPAWNS
    while True:
        if time.monotonic() > deadline:
            worker.terminate()
            raise TimeoutError(
                f"durable campaign (seed {seed}) exceeded {timeout_s}s; "
                f"see {os.path.join(durable_dir, 'worker.log')}"
            )
        if not worker.alive:
            if os.path.exists(result_path) and worker.poll() == 0:
                break  # the stream is drained and the result is durable
            if worker.spawns > respawn_budget:
                raise RuntimeError(
                    f"durable campaign (seed {seed}) worker died "
                    f"{worker.spawns} times without completing; "
                    f"see {os.path.join(durable_dir, 'worker.log')}"
                )
            worker.spawn()
        if pending_kills and frames_store.count() >= pending_kills[-1]:
            if worker.kill9():
                pending_kills.pop()
            # else: the child finished first; the loop reaps it above.
        time.sleep(poll_s)

    delivered = frames_store.load_frames()
    with open(result_path) as fh:
        worker_result = json.load(fh)
    return DurableCampaignResult(
        seed=seed,
        n_images=n_images,
        durable_dir=durable_dir,
        plan=plan.describe(),
        kills=worker.kills,
        kills_scheduled=kill9s,
        spawns=worker.spawns,
        frames_expected=len(reference),
        frames_delivered=len(delivered),
        frames_digest=frames_digest(delivered),
        reference_frames_digest=ref_digest,
        elapsed_s=time.monotonic() - t0,
        worker=worker_result,
    )
