"""Exactly-once recovery for EMBera applications.

Three cooperating layers (see ``docs/robustness.md``):

- **Checkpointing** -- components expose :meth:`~repro.core.component.Component.snapshot`
  / :meth:`~repro.core.component.Component.restore` through the control
  interface; the :class:`RecoveryManager` commits periodic checkpoints at
  consistent boundaries and restores the latest one before a supervised
  restart.
- **Durable acked delivery** -- every data/control send is stamped with a
  contiguous per-connection delivery sequence number (``Message.dseq``)
  and buffered sender-side until the receiver folds it into a committed
  checkpoint (ack-on-checkpoint).  Receivers dedup duplicates and heal
  sequence gaps from the retransmit buffer.
- **Crash-consistent replay** -- on restart, unacknowledged messages are
  replayed to the restored component in original send order, each replica
  causally linked to the original send's span.

Together these make the fault injector's crash / drop / duplicate faults
recoverable with exactly-once end-to-end effects, on all three runtimes
and through the EMBX transport.

A fourth layer (PR 7) makes the first three survive real process death:
:class:`~repro.recovery.durable.DurableStore` mirrors the protocol into
an append-only :class:`~repro.recovery.wal.WriteAheadLog` plus on-disk
checkpoint spills, and ``RecoveryManager(durable=...)`` cold-restores
the consistent cut in a fresh process -- the basis of the supervised
``kill -9`` campaign in :mod:`repro.recovery.supervised`.
"""

from repro.recovery.durable import DurableError, DurableStore, FrameStore
from repro.recovery.manager import RecoveryManager
from repro.recovery.wal import WalError, WriteAheadLog

__all__ = [
    "DurableError",
    "DurableStore",
    "FrameStore",
    "RecoveryManager",
    "WalError",
    "WriteAheadLog",
]
