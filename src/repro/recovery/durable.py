"""Crash-surviving persistence for exactly-once recovery.

:class:`DurableStore` is the disk half of
:class:`~repro.recovery.manager.RecoveryManager`: an append-only
:class:`~repro.recovery.wal.WriteAheadLog` journaling delivery state
(sends with their retransmit payloads, acks) plus periodic checkpoint
spills of component snapshots, bound together by a manifest so a restore
is always from one consistent cut.

Crash consistency rules (the order is the protocol):

1. A checkpoint spill is written to a temp file and published with
   ``os.replace`` -- readers only ever see a complete checkpoint.
2. The WAL is synced *before* the manifest commits a new epoch: a
   sender's committed send-counter never gets ahead of the durable send
   records backing it (otherwise a message could be neither replayable
   nor re-sendable after a power cut).
3. The manifest itself is temp-file + ``os.replace``; it is the single
   commit point.  A crash between checkpoint spill and manifest commit
   leaves an orphaned checkpoint file that the next commit garbage
   collects -- the previous cut stays intact.
4. Acks are journaled *after* the manifest commit.  An ack that never
   made it to disk merely causes a redundant replay, which receiver-side
   dedup discards; an ack that hit disk before its checkpoint committed
   would lose a message, so that order is never used.

``kill -9`` (the fault class under test) never loses the OS page cache,
so every append is recoverable regardless of fsync policy; the policy
(see :mod:`repro.recovery.wal`) only dials how much a *power cut* can
take with it.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.messages import Message
from repro.recovery.wal import FSYNC_COMMIT, WalError, WriteAheadLog, scan

MANIFEST_NAME = "MANIFEST.json"
_CKPT_DIR = "ckpt"
_WAL_NAME = "wal-000001.log"

#: Message fields journaled for retransmission (everything but the
#: runtime-assigned causal identity, which replays re-draw).
_MSG_FIELDS = (
    "payload", "kind", "tag", "src", "src_interface",
    "seq", "size_bytes", "span", "cause", "dseq",
)


class DurableError(Exception):
    """An unusable or inconsistent durable store."""


def atomic_write_bytes(path: str, data: bytes, dir_sync: bool = True) -> None:
    """Publish ``data`` at ``path`` all-or-nothing: write a sibling temp
    file, fsync it, ``os.replace`` into place, fsync the directory."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    if dir_sync:
        _fsync_dir(os.path.dirname(path) or ".")


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def config_digest(config: Optional[Dict[str, Any]]) -> str:
    """Canonical digest of the run configuration the store belongs to.

    A restore against a different configuration (other seed, other
    stream length) would replay messages into the wrong application --
    the manifest binds the digest so the mismatch is an error, not a
    silent wrong answer.
    """
    canonical = json.dumps(config or {}, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def canonical_json_bytes(payload: Any) -> bytes:
    """The canonical byte form of a JSON value (sorted keys, no
    whitespace) -- the input of every digest that must be stable across
    processes and resumes."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def write_checksummed_json(path: str, body: Any, dir_sync: bool = True) -> str:
    """Atomically publish ``body`` as a self-verifying JSON document.

    The file wraps the body with the sha256 of its canonical form, so a
    reader can tell a torn or corrupted write from a valid one without
    any out-of-band state.  Fleet campaigns use this for the campaign
    manifest, reference-cache entries and per-cell results -- the files
    an orchestrator ``kill -9`` may leave half-written.  Returns the
    body checksum.
    """
    checksum = hashlib.sha256(canonical_json_bytes(body)).hexdigest()
    document = {"body": body, "sha256": checksum}
    atomic_write_bytes(
        path,
        json.dumps(document, sort_keys=True, indent=2).encode() + b"\n",
        dir_sync=dir_sync,
    )
    return checksum


def read_checksummed_json(path: str) -> Any:
    """Read a document written by :func:`write_checksummed_json`,
    verifying its checksum; raises :class:`DurableError` when the file is
    torn, corrupt, or not in the checksummed format."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except (OSError, ValueError) as exc:
        raise DurableError(f"{path}: unreadable checksummed document: {exc}") from exc
    if not isinstance(document, dict) or "body" not in document or "sha256" not in document:
        raise DurableError(f"{path}: not a checksummed JSON document")
    body = document["body"]
    expected = document["sha256"]
    actual = hashlib.sha256(canonical_json_bytes(body)).hexdigest()
    if actual != expected:
        raise DurableError(
            f"{path}: checksum mismatch (stored {expected[:12]}..., "
            f"computed {actual[:12]}...); torn or corrupted write"
        )
    return body


def message_to_record(message: Message) -> Dict[str, Any]:
    """The journaled form of a retransmit copy."""
    return {name: getattr(message, name) for name in _MSG_FIELDS}


def message_from_record(fields: Dict[str, Any]) -> Message:
    """Rebuild a retransmittable message from its journaled form."""
    return Message(**fields)


@dataclass
class RestoredState:
    """Everything :meth:`DurableStore.restore_state` recovers from disk."""

    #: Committed checkpoint per component: ``{"epoch","state","send","rx"}``.
    checkpoints: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Unacked retransmit buffers:
    #: ``(src, iface) -> {dseq: (uid, message, (target component, provided))}``.
    unacked: Dict[Tuple[str, str], Dict[int, tuple]] = field(default_factory=dict)
    #: First send-order uid a resumed run may allocate.
    next_uid: int = 1
    #: WAL records surviving on disk (sends + acks + ckpt markers).
    wal_records: int = 0
    #: Bytes the torn-tail truncation discarded on open.
    truncated_bytes: int = 0


class CheckpointStore:
    """Component snapshots on disk, one file per committed epoch."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path_of(self, name: str, epoch: int) -> str:
        return os.path.join(self.root, f"{name}.{epoch:08d}.ckpt")

    def save(self, name: str, ckpt: Dict[str, Any]) -> str:
        """Spill one checkpoint dict; returns its (relative) filename."""
        path = self.path_of(name, ckpt["epoch"])
        atomic_write_bytes(path, pickle.dumps(ckpt, protocol=pickle.HIGHEST_PROTOCOL))
        return os.path.basename(path)

    def load(self, filename: str) -> Dict[str, Any]:
        """Read one committed checkpoint back."""
        with open(os.path.join(self.root, filename), "rb") as fh:
            return pickle.load(fh)

    def gc(self, committed: Dict[str, str]) -> int:
        """Delete spills the manifest no longer points at (older epochs,
        orphans from a crash between spill and commit)."""
        keep = set(committed.values())
        removed = 0
        for entry in os.listdir(self.root):
            if entry.endswith(".ckpt") and entry not in keep:
                os.unlink(os.path.join(self.root, entry))
                removed += 1
        return removed


class DurableStore:
    """One directory holding WAL + checkpoints + manifest for one run."""

    def __init__(
        self,
        root: str,
        config: Optional[Dict[str, Any]] = None,
        fsync: str = FSYNC_COMMIT,
    ) -> None:
        self.root = root
        self.config = dict(config or {})
        self.config_digest = config_digest(config)
        self.fsync = fsync
        self.wal: Optional[WriteAheadLog] = None
        self.ckpts = CheckpointStore(os.path.join(root, _CKPT_DIR))
        self.manifest: Dict[str, Any] = {}
        self.opened = False

    # -- lifecycle ------------------------------------------------------------

    def open(self) -> "DurableStore":
        """Create or reopen the store (idempotent).  Reopening truncates
        the WAL's torn tail and validates the config binding."""
        if self.opened:
            return self
        os.makedirs(self.root, exist_ok=True)
        manifest_path = os.path.join(self.root, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            with open(manifest_path) as fh:
                self.manifest = json.load(fh)
            if self.config and self.manifest["config_digest"] != self.config_digest:
                raise DurableError(
                    f"{self.root}: durable state belongs to a different run "
                    f"(config digest {self.manifest['config_digest'][:12]} != "
                    f"{self.config_digest[:12]})"
                )
        else:
            self.manifest = {
                "format": 1,
                "config_digest": self.config_digest,
                "config": self.config,
                "wal": _WAL_NAME,
                "epochs": {},
                "ckpts": {},
                "commits": 0,
            }
            self._write_manifest()
        self.wal = WriteAheadLog(
            os.path.join(self.root, self.manifest["wal"]), fsync=self.fsync
        )
        self.opened = True
        return self

    def close(self) -> None:
        """Flush and release the WAL handle."""
        if self.wal is not None:
            self.wal.close()
        self.opened = False

    def has_state(self) -> bool:
        """True when a previous process committed at least one epoch
        here -- the signal to cold-restore instead of starting fresh."""
        manifest_path = os.path.join(self.root, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            return False
        with open(manifest_path) as fh:
            return bool(json.load(fh)["epochs"])

    def _write_manifest(self) -> None:
        atomic_write_bytes(
            os.path.join(self.root, MANIFEST_NAME),
            json.dumps(self.manifest, indent=2, sort_keys=True).encode(),
        )

    # -- journal (RecoveryManager write path) ---------------------------------

    def log_send(
        self,
        key: Tuple[str, str],
        dseq: int,
        uid: int,
        message: Message,
        target: Tuple[str, str],
    ) -> None:
        """Journal one guaranteed send with its retransmit payload."""
        self.wal.append(
            {
                "t": "send",
                "key": key,
                "dseq": dseq,
                "uid": uid,
                "target": target,
                "msg": message_to_record(message),
            }
        )

    def commit_checkpoint(
        self, name: str, ckpt: Dict[str, Any], acked: List[Tuple[Tuple[str, str], int]]
    ) -> None:
        """One crash-consistent checkpoint commit (see the module doc for
        the ordering argument): marker -> WAL sync -> spill -> manifest
        -> acks."""
        self.wal.append({"t": "ckpt", "component": name, "epoch": ckpt["epoch"]})
        self.wal.sync()
        filename = self.ckpts.save(name, ckpt)
        self.manifest["epochs"][name] = ckpt["epoch"]
        self.manifest["ckpts"][name] = filename
        self.manifest["commits"] += 1
        self._write_manifest()
        self.ckpts.gc(self.manifest["ckpts"])
        if acked:
            self.wal.append({"t": "acks", "msgs": acked})

    # -- restore (fresh-process read path) ------------------------------------

    def restore_state(self) -> RestoredState:
        """Rebuild the consistent cut a dead process left behind."""
        if not self.opened:
            self.open()
        out = RestoredState(truncated_bytes=self.wal.truncated_bytes)
        for name, filename in self.manifest["ckpts"].items():
            ckpt = self.ckpts.load(filename)
            if ckpt["epoch"] != self.manifest["epochs"][name]:
                raise DurableError(
                    f"{self.root}: checkpoint file {filename} carries epoch "
                    f"{ckpt['epoch']}, manifest committed {self.manifest['epochs'][name]}"
                )
            out.checkpoints[name] = ckpt
        max_uid = 0
        for record in self.wal.records():
            out.wal_records += 1
            kind = record["t"]
            if kind == "send":
                key = tuple(record["key"])
                out.unacked.setdefault(key, {})[record["dseq"]] = (
                    record["uid"],
                    message_from_record(record["msg"]),
                    tuple(record["target"]),
                )
                if record["uid"] > max_uid:
                    max_uid = record["uid"]
            elif kind == "acks":
                for key, dseq in record["msgs"]:
                    slot = out.unacked.get(tuple(key))
                    if slot is not None:
                        slot.pop(dseq, None)
        out.next_uid = max_uid + 1
        return out

    # -- inspection (repro recover CLI) ---------------------------------------

    def verify(self) -> Dict[str, Any]:
        """Check the whole binding: manifest, checkpoint files, WAL scan.

        Returns a JSON-friendly report; raises :class:`DurableError` /
        :class:`~repro.recovery.wal.WalError` on inconsistency (a torn
        WAL tail is reported, not raised -- truncation is the designed
        crash signature)."""
        manifest_path = os.path.join(self.root, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise DurableError(f"{self.root}: no {MANIFEST_NAME}")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        wal_path = os.path.join(self.root, manifest["wal"])
        if not os.path.exists(wal_path):
            raise DurableError(f"{self.root}: manifest names missing WAL {manifest['wal']}")
        records, good, tail = scan(wal_path)
        if tail == "corrupt":
            raise WalError(f"{wal_path}: corrupt record at byte {good}")
        counts: Dict[str, int] = {}
        for record in records:
            counts[record["t"]] = counts.get(record["t"], 0) + 1
        ckpt_bytes = 0
        for name, filename in manifest["ckpts"].items():
            ckpt = self.ckpts.load(filename)  # unpickles or raises
            if ckpt["epoch"] != manifest["epochs"][name]:
                raise DurableError(
                    f"{self.root}: {filename} epoch {ckpt['epoch']} != "
                    f"manifest {manifest['epochs'][name]}"
                )
            ckpt_bytes += os.path.getsize(os.path.join(self.ckpts.root, filename))
        return {
            "root": self.root,
            "config_digest": manifest["config_digest"],
            "commits": manifest["commits"],
            "epochs": dict(manifest["epochs"]),
            "wal": {
                "segment": manifest["wal"],
                "bytes": os.path.getsize(wal_path),
                "good_bytes": good,
                "tail": tail,
                "records": counts,
            },
            "checkpoint_bytes": ckpt_bytes,
            "ok": True,
        }


class FrameStore:
    """Decoded frames as atomic per-index files -- the externalized,
    idempotent output of the durable campaign worker.

    A frame re-completed after a restore overwrites its index with
    byte-identical pixels (``os.replace``, so a SIGKILL mid-write can
    never publish half a frame), which is exactly the at-least-once +
    idempotence contract deposits already have in-process.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path_of(self, index: int) -> str:
        return os.path.join(self.root, f"frame-{index:06d}.npy")

    def save(self, index: int, image) -> None:
        """Publish one decoded frame atomically."""
        import numpy as np

        buf = io.BytesIO()
        np.save(buf, image)
        atomic_write_bytes(self.path_of(index), buf.getvalue(), dir_sync=False)

    def count(self) -> int:
        """Frames currently on disk (the supervisor's progress signal)."""
        try:
            return sum(1 for e in os.listdir(self.root) if e.endswith(".npy"))
        except FileNotFoundError:
            return 0

    def load_frames(self) -> Dict[int, Any]:
        """All frames by index (the digest oracle's input)."""
        import numpy as np

        frames: Dict[int, Any] = {}
        for entry in sorted(os.listdir(self.root)):
            if not entry.endswith(".npy"):
                continue
            index = int(entry[len("frame-"):-len(".npy")])
            frames[index] = np.load(os.path.join(self.root, entry))
        return frames
