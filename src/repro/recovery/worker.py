"""Durable-campaign worker: the component-hosting OS process.

``python -m repro.recovery.worker <dir>`` runs one incarnation of the
MJPEG SMP assembly on the native runtime (real threads -- the paper's
"an EMBera application is a Linux user process"), with:

- the seed-derived in-process fault plan (crashes / drops / duplicates;
  any process-level ``kill9`` specs are stripped -- the supervising
  parent executes those against *this* process),
- a :class:`~repro.recovery.RecoveryManager` layered over the
  :class:`~repro.recovery.durable.DurableStore` in ``<dir>``,
- completed frames externalized through a
  :class:`~repro.recovery.durable.FrameStore` (``<dir>/frames``), which
  doubles as the parent's progress signal and the digest oracle's input.

The process expects to be SIGKILLed at any instant.  On (re)spawn it
reads ``<dir>/CONFIG.json``, rebuilds the identical application, and
``RecoveryManager.install`` cold-restores whatever consistent cut the
previous incarnation committed.  A run that drains the stream writes
``<dir>/RESULT.json`` (atomically) -- its existence is the completion
signal; everything else about this process is disposable.
"""

from __future__ import annotations

import json
import os
import sys

CONFIG_NAME = "CONFIG.json"
RESULT_NAME = "RESULT.json"
FRAMES_DIR = "frames"


def run_worker(root: str) -> dict:
    """One incarnation of the durable campaign in directory ``root``."""
    from repro.faults.campaign import build_campaign_plan
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import split_process_faults
    from repro.faults.supervisor import RestartPolicy, Supervisor
    from repro.mjpeg.components import build_smp_assembly
    from repro.mjpeg.stream import generate_stream
    from repro.recovery.durable import DurableStore, FrameStore, atomic_write_bytes
    from repro.recovery.manager import RecoveryManager
    from repro.runtime.native import NativeRuntime

    with open(os.path.join(root, CONFIG_NAME)) as fh:
        config = json.load(fh)

    stream = generate_stream(
        config["n_images"],
        config["height"],
        config["width"],
        quality=config["quality"],
        seed=config["seed"],
    )
    frames = FrameStore(os.path.join(root, FRAMES_DIR))
    app = build_smp_assembly(
        stream,
        use_stored_coefficients=True,
        keep_frames=False,
        with_observer=False,
        drop_incomplete=False,
        frame_sink=frames.save,
    )
    runtime = NativeRuntime(receive_timeout_s=config.get("receive_timeout_s", 30.0))
    runtime.deploy(app)

    plan = build_campaign_plan(
        config["seed"],
        config["n_images"],
        drop_rate=config.get("drop_rate", 0.05),
        crashes=config.get("crashes", 3),
        duplicate_rate=config.get("duplicate_rate", 0.05),
        kill9s=config.get("kill9s", 0),
    )
    inproc, _process_specs = split_process_faults(plan)
    injector = FaultInjector(inproc).install(runtime)
    store = DurableStore(root, config=config, fsync=config.get("fsync", "commit"))
    recovery = RecoveryManager(
        checkpoint_interval=config.get("checkpoint_interval", 8), durable=store
    ).install(runtime)
    supervisor = Supervisor(
        policy=RestartPolicy(
            max_attempts=config.get("max_attempts", 5), base_backoff_ns=200_000
        ),
        seed=config["seed"],
    ).install(runtime)

    runtime.start()
    runtime.wait()
    runtime.stop()

    result = {
        "pid": os.getpid(),
        "frames_on_disk": frames.count(),
        "injected": injector.counts(),
        "supervised_restarts": len(supervisor.events),
        "recovery": recovery.report(),
    }
    recovery.close()
    atomic_write_bytes(
        os.path.join(root, RESULT_NAME),
        json.dumps(result, indent=2, sort_keys=True).encode(),
    )
    return result


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.recovery.worker <durable-dir>", file=sys.stderr)
        return 2
    run_worker(argv[0])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
