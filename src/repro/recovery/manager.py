"""The recovery manager: checkpoints, durable delivery, replay.

Interposition follows the pattern set by observation and fault injection:
the manager installs itself as the ``recovery`` hook of every deployed
behaviour context, so exactly-once semantics -- like observation and like
faults -- require **no change to behaviour code**.

Protocol
--------
Sends on a connection ``(component, required_interface)`` are stamped with
a contiguous delivery sequence number (``Message.dseq``, starting at 1)
and a copy is buffered sender-side.  A receiver tracks, per inbound
stream ``(src, src_interface)``, the next expected sequence:

- ``dseq`` already delivered -> the message is a duplicate (an injected
  DUPLICATE fault, or a post-restart re-send): discarded, counted.
- ``dseq`` beyond the expected one -> the gap messages were lost in
  transport (DROP faults): replicas are served from the sender-side
  buffer and front-requeued ahead of the out-of-order message, so the
  behaviour still observes the original order.
- ``dseq`` as expected -> delivered.

Acknowledgement is *checkpoint-commit*: a buffered message is released
only when its receiver commits a checkpoint taken after the delivery.
A component whose :meth:`~repro.core.component.Component.snapshot` never
returns a state therefore never acks -- after a crash it falls back to a
full replay from epoch 0, which downstream dedup still renders
exactly-once end-to-end.

Consistent boundaries: checkpoints are attempted on the receive boundary
(``before_receive``) and on the send boundary *before* the outgoing
message is stamped (``on_send``), both points where a well-behaved
component's snapshot covers every message it has consumed and none it is
mid-way through producing.  The component itself guards finer-grained
consistency by returning ``None`` from ``snapshot()`` mid-transaction.

Deposits are excluded: a deposit targets the component's own provided
interface (the display mailbox), and re-execution after restore may
re-deposit an identical item -- at-least-once, deduplicated downstream by
frame index.  The delivery-guarantee table in ``docs/robustness.md``
spells this out.

Durability
----------
All of the above lives in process memory and therefore dies with the
process.  Pass ``durable=DurableStore(dir)`` and the manager mirrors the
protocol to disk (see :mod:`repro.recovery.durable`): every guaranteed
send is journaled with its retransmit payload, every checkpoint commit
spills the snapshot and journals the acks, and :meth:`install` in a
fresh process **cold-restores** the whole consistent cut -- committed
component states, rolled-back dseq/rx counters, and the unacked
retransmit buffers replayed into the (empty) mailboxes.  In-process
supervised restarts (:meth:`on_restart`) keep using the in-memory
tables; the disk is only read when the memory is gone.
"""

from __future__ import annotations

import threading
import time
from copy import deepcopy
from dataclasses import replace
from itertools import count
from typing import Any, Dict, List, Optional, Tuple

from repro.core.messages import OBSERVATION, payload_nbytes

#: Connection key: (sender component, required interface name).
ConnKey = Tuple[str, str]


class RecoveryManager:
    """Exactly-once delivery and checkpoint/restore for one runtime."""

    def __init__(self, checkpoint_interval: int = 8, durable=None) -> None:
        if checkpoint_interval < 1:
            raise ValueError(f"checkpoint_interval must be >= 1, got {checkpoint_interval}")
        #: Optional :class:`repro.recovery.durable.DurableStore` mirroring
        #: the delivery protocol to disk.
        self.durable = durable
        self.cold_restored = False
        #: Attempt a checkpoint every N guaranteed operations (sends +
        #: deliveries) per component.  Attempts are cheap when the
        #: component declines (snapshot() -> None).
        self.checkpoint_interval = checkpoint_interval
        self.runtime = None
        self.installed = False
        self._conts: Dict[str, Any] = {}
        #: Next delivery sequence per connection.
        self._send_dseq: Dict[ConnKey, int] = {}
        #: Per-component index into ``_send_dseq`` keys, so a checkpoint
        #: snapshots only the component's own connections instead of
        #: filtering every connection in the runtime.
        self._send_keys: Dict[str, List[ConnKey]] = {}
        #: Sender-side retransmit buffers:
        #: ``(src, iface) -> {dseq: (uid, message copy, target provided)}``.
        self._unacked: Dict[ConnKey, Dict[int, tuple]] = {}
        #: Global send-order counter, so restart replay can reconstruct
        #: the original interleaving across connections.
        self._uid = count(1)
        #: Receiver-side stream state:
        #: ``component -> {(src, src_iface): {"next": int, "seen": set}}``.
        self._rx: Dict[str, Dict[ConnKey, Dict[str, Any]]] = {}
        #: Messages delivered since the component's last committed
        #: checkpoint -- acked (removed from retransmit buffers) when the
        #: next checkpoint commits.
        self._delivered: Dict[str, List[Any]] = {}
        #: Latest committed checkpoint per component.
        self._ckpt: Dict[str, Dict[str, Any]] = {}
        self._epoch: Dict[str, int] = {}
        self._ops: Dict[str, int] = {}
        # Totals (also mirrored per component on the observation probes).
        self.checkpoints = 0
        self.checkpoint_bytes = 0
        self.replayed = 0
        self.deduped = 0
        self.restores = 0
        # The simulated runtimes are single-flow; the native runtime runs
        # one thread per component against the same shared tables.
        self._lock = threading.RLock()

    # -- installation ---------------------------------------------------------

    def install(self, runtime) -> "RecoveryManager":
        """Hook every deployed behaviour context (call after ``deploy()``,
        in any order relative to tracing and fault injection, but before
        ``start()``)."""
        if self.installed:
            raise RuntimeError("recovery manager already installed")
        if runtime.recovery is not None and runtime.recovery is not self:
            raise RuntimeError("runtime already has a recovery manager")
        runtime.recovery = self
        self.runtime = runtime
        for cont in runtime.containers.values():
            if cont.context is None:
                raise RuntimeError("install recovery after deploy()")
            base = cont.context
            while hasattr(base, "_delegate"):  # unwrap TracingContext et al.
                base = base._delegate
            base.recovery = self
            self._conts[cont.component.name] = cont
        if self.durable is not None and self.durable.has_state():
            # A previous process committed state into this directory --
            # this install is a cold restore, not a fresh start.
            self._cold_restore()
        else:
            if self.durable is not None:
                self.durable.open()
            # Epoch-0 checkpoints: the pristine state is the restore target
            # for components that crash before their first periodic
            # checkpoint.
            for name in self._conts:
                self._take_checkpoint(name)
        self.installed = True
        return self

    def _cold_restore(self) -> None:
        """Rebuild the consistent cut a dead process left on disk: restore
        committed component states, roll dseq/rx to the committed instant,
        refill the retransmit buffers from the WAL, and replay every
        unacked message into the (empty) mailboxes in original send order.

        Messages sent after their sender's committed checkpoint appear
        both here (journaled) and again live (the rolled-back sender
        re-emits them under the same dseq); receiver-side dedup renders
        the pair exactly-once, same as any duplicate.
        """
        restored = self.durable.open().restore_state()
        for name, ckpt in restored.checkpoints.items():
            cont = self._conts.get(name)
            if cont is None:
                continue  # directory holds state for a larger app graph
            cont.component.restore(deepcopy(ckpt["state"]))
            self._ckpt[name] = ckpt
            self._epoch[name] = ckpt["epoch"]
            self._ops[name] = 0
            keys = list(ckpt["send"])
            if keys:
                self._send_keys[name] = keys
            for key, dseq in ckpt["send"].items():
                self._send_dseq[key] = dseq
            self._rx[name] = {
                k: {"next": v["next"], "seen": set(v["seen"])}
                for k, v in ckpt["rx"].items()
            }
        entries = []
        for key, slot in restored.unacked.items():
            buffered = self._unacked.setdefault(key, {})
            for dseq, (uid, message, (comp_name, prov_name)) in slot.items():
                cont = self._conts.get(comp_name)
                if cont is None:
                    continue
                target = cont.component.get_provided(prov_name)
                buffered[dseq] = (uid, message, target)
                entries.append((uid, comp_name, target, message))
        self._uid = count(restored.next_uid)
        # Mailboxes are empty in a fresh runtime, so reversed front-insert
        # (the same move on_restart uses) reproduces original send order.
        entries.sort(key=lambda e: e[0])
        for _uid, comp_name, target, message in reversed(entries):
            self._replay_one(comp_name, target, message)
        self.restores += 1
        self.cold_restored = True

    def _tracer(self, name: str):
        cont = self._conts.get(name)
        return cont.extra.get("tracer") if cont is not None else None

    # -- checkpointing --------------------------------------------------------

    def _take_checkpoint(self, name: str) -> bool:
        """Attempt a checkpoint; commits (and acks) only when the
        component offers a consistent snapshot."""
        cont = self._conts[name]
        comp = cont.component
        t0 = time.perf_counter_ns()
        state = comp.snapshot()
        if state is None:
            return False
        ckpt = {
            "epoch": self._epoch.get(name, -1) + 1,
            "state": deepcopy(state),
            "send": {k: self._send_dseq[k] for k in self._send_keys.get(name, ())},
            "rx": {
                k: {"next": v["next"], "seen": set(v["seen"])}
                for k, v in self._rx.get(name, {}).items()
            },
        }
        duration_ns = time.perf_counter_ns() - t0
        self._ckpt[name] = ckpt
        self._epoch[name] = ckpt["epoch"]
        self._ops[name] = 0
        # Ack-on-checkpoint: everything delivered up to here is folded
        # into the committed state, so the senders may forget it.
        acked = []
        for msg in self._delivered.pop(name, []):
            key = (msg.src, msg.src_interface)
            slot = self._unacked.get(key)
            if slot is not None and slot.pop(msg.dseq, None) is not None:
                acked.append((key, msg.dseq))
        if self.durable is not None:
            # The disk commit carries the acks with it (journaled after
            # the manifest flips -- see repro.recovery.durable).
            self.durable.commit_checkpoint(name, ckpt, acked)
        nbytes = payload_nbytes(ckpt["state"])
        self.checkpoints += 1
        self.checkpoint_bytes += nbytes
        if cont.probe is not None:
            cont.probe.record_checkpoint(nbytes, duration_ns)
        tracer = self._tracer(name)
        if tracer is not None:
            tracer.emit(
                "recovery", "checkpoint",
                epoch=ckpt["epoch"], bytes=nbytes, dur_ns=duration_ns,
            )
        return True

    # -- context hooks (called from ComponentContext) -------------------------

    def on_send(self, ctx, required_name: str, target, message) -> None:
        """Stamp the delivery sequence and buffer a retransmit copy."""
        if message.kind == OBSERVATION or target.is_observation:
            return  # observation traffic rides outside the guarantees
        name = ctx.component.name
        with self._lock:
            if self._ops.get(name, 0) >= self.checkpoint_interval:
                # Send boundary, *before* this message is stamped: on
                # restore the sender re-emits it under the same dseq.
                self._take_checkpoint(name)
            key = (name, required_name)
            dseq = self._send_dseq.get(key, 0) + 1
            if dseq == 1:
                self._send_keys.setdefault(name, []).append(key)
            self._send_dseq[key] = dseq
            message.dseq = dseq
            # The copy shares the payload reference deliberately: CORRUPT
            # faults reassign ``message.payload`` on the original object,
            # so the buffered copy keeps the pristine payload for replay.
            uid = next(self._uid)
            copy = replace(message)
            self._unacked.setdefault(key, {})[dseq] = (uid, copy, target)
            if self.durable is not None:
                self.durable.log_send(
                    key, dseq, uid, copy,
                    (target.component.name, target.name),
                )
            self._ops[name] = self._ops.get(name, 0) + 1

    def before_receive(self, ctx) -> None:
        """Checkpoint opportunity at the receive boundary."""
        name = ctx.component.name
        if self._ops.get(name, 0) >= self.checkpoint_interval:
            with self._lock:
                self._take_checkpoint(name)

    def on_message(self, ctx, provided_name: str, message) -> bool:
        """Admission control for one popped message: ``True`` delivers it,
        ``False`` tells the context to pop again (duplicate discarded, or
        a gap healed by front-requeued replicas)."""
        if message.dseq == 0:
            return True  # not under delivery guarantees
        name = ctx.component.name
        with self._lock:
            streams = self._rx.setdefault(name, {})
            key = (message.src, message.src_interface)
            stream = streams.get(key)
            if stream is None:
                stream = streams[key] = {"next": 1, "seen": set()}
            d = message.dseq
            if d < stream["next"] or d in stream["seen"]:
                self.deduped += 1
                cont = self._conts.get(name)
                if cont is not None and cont.probe is not None:
                    cont.probe.record_dedup(now_ns=ctx.now_ns())
                tracer = self._tracer(name)
                if tracer is not None:
                    tracer.emit(
                        "recovery", "dedup",
                        span=message.span, dseq=d, src=message.src,
                    )
                return False
            if d > stream["next"]:
                self._heal_gap(ctx, provided_name, stream, key, message)
                return False
            return True

    def _heal_gap(self, ctx, provided_name: str, stream, key: ConnKey, message) -> None:
        """Messages ``next..dseq-1`` were lost in transport: requeue the
        out-of-order message, then replicas of the missing ones in front
        of it, restoring original delivery order."""
        prov = ctx.component.get_provided(provided_name)
        runtime = self.runtime
        runtime._requeue(prov, message)
        slot = self._unacked.get(key, {})
        floor = message.dseq
        for missing in range(message.dseq - 1, stream["next"] - 1, -1):
            entry = slot.get(missing)
            if entry is None:
                # Acked means delivered means the stream already advanced
                # past it -- unreachable in a consistent run; skip rather
                # than wedge the receiver.
                continue
            _, copy, _target = entry
            self._replay_one(ctx.component.name, prov, copy, now_ns=ctx.now_ns())
            floor = missing
        # Whatever could not be healed is abandoned: accept delivery from
        # the lowest replayable sequence so the redo loop terminates.
        stream["next"] = floor

    def _replay_one(self, receiver: str, prov, copy, now_ns=None) -> None:
        """Front-requeue one replica of a buffered message.  The replica
        keeps the original ``dseq`` (dedup identity) but draws a fresh
        span whose cause is the original send's span -- the causal link
        the trace analysis surfaces as a replay edge.  ``now_ns`` (when
        the caller has a context clock) places the replay sample in the
        right telemetry window."""
        runtime = self.runtime
        replica = replace(copy, span=next(runtime.span_source), cause=copy.span)
        runtime._requeue(prov, replica)
        self.replayed += 1
        cont = self._conts.get(receiver)
        if cont is not None and cont.probe is not None:
            cont.probe.record_replay(now_ns=now_ns)
        tracer = self._tracer(receiver)
        if tracer is not None:
            tracer.emit(
                "recovery", "replay",
                span=replica.span, orig=copy.span, dseq=copy.dseq, src=copy.src,
            )

    def on_delivered(self, ctx, message) -> None:
        """A message passed admission and reached the behaviour: advance
        the stream, remember it for the next checkpoint's ack."""
        name = ctx.component.name
        with self._lock:
            self._ops[name] = self._ops.get(name, 0) + 1
            if message.dseq == 0:
                return
            key = (message.src, message.src_interface)
            stream = self._rx.setdefault(name, {}).setdefault(
                key, {"next": 1, "seen": set()}
            )
            stream["seen"].add(message.dseq)
            while stream["next"] in stream["seen"]:
                stream["seen"].discard(stream["next"])
                stream["next"] += 1
            self._delivered.setdefault(name, []).append(message)

    # -- restart path (called from the supervisor flow) -----------------------

    def on_restart(self, cont) -> None:
        """Restore the latest checkpoint and replay unacked messages --
        runs in the supervisor flow after backoff, before the fresh
        behaviour generator spawns (the consumer is not blocked on its
        mailbox, so front-requeues are safe)."""
        comp = cont.component
        name = comp.name
        with self._lock:
            ckpt = self._ckpt.get(name)
            if ckpt is not None:
                comp.restore(deepcopy(ckpt["state"]))
                # Roll both directions of the delivery state back to the
                # committed instant: re-sends reuse the same dseq (deduped
                # downstream), replays of already-seen messages pass
                # admission again.
                for key in self._send_keys.get(name, ()):
                    self._send_dseq[key] = ckpt["send"].get(key, 0)
                self._rx[name] = {
                    k: {"next": v["next"], "seen": set(v["seen"])}
                    for k, v in ckpt["rx"].items()
                }
            else:
                # Never checkpointed: fall back to a fresh behaviour plus
                # full replay from epoch 0 (nothing was ever acked).
                for key in self._send_keys.pop(name, ()):
                    del self._send_dseq[key]
                self._rx.pop(name, None)
            self._delivered.pop(name, None)
            self._ops[name] = 0
            self.restores += 1
            tracer = self._tracer(name)
            if tracer is not None:
                tracer.emit(
                    "recovery", "restore",
                    epoch=self._epoch.get(name, -1),
                )
            # Replay every unacknowledged message targeted at this
            # component, in original send order (reverse front-insert).
            entries = []
            for key, slot in self._unacked.items():
                for _dseq, (uid, copy, target) in slot.items():
                    if target.component is comp:
                        entries.append((uid, copy, target))
            entries.sort(key=lambda e: e[0])
            for _uid, copy, target in reversed(entries):
                self._replay_one(name, target, copy)

    # -- reporting ------------------------------------------------------------

    def close(self) -> None:
        """Flush and release the durable store, if any."""
        if self.durable is not None:
            self.durable.close()

    def report(self) -> Dict[str, Any]:
        """Summary of recovery activity (JSON-friendly)."""
        with self._lock:
            outstanding = sum(len(slot) for slot in self._unacked.values())
            out = {
                "checkpoints": self.checkpoints,
                "checkpoint_bytes": self.checkpoint_bytes,
                "replayed": self.replayed,
                "deduped": self.deduped,
                "restores": self.restores,
                "unacked": outstanding,
                "epochs": dict(self._epoch),
            }
            if self.durable is not None and self.durable.wal is not None:
                out["durable"] = {
                    "root": self.durable.root,
                    "cold_restored": self.cold_restored,
                    "wal_bytes": self.durable.wal.size_bytes(),
                    "wal_appends": self.durable.wal.appended,
                    "wal_truncated_bytes": self.durable.wal.truncated_bytes,
                    "commits": self.durable.manifest.get("commits", 0),
                }
            return out
