"""Generated scale workloads for the sharded simulator.

The paper's case study is one MJPEG pipeline of seven components; the
workloads here are the other end of the scale axis: generated component
graphs in the thousands, designed to stress the sharded kernel's
per-event cost, cross-shard batching and partition quality rather than
the codec.  See :mod:`repro.workloads.traffic` for the fan-in/fan-out
service-graph ("millions of users") model.
"""

from repro.workloads.traffic import (
    TrafficConfig,
    build_traffic_graph,
    run_traffic,
    traffic_profile_payload,
)

__all__ = [
    "TrafficConfig",
    "build_traffic_graph",
    "run_traffic",
    "traffic_profile_payload",
]
