"""The traffic-model workload: a generated fan-in/fan-out service graph.

The "millions of users" scenario running *inside* the simulator: N
sessions issue requests into a service graph of lightweight components
arranged in four tiers --

    ingress (load balancers) -> frontends -> backends (fan-out) -> sinks

-- all on the raw shard layer (:mod:`repro.sim.shard`), so a 10k-
component deployment is a table of handlers, not 10k OS-model threads.
Every hop is an :class:`~repro.sim.mailbox.Envelope` with the usual
total-order key, which gives the workload the same determinism oracle
as the MJPEG pipeline: the per-component delivery sequence -- and hence
the trace digest -- is identical for every shard count.

Two properties are deliberate:

- **Tick alignment.**  All requests of a tick enter at the same instant
  and every hop costs the same fixed ``compute_ns + link_ns``, so each
  tier's deliveries for one tick share a receive timestamp.  That is
  the batched-release fast path (one kernel callback per distinct
  timestamp) at full strength -- exactly the shape of a load-balanced
  service where queues drain in waves.
- **Session skew.**  A small share of sessions is "heavy" (issues
  ``heavy_factor`` requests per tick) and heavy sessions concentrate on
  the low-numbered ingresses, so a static unit-weight partition leaves
  some shards hot.  The observed profile (per-component event counts,
  per-edge message counts) feeds
  :func:`repro.sim.shard.repartition_from_profile` -- the measure ->
  repartition -> rerun loop this workload exists to exercise.
"""

from __future__ import annotations

import hashlib
import struct
import time
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.mailbox import Envelope
from repro.sim.shard import (
    PROFILE_SCHEMA,
    Shard,
    ShardedSimulation,
    partition_graph,
)

_MASK64 = (1 << 64) - 1
_FNV = 1099511628211


@dataclass(frozen=True)
class TrafficConfig:
    """Shape and timing of one traffic run.

    ``n_components`` is split across the four tiers (~1.5% ingress, 25%
    frontends, ~6% sinks, the rest backends).  Every request costs
    ``2 + 2 * fanout`` deliveries (ingress, frontend, ``fanout``
    backends, their sinks), so total events are
    ``requests * (2 + 2 * fanout)`` with
    ``requests = ticks * sum(per-session activity)``.
    """

    n_components: int = 1000
    n_sessions: int = 0  # 0 = n_components // 4
    ticks: int = 3
    fanout: int = 2
    tick_ns: int = 1_000_000
    compute_ns: int = 2_000
    link_ns: int = 500
    spin: int = 120  # pure-python work per event (honest busy time)
    heavy_share: float = 0.1  # share of sessions that are heavy
    heavy_factor: int = 4  # requests per tick for a heavy session
    seed: int = 1

    @property
    def sessions(self) -> int:
        return self.n_sessions or max(4, self.n_components // 4)


def _tier_sizes(n: int) -> Tuple[int, int, int, int]:
    if n < 8:
        raise ValueError(f"traffic graph needs at least 8 components, got {n}")
    n_ingress = max(1, n // 64)
    n_front = max(1, n // 4)
    n_sink = max(1, n // 16)
    n_back = n - n_ingress - n_front - n_sink
    return n_ingress, n_front, n_back, n_sink


def build_traffic_graph(config: TrafficConfig):
    """Build the static service graph: names, edges and route tables.

    Deterministic for a given config (the only randomness is the seeded
    backend-pool sampling), and independent of shard count -- the graph
    is what gets partitioned, not a partition artifact.
    """
    n_ingress, n_front, n_back, n_sink = _tier_sizes(config.n_components)
    rng = Random(config.seed)

    names: List[str] = []
    names += [f"lb{i}" for i in range(n_ingress)]
    names += [f"fe{i}" for i in range(n_front)]
    names += [f"be{i}" for i in range(n_back)]
    names += [f"sk{i}" for i in range(n_sink)]
    base_front = n_ingress
    base_back = n_ingress + n_front
    base_sink = n_ingress + n_front + n_back

    edges: List[Tuple[str, str]] = []
    # Frontends are dealt to ingresses round-robin.
    fronts_of: List[List[int]] = [[] for _ in range(n_ingress)]
    for f in range(n_front):
        fronts_of[f % n_ingress].append(f)
        edges.append((names[f % n_ingress], names[base_front + f]))
    # Each frontend owns a small sampled pool of backends.
    pool_size = min(n_back, max(config.fanout, 2) + 2)
    pool_of: List[List[int]] = []
    for f in range(n_front):
        pool = sorted(rng.sample(range(n_back), pool_size))
        pool_of.append(pool)
        for b in pool:
            edges.append((names[base_front + f], names[base_back + b]))
    # Backends report to a fixed sink.
    sink_of = [b % n_sink for b in range(n_back)]
    for b in range(n_back):
        edges.append((names[base_back + b], names[base_sink + sink_of[b]]))

    return {
        "names": names,
        "edges": edges,
        "tiers": (n_ingress, n_front, n_back, n_sink),
        "bases": (0, base_front, base_back, base_sink),
        "fronts_of": fronts_of,
        "pool_of": pool_of,
        "sink_of": sink_of,
    }


def _activity(config: TrafficConfig, session: int) -> int:
    heavy = int(config.sessions * config.heavy_share)
    return config.heavy_factor if session < heavy else 1


def _spin(n: int) -> int:
    """Pure-python per-event work, so per-shard busy time is real CPU
    time and the critical-path speedup is honest (same rationale as the
    bench's spin loop)."""
    x = 0
    for i in range(n):
        x += i
    return x


def run_traffic(
    config: TrafficConfig,
    n_shards: int,
    parallel: bool = False,
    partition: Optional[Dict[str, int]] = None,
    batch_release: bool = True,
    graph: Optional[Dict] = None,
) -> Dict:
    """Run the traffic model on ``n_shards`` conservative shards.

    Returns a result dict with the event totals, per-shard busy times,
    the shard-count-invariant ``digest`` (sha256 over every component's
    delivery-sequence fold), the observed per-component/per-edge
    activity (for :func:`traffic_profile_payload`) and the batching
    counters.  ``partition`` overrides the static heuristic (that is
    how a recorded profile re-enters via ``repartition_from_profile``).
    """
    graph = graph or build_traffic_graph(config)
    names: List[str] = graph["names"]
    n_ingress, n_front, n_back, n_sink = graph["tiers"]
    _, base_front, base_back, base_sink = graph["bases"]
    fronts_of, pool_of, sink_of = graph["fronts_of"], graph["pool_of"], graph["sink_of"]
    index_of = {name: i for i, name in enumerate(names)}

    assignment = partition or partition_graph(names, graph["edges"], n_shards)
    shard_of = [assignment[name] for name in names]

    shards = [Shard(i) for i in range(n_shards)]
    for shard in shards:
        shard.batch_release = batch_release
    sim = ShardedSimulation(shards)
    hop_ns = config.compute_ns + config.link_ns
    # Every hop takes at least compute + link after its trigger, so the
    # pairwise lookahead is hop_ns for linked shards and for each
    # shard's self-link.
    linked = set()
    for a, b in graph["edges"]:
        linked.add((shard_of[index_of[a]], shard_of[index_of[b]]))
    for k in range(n_shards):
        linked.add((k, k))
    for src, dst in sorted(linked):
        sim.add_link(src, dst, hop_ns)

    n = len(names)
    folds = [0] * n  # per-component delivery-sequence hash (layout-invariant)
    comp_events = [0] * n
    edge_msgs: Dict[Tuple[int, int], int] = {}
    shard_events = [0] * n_shards
    seqs = [0] * n  # per-source send counters (layout-invariant order)
    spin = config.spin
    fanout = config.fanout

    def fold(idx: int, src_idx: int, seq: int, t: int) -> None:
        folds[idx] = (
            folds[idx] * _FNV + (t * 1_000_003 ^ (src_idx + 2) * 8_191 ^ seq)
        ) & _MASK64
        comp_events[idx] += 1

    def send(src_idx: int, dst_idx: int, t_send: int, deliver_args) -> None:
        seq = seqs[src_idx]
        seqs[src_idx] = seq + 1
        edge = (src_idx, dst_idx)
        edge_msgs[edge] = edge_msgs.get(edge, 0) + 1
        recv = t_send + config.link_ns
        env = Envelope(recv, t_send, names[src_idx], "out", seq, deliver_args(seq, recv))
        me, dst = shard_of[src_idx], shard_of[dst_idx]
        (shards[dst].stage if dst == me else shards[dst].post)(env)

    def on_sink(idx: int, src_idx: int, seq: int, t: int) -> None:
        shard_events[shard_of[idx]] += 1
        _spin(spin)
        fold(idx, src_idx, seq, t)

    def on_backend(idx: int, src_idx: int, seq: int, t: int) -> None:
        shard_events[shard_of[idx]] += 1
        _spin(spin)
        fold(idx, src_idx, seq, t)
        sk = base_sink + sink_of[idx - base_back]
        send(
            idx, sk, t + config.compute_ns,
            lambda q, r: lambda: on_sink(sk, idx, q, r),
        )

    def on_frontend(idx: int, src_idx: int, seq: int, t: int, session: int) -> None:
        shard_events[shard_of[idx]] += 1
        _spin(spin)
        fold(idx, src_idx, seq, t)
        pool = pool_of[idx - base_front]
        t_send = t + config.compute_ns
        for j in range(fanout):
            be = base_back + pool[(session + j) % len(pool)]
            send(
                idx, be, t_send,
                lambda q, r, be=be: lambda: on_backend(be, idx, q, r),
            )

    def on_ingress(idx: int, seq: int, t: int, session: int, tick: int) -> None:
        shard_events[shard_of[idx]] += 1
        _spin(spin)
        fold(idx, -1, seq, t)
        fronts = fronts_of[idx]
        fe = base_front + fronts[(session + tick) % len(fronts)]
        send(
            idx, fe, t + config.compute_ns,
            lambda q, r: lambda: on_frontend(fe, idx, q, r, session),
        )

    # Inject every request up front: session s, tick k, copy j -- all
    # requests of a tick enter their ingress at the same instant.
    max_req = max(config.heavy_factor, 1)
    n_requests = 0
    for s in range(config.sessions):
        lb = s % n_ingress
        for k in range(config.ticks):
            t0 = (k + 1) * config.tick_ns
            for j in range(_activity(config, s)):
                seq = (s * config.ticks + k) * max_req + j
                edge_msgs[(-1, lb)] = edge_msgs.get((-1, lb), 0) + 1
                shards[shard_of[lb]].stage(
                    Envelope(
                        t0, 0, "client", f"s{s}", seq,
                        lambda lb=lb, q=seq, t=t0, s=s, k=k: on_ingress(lb, q, t, s, k),
                    )
                )
                n_requests += 1

    t0 = time.perf_counter()
    if parallel:
        sim.run_parallel()
    else:
        sim.run()
    wall_s = time.perf_counter() - t0

    events = sum(comp_events)
    expected = n_requests * (2 + 2 * fanout)
    if events != expected:
        raise AssertionError(
            f"traffic run delivered {events} events, expected {expected}"
        )
    blob = struct.pack(f"<{n}Q", *folds) + struct.pack(f"<{n}I", *comp_events)
    digest = hashlib.sha256(blob).hexdigest()

    busy = [shard.busy_s for shard in shards]
    released = sum(s.staging.released for s in shards)
    batches = sum(s.staging.batches for s in shards)
    return {
        "config": config,
        "names": names,
        "assignment": assignment,
        "n_shards": n_shards,
        "components": n,
        "sessions": config.sessions,
        "requests": n_requests,
        "events": events,
        "digest": digest,
        "wall_s": wall_s,
        "sweeps": sim.sweeps,
        "busy_s": sum(busy),
        "shard_busy_s": busy,
        "max_shard_busy_s": max(busy),
        "shard_events": shard_events,
        "released": released,
        "batches": batches,
        "batch_factor": released / batches if batches else 1.0,
        "comp_events": comp_events,
        "edge_msgs": edge_msgs,
        "makespan_ns": max(s.kernel.now for s in shards),
    }


def traffic_profile_payload(result: Dict) -> Dict:
    """The observed-traffic profile JSON for a finished run -- the
    document ``repartition_from_profile`` consumes.  Busy time per
    component is virtual (events x compute_ns): deterministic, so the
    measure -> repartition -> rerun loop is reproducible."""
    config: TrafficConfig = result["config"]
    names: Sequence[str] = result["names"]
    components = {
        name: {
            "events": result["comp_events"][i],
            "busy_ns": result["comp_events"][i] * config.compute_ns,
        }
        for i, name in enumerate(names)
        if result["comp_events"][i]
    }
    edges = [
        {"src": names[a], "dst": names[b], "messages": m}
        for (a, b), m in sorted(result["edge_msgs"].items())
        if a >= 0
    ]
    return {
        "schema": PROFILE_SCHEMA,
        "workload": "traffic",
        "n_shards": result["n_shards"],
        "components": components,
        "edges": edges,
        "shards": [
            {"shard": k, "events": result["shard_events"][k], "busy_s": result["shard_busy_s"][k]}
            for k in range(result["n_shards"])
        ],
    }
