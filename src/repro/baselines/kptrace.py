"""A KPTrace-style kernel-level scheduler tracer.

Hooks the execution engine's context-switch callback and records every
ON/OFF-cpu transition with core id and thread name.  Like the real tool,
it reconstructs per-thread CPU time and switch counts from raw kernel
events -- and like the real tool, it has no idea what a "component" is:
mapping its output back to application structure is exactly the manual
step EMBera eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class SchedRecord:
    """One scheduler transition."""

    timestamp_ns: int
    core: int
    thread: Optional[str]  # thread leaving / entering the core
    event: str  # "switch_in" | "switch_out"


class KPTrace:
    """Kernel-event tracer over a simulated ExecEngine."""

    def __init__(self, engine, clock=None) -> None:
        self.engine = engine
        self.clock = clock or (lambda: engine.kernel.now)
        self.records: List[SchedRecord] = []
        self._installed = False
        self._previous_hook = None

    # -- lifecycle -------------------------------------------------------------

    def install(self) -> "KPTrace":
        """Hook the engine's context-switch callback (chainable)."""
        if self._installed:
            raise RuntimeError("KPTrace already installed")
        self._previous_hook = self.engine.on_context_switch
        self.engine.on_context_switch = self._on_switch
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the previous context-switch hook."""
        if self._installed:
            self.engine.on_context_switch = self._previous_hook
            self._installed = False

    def _on_switch(self, core, old, new) -> None:
        now = self.clock()
        if old is not None:
            self.records.append(SchedRecord(now, core.index, old.name, "switch_out"))
        if new is not None:
            self.records.append(SchedRecord(now, core.index, new.name, "switch_in"))
        if self._previous_hook is not None:
            self._previous_hook(core, old, new)

    # -- raw-event analyses (what a KPTrace user reconstructs by hand) ---------

    def event_count(self) -> int:
        """Number of raw scheduler records captured."""
        return len(self.records)

    def threads_seen(self) -> List[str]:
        """Sorted names of all threads that ever ran."""
        return sorted({r.thread for r in self.records if r.thread is not None})

    def cpu_time_by_thread(self) -> Dict[str, int]:
        """Reconstruct per-thread CPU time from switch events."""
        on_cpu: Dict[str, int] = {}
        totals: Dict[str, int] = {}
        for record in self.records:
            if record.thread is None:
                continue
            if record.event == "switch_in":
                on_cpu[record.thread] = record.timestamp_ns
            elif record.event == "switch_out" and record.thread in on_cpu:
                totals[record.thread] = totals.get(record.thread, 0) + (
                    record.timestamp_ns - on_cpu.pop(record.thread)
                )
        return totals

    def switch_count_by_thread(self) -> Dict[str, int]:
        """How many times each thread was switched in."""
        out: Dict[str, int] = {}
        for record in self.records:
            if record.event == "switch_in" and record.thread is not None:
                out[record.thread] = out.get(record.thread, 0) + 1
        return out

    def core_occupancy(self) -> Dict[int, int]:
        """Busy nanoseconds per core, reconstructed from events."""
        active: Dict[int, int] = {}
        busy: Dict[int, int] = {}
        for record in self.records:
            if record.event == "switch_in":
                active[record.core] = record.timestamp_ns
            elif record.event == "switch_out" and record.core in active:
                busy[record.core] = busy.get(record.core, 0) + (
                    record.timestamp_ns - active.pop(record.core)
                )
        return busy
