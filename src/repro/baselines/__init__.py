"""Baseline observation approaches the paper compares against.

Section 2 describes the state of practice: "tools developed for SoC
platform observation are also proprietary and low-level.  They mostly
give information about hardware state ... and kernel events
(interruptions, function calls) ... there is no mapping between
application operations and lower-level observation data" (e.g. KPTrace).

:mod:`repro.baselines.kptrace` implements that style of tool against the
simulated OS substrates -- a kernel-level scheduler tracer that sees
threads and cores but knows nothing about components -- so the ablation
benches can quantify the paper's qualitative claim: component-level
observation yields application-meaningful data at a fraction of the
event volume.
"""

from repro.baselines.kptrace import KPTrace, SchedRecord

__all__ = ["KPTrace", "SchedRecord"]
