"""ASCII XY charts for figure-style benchmark output.

Terminal-friendly scatter/line rendering used by the Figure 4 / Figure 8
benches so the regenerated curves are inspectable without a plotting
stack (the repository is offline-first).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_GLYPHS = "*+o#@%"


def render_xy(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more y-series over shared x values.

    Each series gets a glyph; points are plotted on a ``width`` x
    ``height`` grid with linear axes anchored at zero on y (performance
    curves should not lie by truncation).
    """
    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    if not series:
        raise ValueError("no series to plot")
    x = list(x)
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} has {len(ys)} points for {len(x)} x values")
    if not x:
        raise ValueError("no points to plot")

    x_min, x_max = min(x), max(x)
    y_max = max(max(ys) for ys in series.values())
    y_min = 0.0
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for xv, yv in zip(x, ys):
            col = round((xv - x_min) / x_span * (width - 1))
            row = height - 1 - round((yv - y_min) / y_span * (height - 1))
            grid[row][col] = glyph

    label_w = max(len(f"{y_max:.4g}"), len("0"))
    lines: List[str] = []
    if y_label:
        lines.append(f"{y_label}")
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{y_max:.4g}"
        elif r == height - 1:
            label = "0"
        else:
            label = ""
        lines.append(f"{label:>{label_w}} |{''.join(row)}")
    lines.append(f"{'':>{label_w}} +{'-' * width}")
    x_axis = f"{x_min:.4g}".ljust(width - len(f"{x_max:.4g}")) + f"{x_max:.4g}"
    lines.append(f"{'':>{label_w}}  {x_axis}")
    if x_label:
        lines.append(f"{'':>{label_w}}  {x_label:^{width}}")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>{label_w}}  {legend}")
    return "\n".join(lines)
