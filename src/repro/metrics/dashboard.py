"""``repro top``: the live ascii dashboard over the telemetry plane.

Renders a (merged) :class:`~repro.metrics.telemetry.MetricsRegistry`
as a terminal frame: run totals, a per-component table with the tail
percentiles the streaming-server ROADMAP item asks for, contract
violations, and a per-window throughput/latency chart built from the
registry's delta series via :func:`repro.metrics.asciichart.render_xy`.

:func:`iter_frames` replays the windowed series cumulatively -- one
frame per window -- which is what ``repro top --watch`` animates (the
sim produces its whole timeline before the dashboard draws, so "live"
means live *on the sim clock*, refreshed per telemetry window).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.metrics.asciichart import render_xy
from repro.metrics.table import Table
from repro.metrics.telemetry import Log2Histogram, MetricsRegistry, bucket_bounds

#: ANSI "clear screen + home" prefix used between --watch frames.
CLEAR = "\x1b[2J\x1b[H"


def _fmt_ns(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.2f}s"
    if value >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.1f}us"
    return f"{value:.0f}ns"


def _component_rows(registry: MetricsRegistry) -> List[List[Any]]:
    """One row per component: traffic, tail latencies, robustness."""
    by_comp: Dict[str, Dict[str, Any]] = {}

    def slot(labels: Dict[str, Any]) -> Dict[str, Any]:
        comp = labels.get("component", "?")
        return by_comp.setdefault(comp, {
            "sent": 0, "received": 0, "recv_hist": None, "lat_hist": None,
            "busy_ns": 0, "queue": 0, "restarts": 0, "violations": 0,
        })

    for kind, name, labels, inst in registry.instruments():
        if "component" not in labels:
            continue
        entry = slot(labels)
        if name == "messages_sent_total":
            entry["sent"] += inst.value
        elif name == "messages_received_total":
            entry["received"] += inst.value
        elif name == "receive_duration_ns":
            if entry["recv_hist"] is None:
                entry["recv_hist"] = Log2Histogram()
            entry["recv_hist"].merge(inst)
        elif name == "delivery_latency_ns":
            if entry["lat_hist"] is None:
                entry["lat_hist"] = Log2Histogram()
            entry["lat_hist"].merge(inst)
        elif name == "busy_ns":
            entry["busy_ns"] = max(entry["busy_ns"], inst.value)
        elif name == "queue_depth":
            entry["queue"] += inst.value
        elif name == "restarts_total":
            entry["restarts"] += inst.value
        elif name == "contract_violations_total":
            entry["violations"] += inst.value

    rows = []
    for comp in sorted(by_comp):
        e = by_comp[comp]
        recv = e["recv_hist"]
        lat = e["lat_hist"]
        rows.append([
            comp,
            e["sent"],
            e["received"],
            _fmt_ns(recv.percentile(0.99)) if recv and recv.count else "-",
            _fmt_ns(lat.percentile(0.50)) if lat and lat.count else "-",
            _fmt_ns(lat.percentile(0.99)) if lat and lat.count else "-",
            _fmt_ns(e["busy_ns"]) if e["busy_ns"] else "-",
            int(e["queue"]),
            e["restarts"],
            e["violations"],
        ])
    return rows


def _window_series(registry: MetricsRegistry) -> Tuple[List[float], Dict[str, List[float]]]:
    """Per-window x (window end, ms) and y series (msgs/window, mean
    delivery latency) from the delta windows."""
    xs: List[float] = []
    msgs: List[float] = []
    lat_mean: List[float] = []
    for w in registry.windows:
        n_msgs = 0
        lat_total = 0
        lat_count = 0
        for iid, delta in w.data.items():
            if iid.startswith("messages_received_total{"):
                n_msgs += delta["inc"]
            elif iid.startswith("delivery_latency_ns{"):
                lat_total += delta["total_ns"]
                lat_count += delta["count"]
        xs.append(w.end_ns / 1e6)
        msgs.append(float(n_msgs))
        lat_mean.append(lat_total / lat_count / 1e6 if lat_count else 0.0)
    return xs, {"msgs/window": msgs, "mean latency (ms)": lat_mean}


def render_dashboard(registry: MetricsRegistry, width: int = 72, title: str = "repro top") -> str:
    """One full dashboard frame for a registry."""
    total_sent = sum(
        inst.value for kind, name, _l, inst in registry.instruments()
        if name == "messages_sent_total"
    )
    total_violations = sum(
        inst.value for kind, name, _l, inst in registry.instruments()
        if name == "contract_violations_total"
    )
    total_restarts = sum(
        inst.value for kind, name, _l, inst in registry.instruments()
        if name == "restarts_total"
    )
    header = (
        f"{title} | t={registry.last_ns / 1e6:.2f}ms sim | "
        f"window={registry.window_ns / 1e6:.0f}ms x{len(registry.windows)} | "
        f"msgs={total_sent} restarts={total_restarts} violations={total_violations}"
    )
    table = Table(
        ["component", "sent", "recv", "recv p99", "lat p50", "lat p99",
         "busy", "queue", "restarts", "viol"],
    )
    for row in _component_rows(registry):
        table.add_row(row)
    parts = [header, "", table.render()]
    xs, series = _window_series(registry)
    if len(xs) >= 2:
        parts += ["", render_xy(
            xs, series, width=width, height=10,
            x_label="sim time (ms)",
        )]
    return "\n".join(parts) + "\n"


def iter_frames(registry: MetricsRegistry, width: int = 72) -> Iterator[str]:
    """Cumulative per-window frames for ``repro top --watch``.

    Frame *k* shows the registry as of the end of window *k*: counters
    and histograms rebuilt from the delta series, gauges carried from
    the final state (they are point-in-time and not windowed).
    """
    partial = MetricsRegistry(shard=registry.shard, window_ns=registry.window_ns)
    for kind, name, labels, inst in registry.instruments():
        if kind == "gauge":
            partial.gauge(name, **labels).merge(inst)
    for k, w in enumerate(registry.windows):
        for iid, delta in w.data.items():
            name, labels = _parse_id(iid)
            if delta["kind"] == "counter":
                partial.counter(name, **labels).inc(delta["inc"])
            else:
                hist = partial.histogram(name, **labels)
                hist.count += delta["count"]
                hist.total += delta["total_ns"]
                for b, c in delta["buckets"].items():
                    b = int(b)
                    hist.counts[b] += c
                    lo, hi = bucket_bounds(b)
                    if hist.min_value is None or lo < hist.min_value:
                        hist.min_value = lo
                    if hist.max_value is None or hi > hist.max_value:
                        hist.max_value = hi
        partial.windows.append(w)
        partial.last_ns = w.end_ns
        yield render_dashboard(
            partial, width=width,
            title=f"repro top [window {k + 1}/{len(registry.windows)}]",
        )


def _parse_id(iid: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`repro.metrics.telemetry.instrument_id`."""
    if "{" not in iid:
        return iid, {}
    name, _, rest = iid.partition("{")
    labels = {}
    for pair in rest.rstrip("}").split(","):
        k, _, v = pair.partition("=")
        labels[k] = v
    return name, labels
