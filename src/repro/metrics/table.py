"""Plain-text table rendering in the style of the paper's tables."""

from __future__ import annotations

from typing import Any, List, Sequence


class Table:
    """A simple aligned-column text table.

    >>> t = Table(["Component", "Time (us)"])
    >>> t.add_row(["Fetch", 4084])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Sequence[Any]) -> None:
        """Append one row (cell count must match the headers)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:,.2f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    def render(self) -> str:
        """Render to an aligned plain-text block."""
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows)) if self.rows else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

    def as_dicts(self) -> List[dict]:
        """Rows as header-keyed dicts (for programmatic assertions)."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover
        return self.render()
