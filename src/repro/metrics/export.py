"""Telemetry exporters: JSON, Prometheus text, and the invariance digest.

The JSON schema (``repro.metrics/v1``) round-trips: ``payload ->``
:func:`registry_from_payload` ``-> payload`` is the identity on
instruments and windows, which the metrics-smoke CI job checks.

The digest (:func:`metrics_digest`) covers the *deterministic* subset
of a registry -- counters, histograms and the windowed delta series,
all pure functions of virtual time -- and excludes gauges (busy time on
the native runtime is host time).  Under pinned placement the digest is
identical for every shard count; ``repro run --metrics`` prints it as
``metrics sha256:`` and CI compares 1/2/4-shard runs, exactly like the
``frames sha256:`` oracle.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.metrics.telemetry import (
    MetricsRegistry,
    N_BUCKETS,
    Window,
    bucket_bounds,
    instrument_id,
)

SCHEMA = "repro.metrics/v1"


def registry_payload(registry: MetricsRegistry, meta: Dict[str, Any] = None) -> Dict[str, Any]:
    """The JSON document for one (possibly merged) registry."""
    payload = {"schema": SCHEMA, **registry.snapshot()}
    if meta:
        payload["meta"] = dict(meta)
    return payload


def registry_from_payload(payload: Dict[str, Any]) -> MetricsRegistry:
    """Rebuild a registry from its JSON document (exporter round-trip)."""
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"unknown metrics schema {schema!r}; expected {SCHEMA!r}")
    registry = MetricsRegistry(
        shard=payload.get("shard", 0), window_ns=payload["window_ns"]
    )
    for snap in payload["instruments"].values():
        kind, name, labels = snap["kind"], snap["name"], snap["labels"]
        if kind == "counter":
            registry.counter(name, **labels).inc(snap["value"])
        elif kind == "gauge":
            registry.gauge(name, **labels).set(snap["value"], snap["ts_ns"])
        else:
            hist = registry.histogram(name, **labels)
            for b, c in snap["buckets"].items():
                hist.counts[int(b)] = c
            hist.count = snap["count"]
            hist.total = snap["total_ns"]
            if hist.count:
                hist.min_value = snap["min_ns"]
                hist.max_value = snap["max_ns"]
    for w in payload.get("windows", []):
        registry.windows.append(
            Window(w["id"], w["index"], registry.window_ns, w["shard"], w["data"])
        )
    return registry


def _digest_state(registry: MetricsRegistry) -> Dict[str, Any]:
    instruments = {}
    for kind, name, labels, inst in registry.instruments():
        if kind == "gauge":
            continue  # host-time (busy) and point-in-time values: not invariant
        iid = instrument_id(name, labels)
        if kind == "counter":
            instruments[iid] = inst.value
        else:
            cnt, total, counts = inst.state()
            instruments[iid] = {
                "count": cnt,
                "total": total,
                "buckets": {str(b): c for b, c in enumerate(counts) if c},
                "min": inst.min_value,
                "max": inst.max_value,
            }
    windows = [
        {"index": w.index, "data": w.data} for w in registry.windows
    ]
    return {"window_ns": registry.window_ns, "instruments": instruments, "windows": windows}


def metrics_digest(registry: MetricsRegistry) -> str:
    """sha256 over the deterministic subset (see module doc)."""
    blob = json.dumps(_digest_state(registry), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _prom_name(name: str) -> str:
    return "repro_" + name


def _prom_labels(labels: Dict[str, Any], extra: Dict[str, Any] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{merged[k]}"' for k in sorted(merged))
    return "{" + inner + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of the cumulative instruments.

    Histograms render in the standard cumulative-``le`` form with the
    log2 bucket upper bounds, plus ``_sum`` and ``_count``.
    """
    lines = []
    seen_types = set()
    for kind, name, labels, inst in registry.instruments():
        pname = _prom_name(name)
        if kind == "counter":
            if pname not in seen_types:
                seen_types.add(pname)
                lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname}{_prom_labels(labels)} {inst.value}")
        elif kind == "gauge":
            if pname not in seen_types:
                seen_types.add(pname)
                lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname}{_prom_labels(labels)} {inst.value}")
        else:
            if pname not in seen_types:
                seen_types.add(pname)
                lines.append(f"# TYPE {pname} histogram")
            cum = 0
            for b in range(N_BUCKETS):
                c = inst.counts[b]
                if not c:
                    continue
                cum += c
                le = bucket_bounds(b)[1]
                lines.append(
                    f"{pname}_bucket{_prom_labels(labels, {'le': le})} {cum}"
                )
            lines.append(
                f"{pname}_bucket{_prom_labels(labels, {'le': '+Inf'})} {inst.count}"
            )
            lines.append(f"{pname}_sum{_prom_labels(labels)} {inst.total}")
            lines.append(f"{pname}_count{_prom_labels(labels)} {inst.count}")
    return "\n".join(lines) + "\n"


def write_metrics(
    path: Union[str, Path],
    registry: MetricsRegistry,
    meta: Dict[str, Any] = None,
) -> Dict[str, Any]:
    """Write a registry to ``path`` -- Prometheus text for ``.prom`` /
    ``.txt``, JSON otherwise.  Returns the JSON payload either way."""
    path = Path(path)
    payload = registry_payload(registry, meta=meta)
    if path.suffix in (".prom", ".txt"):
        path.write_text(to_prometheus(registry))
    else:
        path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return payload


def read_metrics(path: Union[str, Path]) -> MetricsRegistry:
    """Load a JSON metrics document back into a registry."""
    return registry_from_payload(json.loads(Path(path).read_text()))
